"""Property tests for the shard planner.

The fabric's correctness reduces to the partitioning being a pure,
exhaustive function of its inputs: every sweep point lands in exactly
one shard, shard sizes never skew by more than one, and changing the
shard count regroups — never changes — the covered set. Hypothesis
drives those invariants over arbitrary index sequences and shard
counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fabric.shards import (
    Shard,
    default_shard_count,
    plan_shards,
)

# unique, arbitrary-order point indices (sweep expansion yields 0..n-1,
# but the planner must not rely on that)
indices_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), unique=True, max_size=200
)
shard_counts = st.integers(min_value=1, max_value=64)


@given(indices=indices_strategy, num_shards=shard_counts)
@settings(max_examples=200)
def test_every_point_exactly_once(indices, num_shards):
    """Concatenating the plan reproduces the input sequence exactly."""
    shards = plan_shards(indices, num_shards)
    flattened = [i for s in shards for i in s.point_indices]
    assert flattened == indices


@given(indices=indices_strategy, num_shards=shard_counts)
@settings(max_examples=200)
def test_shard_sizes_balanced_within_one(indices, num_shards):
    shards = plan_shards(indices, num_shards)
    if not indices:
        assert shards == ()
        return
    sizes = [len(s) for s in shards]
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1
    assert len(shards) == min(num_shards, len(indices))


@given(indices=indices_strategy, a=shard_counts, b=shard_counts)
@settings(max_examples=200)
def test_covered_set_stable_under_shard_count_changes(indices, a, b):
    """Re-planning with a different fleet never changes what runs."""
    cover_a = {i for s in plan_shards(indices, a) for i in s.point_indices}
    cover_b = {i for s in plan_shards(indices, b) for i in s.point_indices}
    assert cover_a == cover_b == set(indices)


@given(indices=indices_strategy, num_shards=shard_counts)
@settings(max_examples=200)
def test_shard_ids_unique_and_lexicographically_ordered(indices, num_shards):
    """Lexicographic id order == plan order (the transport sorts by id)."""
    shards = plan_shards(indices, num_shards)
    ids = [s.shard_id for s in shards]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids)
    assert [s.index for s in shards] == list(range(len(shards)))


@given(
    num_points=st.integers(min_value=0, max_value=5000),
    workers=st.integers(min_value=0, max_value=64),
)
def test_default_shard_count_is_plannable(num_points, workers):
    count = default_shard_count(num_points, workers)
    if num_points == 0:
        assert count == 0
    else:
        assert 1 <= count <= num_points
        # the resulting plan is always valid
        assert len(plan_shards(range(num_points), count)) == count


def test_plan_is_deterministic():
    assert plan_shards(range(10), 3) == plan_shards(range(10), 3)


def test_plan_shape_example():
    shards = plan_shards([0, 1, 2, 3, 4], 2)
    assert shards == (
        Shard(index=0, shard_id="s0000", point_indices=(0, 1, 2)),
        Shard(index=1, shard_id="s0001", point_indices=(3, 4)),
    )


def test_duplicate_indices_rejected():
    with pytest.raises(ValueError, match="unique"):
        plan_shards([1, 2, 1], 2)


def test_nonpositive_shard_count_rejected():
    with pytest.raises(ValueError, match="num_shards"):
        plan_shards([1, 2], 0)

"""The file transport: job lifecycle, lease protocol, event tailing.

Everything here runs in one process against a tmp directory — the
protocol is just files, so the multi-process behaviour (tested in
``test_fabric_integration``) reduces to these primitives.
"""

import json
import os
import time

import pytest

from repro.experiments.fabric.transport import (
    JOB_SCHEMA,
    EventTailer,
    FileTransport,
)
from repro.experiments.progress import PROGRESS_SCHEMA


def _job(num_shards=2):
    return {
        "schema": JOB_SCHEMA,
        "name": "t",
        "shards": [
            {"index": s, "shard_id": f"s{s:04d}", "point_indices": [s]}
            for s in range(num_shards)
        ],
    }


# ---------------------------------------------------------------------------
# job lifecycle
# ---------------------------------------------------------------------------


def test_publish_then_read_round_trips_and_queues_shards(tmp_path):
    t = FileTransport(tmp_path)
    assert not t.has_job()
    t.publish_job(_job(3))
    assert t.has_job()
    assert t.read_job()["name"] == "t"
    assert t.queued_shard_ids() == ["s0000", "s0001", "s0002"]


def test_publish_refuses_to_overwrite_a_job(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job())
    with pytest.raises(ValueError, match="already holds a job"):
        t.publish_job(_job())


def test_read_rejects_unsupported_schema(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job({**_job(), "schema": 999})
    with pytest.raises(ValueError, match="unsupported job schema"):
        t.read_job()


def test_stop_flag_lifecycle(tmp_path):
    t = FileTransport(tmp_path)
    assert not t.stopped()
    t.write_stop()
    assert t.stopped()
    t.clear_stop()
    assert not t.stopped()
    t.clear_stop()  # idempotent


# ---------------------------------------------------------------------------
# leases: claim, heartbeat, steal
# ---------------------------------------------------------------------------


def test_claim_is_exclusive_and_ordered(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(2))
    assert t.claim_shard("w0", lease_timeout_s=60) == "s0000"
    assert t.claim_shard("w1", lease_timeout_s=60) == "s0001"
    assert t.claim_shard("w2", lease_timeout_s=60) is None


def test_completed_shards_are_never_claimed(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(2))
    t.submit_result("s0000", "w9", [])
    assert t.claim_shard("w0", lease_timeout_s=60) == "s0001"


def test_stale_lease_is_broken_then_stolen(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    assert t.claim_shard("w0", lease_timeout_s=60) == "s0000"
    # a live lease is not stale and not claimable
    assert not t.lease_is_stale("s0000", timeout_s=60)
    assert t.claim_shard("w1", lease_timeout_s=60) is None
    # age the lease below the horizon: first claim breaks it, the
    # next claim (any worker) wins the vacated slot
    lease = t.lease_path("s0000")
    lease.write_text(
        json.dumps({"shard": "s0000", "worker": "w0", "ts": time.time() - 10})
    )
    assert t.lease_is_stale("s0000", timeout_s=1)
    assert t.claim_shard("w1", lease_timeout_s=1) is None  # broke it
    assert t.claim_shard("w1", lease_timeout_s=1) == "s0000"  # stole it


def test_heartbeat_refreshes_staleness(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    t.claim_shard("w0", lease_timeout_s=60)
    lease = t.lease_path("s0000")
    lease.write_text(
        json.dumps({"shard": "s0000", "worker": "w0", "ts": time.time() - 10})
    )
    assert t.lease_is_stale("s0000", timeout_s=1)
    t.heartbeat("s0000", "w0")
    assert not t.lease_is_stale("s0000", timeout_s=1)


def test_claim_and_heartbeat_record_both_clocks(tmp_path):
    # the lease carries wall AND monotonic stamps: wall for humans and
    # cross-host eyeballing, mono so a *changing* lease is proof of
    # life regardless of wall-clock skew
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    t.claim_shard("w0", lease_timeout_s=60)
    lease = json.loads(t.lease_path("s0000").read_text())
    assert isinstance(lease["ts"], float)
    assert isinstance(lease["mono"], float)
    t.heartbeat("s0000", "w0")
    refreshed = json.loads(t.lease_path("s0000").read_text())
    assert refreshed["mono"] >= lease["mono"]


def test_skewed_wall_clock_never_starves_a_heartbeating_lease(tmp_path):
    # the holder's wall clock is an hour behind — the wall-age rule
    # would steal instantly. With mono present the observer-side rule
    # applies: a lease whose content keeps changing is alive, full stop.
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    t.claim_shard("w0", lease_timeout_s=60)

    def beat(mono):
        t.lease_path("s0000").write_text(
            json.dumps({"shard": "s0000", "worker": "w0",
                        "ts": time.time() - 3600, "mono": mono})
        )

    beat(1.0)
    assert not t.lease_is_stale("s0000", timeout_s=0.01)  # first sighting
    time.sleep(0.03)
    beat(2.0)  # heartbeat: content changed, observation re-arms
    assert not t.lease_is_stale("s0000", timeout_s=0.01)
    time.sleep(0.03)
    # frozen content past the observer's own timeout: now it is stale
    assert t.lease_is_stale("s0000", timeout_s=0.01)


def test_legacy_lease_without_mono_uses_wall_age(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    t.claim_shard("w0", lease_timeout_s=60)
    t.lease_path("s0000").write_text(
        json.dumps({"shard": "s0000", "worker": "w0",
                    "ts": time.time() - 10})
    )
    assert t.lease_is_stale("s0000", timeout_s=1)
    assert not t.lease_is_stale("s0000", timeout_s=3600)


def test_corrupt_lease_counts_as_stale(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    t.lease_path("s0000").parent.mkdir(parents=True, exist_ok=True)
    t.lease_path("s0000").write_text('{"no": "timestamp"}')
    assert t.lease_is_stale("s0000", timeout_s=3600)


def test_leases_of_lists_only_that_workers_holdings(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(3))
    t.claim_shard("w0", lease_timeout_s=60)
    t.claim_shard("w1", lease_timeout_s=60)
    assert t.leases_of("w0") == ["s0000"]
    assert t.leases_of("w1") == ["s0001"]
    assert t.leases_of("w2") == []


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


def test_submit_load_and_all_done(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(2))
    records = [{"index": 0, "summary": {"app_time": 1.0}}]
    t.submit_result("s0000", "w0", records)
    loaded = t.load_result("s0000")
    assert loaded["worker"] == "w0"
    assert loaded["records"] == records
    assert t.completed_shard_ids() == ["s0000"]
    assert not t.all_done(["s0000", "s0001"])
    t.submit_result("s0001", "w1", [])
    assert t.all_done(["s0000", "s0001"])


def test_duplicate_submit_is_an_identical_overwrite(tmp_path):
    t = FileTransport(tmp_path)
    t.publish_job(_job(1))
    records = [{"index": 0, "summary": {"app_time": 1.0}}]
    t.submit_result("s0000", "w0", records)
    first = t.result_path("s0000").read_bytes()
    t.submit_result("s0000", "w0", records)
    assert t.result_path("s0000").read_bytes() == first


def test_load_result_rejects_malformed_files(tmp_path):
    t = FileTransport(tmp_path)
    assert t.load_result("s0000") is None
    t.result_path("s0000").parent.mkdir(parents=True, exist_ok=True)
    t.result_path("s0000").write_text("not json")
    assert t.load_result("s0000") is None
    t.result_path("s0000").write_text('{"schema": 1, "records": "nope"}')
    assert t.load_result("s0000") is None


# ---------------------------------------------------------------------------
# event tailing
# ---------------------------------------------------------------------------


def _event(name, **fields):
    return json.dumps(
        {"schema": PROGRESS_SCHEMA, "event": name, "t": 0.0, **fields}
    )


def test_tailer_yields_each_event_exactly_once(tmp_path):
    t = FileTransport(tmp_path)
    with t.open_event_stream("w0") as fh:
        fh.write(_event("point_done", label="a") + "\n")
    tailer = t.event_tailer()
    assert [e["label"] for _w, e in tailer.drain()] == ["a"]
    assert list(tailer.drain()) == []
    with t.open_event_stream("w0") as fh:
        fh.write(_event("point_done", label="b") + "\n")
    assert [e["label"] for _w, e in tailer.drain()] == ["b"]


def test_tailer_interleaves_multiple_worker_streams(tmp_path):
    t = FileTransport(tmp_path)
    for wid in ("w0", "w1"):
        with t.open_event_stream(wid) as fh:
            fh.write(_event("point_done", label=wid) + "\n")
    drained = dict(t.event_tailer().drain())
    assert set(drained) == {"w0", "w1"}


def test_tailer_withholds_incomplete_final_line(tmp_path):
    t = FileTransport(tmp_path)
    path = t.events_path("w0")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(_event("point_done", label="a") + "\n")
        fh.write('{"schema": 1, "event": "point_d')  # writer mid-line
    tailer = t.event_tailer()
    assert [e["label"] for _w, e in tailer.drain()] == ["a"]
    # the write completes; only the completed line is new
    with open(path, "a") as fh:
        fh.write('one", "label": "b", "t": 0.0}\n')
    assert [e["label"] for _w, e in tailer.drain()] == ["b"]


def test_tailer_skip_existing_fast_forwards(tmp_path):
    t = FileTransport(tmp_path)
    with t.open_event_stream("w0") as fh:
        fh.write(_event("point_done", label="old") + "\n")
    tailer = t.event_tailer(skip_existing=True)
    assert list(tailer.drain()) == []
    with t.open_event_stream("w0") as fh:
        fh.write(_event("point_done", label="new") + "\n")
    assert [e["label"] for _w, e in tailer.drain()] == ["new"]


def test_tailer_skips_foreign_lines(tmp_path):
    tailer = EventTailer(tmp_path)
    (tmp_path / "w0.jsonl").write_text(
        "garbage\n" + _event("point_done", label="a") + "\n"
    )
    assert [e["label"] for _w, e in tailer.drain()] == ["a"]


def test_worker_registration_records_identity(tmp_path):
    t = FileTransport(tmp_path)
    t.register_worker("w7")
    reg = json.loads(t.worker_path("w7").read_text())
    assert reg["worker"] == "w7"
    assert reg["pid"] == os.getpid()

"""The fault-injection layer: specs, parsing, seeded plans, triggers."""

import pytest

from repro.experiments.fabric.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    parse_fault,
    seeded_fault_plan,
)


# ---------------------------------------------------------------------------
# spec parsing / serialisation
# ---------------------------------------------------------------------------


def test_parse_full_spec():
    assert parse_fault("kill:w0:1:2") == FaultSpec(
        kind="kill", worker="w0", shard_ordinal=1, point_offset=2
    )


def test_parse_offset_defaults_to_zero():
    assert parse_fault("hang:w3:0").point_offset == 0


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_dict_round_trip(kind):
    spec = FaultSpec(kind=kind, worker="w1", shard_ordinal=2, point_offset=1)
    assert FaultSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize(
    "text",
    [
        "kill",                # too few fields
        "kill:w0",             # still too few
        "kill:w0:1:2:3",       # too many
        "explode:w0:0",        # unknown kind
        "kill:w0:x",           # non-integer ordinal
        "kill:w0:-1",          # negative ordinal
        "kill:w0:0:-2",        # negative offset
    ],
)
def test_malformed_specs_rejected(text):
    with pytest.raises(ValueError):
        parse_fault(text)


# ---------------------------------------------------------------------------
# seeded plans
# ---------------------------------------------------------------------------


def test_seeded_plan_is_deterministic():
    workers = ["w0", "w1", "w2"]
    assert seeded_fault_plan(7, workers, shard_size=3) == seeded_fault_plan(
        7, workers, shard_size=3
    )


def test_seeded_plan_varies_with_seed():
    workers = ["w0", "w1", "w2"]
    plans = {seeded_fault_plan(seed, workers, shard_size=4) for seed in range(20)}
    assert len(plans) > 1


def test_seeded_plan_yields_valid_spec():
    workers = ["w0", "w1"]
    for seed in range(10):
        (fault,) = seeded_fault_plan(seed, workers, shard_size=2)
        assert fault.kind in FAULT_KINDS
        assert fault.worker in workers
        assert 0 <= fault.shard_ordinal <= 1
        assert 0 <= fault.point_offset < 2 or fault.kind == "dup"


def test_seeded_plan_empty_for_no_workers():
    assert seeded_fault_plan(0, []) == ()


def test_seeded_plan_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="explode"):
        seeded_fault_plan(0, ["w0"], kinds=("explode",))


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------


def test_injector_fires_only_for_own_worker():
    fault = parse_fault("kill:w0:0:1")
    assert FaultInjector([fault], "w1").at_boundary(0, 1) is None
    assert FaultInjector([fault], "w0").at_boundary(0, 1) == "kill"


def test_injector_fires_at_exact_boundary_only():
    injector = FaultInjector([parse_fault("hang:w0:1:2")], "w0")
    assert injector.at_boundary(0, 2) is None  # wrong shard
    assert injector.at_boundary(1, 1) is None  # wrong offset
    assert injector.at_boundary(1, 2) == "hang"


def test_injector_fires_at_most_once():
    injector = FaultInjector([parse_fault("kill:w0:0:0")], "w0")
    assert injector.at_boundary(0, 0) == "kill"
    assert injector.at_boundary(0, 0) is None


def test_duplicate_trigger_ignores_offset_and_fires_once():
    injector = FaultInjector([parse_fault("dup:w0:1")], "w0")
    assert not injector.duplicate_after_submit(0)
    assert injector.duplicate_after_submit(1)
    assert not injector.duplicate_after_submit(1)


def test_dup_never_fires_at_boundary_and_vice_versa():
    injector = FaultInjector(
        [parse_fault("dup:w0:0"), parse_fault("kill:w0:1:0")], "w0"
    )
    assert injector.at_boundary(0, 0) is None  # dup is not a boundary fault
    assert not injector.duplicate_after_submit(1)  # kill is not a dup
    assert injector.duplicate_after_submit(0)
    assert injector.at_boundary(1, 0) == "kill"


def test_injector_from_dicts_round_trip():
    faults = [parse_fault("kill:w2:0:1").to_dict()]
    injector = FaultInjector.from_dicts(faults, "w2")
    assert injector.at_boundary(0, 1) == "kill"
    assert FaultInjector.from_dicts(None, "w2").at_boundary(0, 1) is None

"""End-to-end fabric runs with real worker processes and injected faults.

The acceptance criterion for the distributed driver: whatever happens to
the fleet — a worker SIGKILLed mid-shard, a hung worker whose lease is
stolen, a shard delivered twice, the coordinator itself restarting — the
final summaries are bit-identical to the serial local-pool run. Points
use ``bg=True`` (a few tens of milliseconds each) so worker startup can
never race the whole sweep to completion before the fault fires.
"""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.fabric import (
    FabricIncomplete,
    FileTransport,
    parse_fault,
    run_fabric_sweep,
    worker_main,
)
from repro.experiments.progress import EventLog
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.obs.registry import RunRegistry

SPEC = SweepSpec(
    name="fabric-tiny",
    base={"app": "jacobi2d", "scale": 0.05, "iterations": 5, "bg": True},
    axes={"cores": [4, 8], "balancer": ["none", "greedy"], "seed": [0, 1]},
)

FAST = dict(
    heartbeat_s=0.2,
    lease_timeout_s=2.0,
    poll_s=0.02,
    worker_poll_s=0.02,
    timeout_s=120.0,
)


def _serial(spec=SPEC):
    return run_sweep(spec, workers=1)


def _events_of(log, kind):
    return [e for e in log.events if e["event"] == kind]


# ---------------------------------------------------------------------------
# happy path: the two drivers are one engine
# ---------------------------------------------------------------------------


def test_fabric_matches_local_pool_bit_identically(tmp_path):
    serial = _serial()
    log = EventLog()
    fab = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        log=log,
        shard_size=2,
        **FAST,
    )
    assert serial.summaries() == fab.summaries()
    assert [r.label for r in serial.results] == [r.label for r in fab.results]
    # the merged stream saw real work from spawned workers
    workers = {
        e["worker"]
        for e in _events_of(log, "point_done")
        if not e.get("cached")
    }
    assert workers and workers != {"main"}
    assert len(_events_of(log, "shard_complete")) == 4


def test_fabric_registers_run_with_job_dir_artifact(tmp_path):
    registry = RunRegistry(tmp_path / "registry")
    log = EventLog()
    run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        log=log,
        registry=registry,
        shard_size=2,
        **FAST,
    )
    (event,) = _events_of(log, "run_registered")
    record = registry.load(event["run_id"])
    assert record["kind"] == "sweep"
    assert record["artifacts"]["fabric_dir"] == str(tmp_path / "job")
    assert len(record["points"]) == 8


# ---------------------------------------------------------------------------
# fault drills
# ---------------------------------------------------------------------------


def test_worker_killed_mid_shard_is_reassigned_with_identical_summary(tmp_path):
    serial = _serial()
    log = EventLog()
    fab = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        log=log,
        shard_size=2,
        faults=[parse_fault("kill:w0:0:1")],  # die after 1 of 2 points
        **FAST,
    )
    assert serial.summaries() == fab.summaries()
    (dead,) = _events_of(log, "worker_dead")
    assert dead["worker"] == "w0"
    assert dead["exitcode"] == 137
    assert any(
        e["worker"] == "w0" for e in _events_of(log, "shard_reassigned")
    )


def test_hung_worker_lease_is_stolen_with_identical_summary(tmp_path):
    serial = _serial()
    log = EventLog()
    fab = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        log=log,
        shard_size=2,
        faults=[parse_fault("hang:w0:0:1")],
        **FAST,
    )
    assert serial.summaries() == fab.summaries()
    # the hung worker's shard went stale and was stolen — either the
    # coordinator expired it (shard_reassigned) or another worker's
    # claim scan broke it first; both end with someone else finishing
    # and submitting the shard the hung worker abandoned
    hung_shard = next(
        e["shard"]
        for e in _events_of(log, "shard_claimed")
        if e["worker"] == "w0"
    )
    result = FileTransport(tmp_path / "job").load_result(hung_shard)
    assert result is not None
    assert result["worker"] != "w0"


def test_duplicate_shard_delivery_is_idempotent(tmp_path):
    serial = _serial()
    log = EventLog()
    fab = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        log=log,
        shard_size=2,
        faults=[parse_fault("dup:w0:0")],
        **FAST,
    )
    assert serial.summaries() == fab.summaries()
    (dup,) = _events_of(log, "shard_duplicate")
    # the redelivered shard's result file is still a valid, complete record
    result = FileTransport(tmp_path / "job").load_result(dup["shard"])
    assert len(result["records"]) == 2


def test_coordinator_restart_resumes_without_recomputing_done_shards(tmp_path):
    serial = _serial()
    cache = ResultCache(tmp_path / "cache")
    # both workers complete their first shard, then die at their second
    # claim; with respawn off the run must fail resumable, not hang
    with pytest.raises(FabricIncomplete) as exc:
        run_fabric_sweep(
            SPEC,
            fabric_dir=tmp_path / "job",
            workers=2,
            cache=cache,
            shard_size=2,
            faults=[parse_fault("kill:w0:1:0"), parse_fault("kill:w1:1:0")],
            respawn=False,
            **FAST,
        )
    assert exc.value.done == 2
    assert exc.value.total == 4

    # second coordinator on the same directory: folds the two completed
    # shards from their result files and only runs the remaining two
    log = EventLog()
    fab = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=cache,
        log=log,
        shard_size=2,
        **FAST,
    )
    assert serial.summaries() == fab.summaries()
    resumed = [e for e in _events_of(log, "point_done") if e.get("resumed")]
    assert len(resumed) == 4  # 2 shards x 2 points folded, not re-run
    # only the two pending shards' points were started by workers
    assert len(_events_of(log, "point_start")) == 4


def test_resume_rejects_a_different_spec(tmp_path):
    with pytest.raises(FabricIncomplete):
        run_fabric_sweep(
            SPEC,
            fabric_dir=tmp_path / "job",
            workers=2,
            cache=ResultCache(tmp_path / "cache"),
            shard_size=2,
            faults=[parse_fault("kill:w0:1:0"), parse_fault("kill:w1:1:0")],
            respawn=False,
            **FAST,
        )
    other = SweepSpec(name="other", base=dict(SPEC.base), axes=dict(SPEC.axes))
    with pytest.raises(ValueError, match="different job"):
        run_fabric_sweep(
            other, fabric_dir=tmp_path / "job", workers=2, **FAST
        )


# ---------------------------------------------------------------------------
# zero-miss runs spawn nothing
# ---------------------------------------------------------------------------


def test_fully_cached_fabric_run_spawns_no_workers(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path / "cache")
    warm = run_sweep(SPEC, workers=1, cache=cache)

    def explode(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("a fully-cached sweep must not spawn workers")

    monkeypatch.setattr(
        "repro.experiments.fabric.coordinator._spawn_worker", explode
    )
    log = EventLog()
    fab = run_fabric_sweep(
        SPEC, fabric_dir=tmp_path / "job", workers=2, cache=cache, log=log,
        **FAST,
    )
    assert warm.summaries() == fab.summaries()
    assert fab.metrics.cache_hits == 8
    # no job was ever published either — there was nothing to distribute
    assert not FileTransport(tmp_path / "job").has_job()


# ---------------------------------------------------------------------------
# worker_main in-process (no spawn): the protocol from the worker's side
# ---------------------------------------------------------------------------


def test_worker_main_drains_a_published_job_in_process(tmp_path):
    from repro.experiments.cache import code_fingerprint, point_key
    from repro.experiments.fabric.shards import plan_shards
    from repro.experiments.fabric.transport import JOB_SCHEMA

    points = SPEC.expand()[:4]
    fingerprint = code_fingerprint()
    shards = plan_shards([p.index for p in points], 2)
    transport = FileTransport(tmp_path / "job")
    transport.publish_job(
        {
            "schema": JOB_SCHEMA,
            "name": SPEC.name,
            "backend": "auto",
            "cache_dir": str(tmp_path / "cache"),
            "points": [
                {
                    "index": p.index,
                    "label": p.label,
                    "key": point_key(p.params, fingerprint=fingerprint),
                    "params": p.params,
                }
                for p in points
            ],
            "shards": [
                {
                    "index": s.index,
                    "shard_id": s.shard_id,
                    "point_indices": list(s.point_indices),
                }
                for s in shards
            ],
            "faults": [],
            "config": {"poll_s": 0.02, "heartbeat_s": 0.2,
                       "lease_timeout_s": 2.0},
        }
    )
    assert worker_main(str(tmp_path / "job"), "w0") == 0
    assert transport.completed_shard_ids() == ["s0000", "s0001"]
    for shard in shards:
        records = transport.load_result(shard.shard_id)["records"]
        assert [r["index"] for r in records] == list(shard.point_indices)
        assert all(r["worker"] == "w0" for r in records)
    # every executed point was published to the shared cache
    cache = ResultCache(tmp_path / "cache")
    for p in points:
        assert cache.get(point_key(p.params, fingerprint=fingerprint))


# ---------------------------------------------------------------------------
# driver dispatch through run_sweep
# ---------------------------------------------------------------------------


def test_run_sweep_fabric_driver_is_the_coordinator(tmp_path):
    serial = _serial()
    fab = run_sweep(
        SPEC,
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        driver="fabric",
        fabric_dir=tmp_path / "job",
        fabric_options={"shard_size": 2, **FAST},
    )
    assert serial.summaries() == fab.summaries()


def test_fabric_driver_rejects_audit_dir(tmp_path):
    with pytest.raises(ValueError, match="audit_dir requires driver='local'"):
        run_sweep(SPEC, driver="fabric", audit_dir=tmp_path / "audit")


def test_local_driver_rejects_fabric_options(tmp_path):
    with pytest.raises(ValueError, match="driver='fabric'"):
        run_sweep(SPEC, fabric_dir=tmp_path / "job")


def test_unknown_driver_rejected():
    with pytest.raises(ValueError, match="driver"):
        run_sweep(SPEC, driver="slurm")


# ---------------------------------------------------------------------------
# the flight recorder over a real drill
# ---------------------------------------------------------------------------


def test_kill_drill_leaves_a_complete_causal_trace(tmp_path):
    from repro.obs.fabtrace import assemble_trace, fabric_status

    registry = RunRegistry(tmp_path / "registry")
    log = EventLog()
    run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "job",
        workers=2,
        cache=ResultCache(tmp_path / "cache"),
        log=log,
        registry=registry,
        shard_size=2,
        faults=[parse_fault("kill:w0:0:1")],
        **FAST,
    )
    trace = assemble_trace(tmp_path / "job")
    # the acceptance bar: every executed point attributable to exactly
    # one committed shard attempt, with the kill and the steal visible
    assert trace.problems == []
    outcomes = {a.outcome for a in trace.attempts}
    assert "killed" in outcomes
    killed = next(a for a in trace.attempts if a.outcome == "killed")
    successor = next(
        a
        for a in trace.attempts
        if a.shard == killed.shard and a.committed
    )
    assert successor.worker != killed.worker
    assert successor.start >= killed.end
    assert trace.health["worker_deaths"] == 1
    assert trace.health["faults"]["kill"] == 1
    assert trace.health["committed"] == 4  # one per shard
    assert sum(1 for a in trace.attempts if a.committed) == 4

    # the same story is visible without assembly: status + registry
    status = fabric_status(tmp_path / "job")
    assert status["done"] == 4 and status["queued"] == []
    (event,) = _events_of(log, "run_registered")
    fabric = registry.load(event["run_id"])["fabric"]
    assert fabric["worker_deaths"] == 1
    assert fabric["steals"] >= 1
    assert "w0" in fabric["workers_seen"]


def test_tracing_off_is_bit_identical_and_leaves_no_clock_artifacts(tmp_path):
    serial = _serial()
    fab_off = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "off",
        workers=2,
        cache=ResultCache(tmp_path / "cache-off"),
        shard_size=2,
        trace=False,
        **FAST,
    )
    fab_on = run_fabric_sweep(
        SPEC,
        fabric_dir=tmp_path / "on",
        workers=2,
        cache=ResultCache(tmp_path / "cache-on"),
        shard_size=2,
        trace=True,
        **FAST,
    )
    # the null-hook doctrine: the recorder observes, never perturbs
    assert serial.summaries() == fab_off.summaries() == fab_on.summaries()
    # tracing off leaves no recorder artifacts: no coordinator mirror,
    # no dual stamps in the worker streams
    assert not (tmp_path / "off" / "coordinator.jsonl").exists()
    for stream in (tmp_path / "off" / "events").glob("*.jsonl"):
        assert '"t_wall"' not in stream.read_text()
    assert (tmp_path / "on" / "coordinator.jsonl").exists()
    w_on = next((tmp_path / "on" / "events").glob("*.jsonl")).read_text()
    assert '"t_wall"' in w_on and '"t_mono"' in w_on

"""Tests for the AMPI layer."""

import pytest

from repro.ampi import AmpiComm, AmpiProgram
from repro.cluster import Cluster, Interferer, NetworkModel
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.sim import SimulationEngine


def run_program(program, num_cores=2, iterations=3, balancer=None, interfere=None):
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=num_cores)
    rt = program.instantiate(
        eng,
        cl,
        list(range(num_cores)),
        net=NetworkModel.zero(),
        balancer=balancer,
        policy=LBPolicy(period_iterations=2, decision_overhead_s=0.0),
    )
    if interfere is not None:
        Interferer(eng, cl.core(interfere), start=0.0)
    rt.start(iterations=iterations)
    eng.run(until=1000.0)
    return rt


def test_simple_program_runs_to_completion():
    program = AmpiProgram(num_ranks=8, compute=lambda comm, it: 0.01)
    rt = run_program(program)
    assert rt.done
    # 8 ranks over 2 cores: 4 x 0.01s per core per superstep
    assert rt.stats.iteration_times[0] == pytest.approx(0.04)


def test_ring_messages_arrive_next_superstep():
    seen = {}

    def compute(comm: AmpiComm, it: int) -> float:
        msg = comm.recv((comm.rank - 1) % comm.size)
        seen.setdefault(comm.rank, []).append(msg)
        comm.send((comm.rank + 1) % comm.size, (comm.rank, it))
        return 0.001

    program = AmpiProgram(num_ranks=4, compute=compute)
    run_program(program, iterations=3)
    for rank in range(4):
        # superstep 0: nothing yet; afterwards: neighbour's previous send
        assert seen[rank][0] is None
        src = (rank - 1) % 4
        assert seen[rank][1] == (src, 0)
        assert seen[rank][2] == (src, 1)


def test_allreduce_sum_available_next_superstep():
    results = []

    def compute(comm: AmpiComm, it: int) -> float:
        if comm.rank == 0:
            results.append(comm.reduced())
        comm.allreduce(float(comm.rank), op="sum")
        return 0.001

    program = AmpiProgram(num_ranks=4, compute=compute)
    run_program(program, iterations=3)
    assert results[0] is None
    assert results[1] == pytest.approx(6.0)  # 0+1+2+3
    assert results[2] == pytest.approx(6.0)


def test_allreduce_max():
    results = []

    def compute(comm: AmpiComm, it: int) -> float:
        if comm.rank == 0 and it == 1:
            results.append(comm.reduced())
        comm.allreduce(float(comm.rank * 10), op="max")
        return 0.001

    run_program(AmpiProgram(num_ranks=3, compute=compute), iterations=2)
    assert results == [20.0]


def test_mixed_ops_rejected():
    def compute(comm: AmpiComm, it: int) -> float:
        comm.allreduce(1.0, op="sum" if comm.rank == 0 else "max")
        return 0.001

    with pytest.raises(ValueError):
        run_program(AmpiProgram(num_ranks=2, compute=compute), iterations=1)


def test_bad_peer_ranks_rejected():
    def compute(comm: AmpiComm, it: int) -> float:
        comm.send(99, "x")
        return 0.001

    with pytest.raises(ValueError):
        run_program(AmpiProgram(num_ranks=2, compute=compute), iterations=1)


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        run_program(AmpiProgram(num_ranks=2, compute=lambda c, i: -1.0), iterations=1)


def test_ranks_are_load_balanced_under_interference():
    """AMPI ranks migrate away from an interfered core like any chare."""
    program = AmpiProgram(num_ranks=16, compute=lambda comm, it: 0.02)
    rt = run_program(
        program,
        num_cores=4,
        iterations=10,
        balancer=RefineVMInterferenceLB(0.05),
        interfere=0,
    )
    assert rt.done
    assert rt.migration_count > 0
    on_core0 = sum(1 for cid in rt.mapping.values() if cid == 0)
    assert on_core0 < 4  # started with 4, balancer drained some away


def test_validation():
    with pytest.raises(ValueError):
        AmpiProgram(num_ranks=0, compute=lambda c, i: 0.0)
    with pytest.raises(ValueError):
        AmpiProgram(num_ranks=2, compute=lambda c, i: 0.0, state_bytes=-1.0)

"""Unit tests for cluster topology and lookups."""

import pytest

from repro.cluster import Cluster
from repro.sim import SimulationEngine


def test_default_shape_is_paper_testbed():
    cl = Cluster(SimulationEngine())
    assert cl.num_nodes == 8
    assert cl.cores_per_node == 4
    assert cl.num_cores == 32
    assert len(cl.cores) == 32
    assert len(cl.nodes) == 8


def test_core_ids_are_global_and_ordered():
    cl = Cluster(SimulationEngine(), num_nodes=2, cores_per_node=3)
    assert [c.core_id for c in cl.cores] == list(range(6))
    assert cl.nodes[0].core_ids == [0, 1, 2]
    assert cl.nodes[1].core_ids == [3, 4, 5]


def test_node_of():
    cl = Cluster(SimulationEngine(), num_nodes=2, cores_per_node=4)
    assert cl.node_of(0).node_id == 0
    assert cl.node_of(3).node_id == 0
    assert cl.node_of(4).node_id == 1
    assert cl.node_of(7).node_id == 1


def test_core_out_of_range():
    cl = Cluster(SimulationEngine(), num_nodes=1, cores_per_node=2)
    with pytest.raises(IndexError):
        cl.core(2)
    with pytest.raises(IndexError):
        cl.node_of(-1)


def test_nodes_for_deduplicates():
    cl = Cluster(SimulationEngine(), num_nodes=3, cores_per_node=2)
    nodes = cl.nodes_for([0, 1, 4])
    assert [n.node_id for n in nodes] == [0, 2]


def test_invalid_shape_rejected():
    with pytest.raises(ValueError):
        Cluster(SimulationEngine(), num_nodes=0)
    with pytest.raises(ValueError):
        Cluster(SimulationEngine(), cores_per_node=0)


def test_procstat_view_subset():
    cl = Cluster(SimulationEngine(), num_nodes=1, cores_per_node=4)
    stat = cl.procstat("app", core_ids=[1, 2])
    assert list(stat.core_ids()) == [1, 2]


def test_procstat_defaults_to_all_cores():
    cl = Cluster(SimulationEngine(), num_nodes=2, cores_per_node=2)
    stat = cl.procstat("app")
    assert list(stat.core_ids()) == [0, 1, 2, 3]

"""Unit tests for VM descriptors and co-location detection."""

import pytest

from repro.cluster import VirtualMachine, colocated_cores


def test_vm_basic():
    vm = VirtualMachine("hpc", core_ids=(0, 1, 2, 3))
    assert vm.vcpus == 4
    assert vm.weight == 1.0


def test_duplicate_pin_rejected():
    with pytest.raises(ValueError):
        VirtualMachine("bad", core_ids=(0, 0))


def test_nonpositive_weight_rejected():
    with pytest.raises(ValueError):
        VirtualMachine("bad", core_ids=(0,), weight=0.0)


def test_colocated_cores_finds_shared():
    app = VirtualMachine("app", core_ids=(0, 1, 2, 3))
    bg = VirtualMachine("bg", core_ids=(3,))
    shared = colocated_cores([app, bg])
    assert shared == {3: ["app", "bg"]}


def test_colocated_cores_empty_when_disjoint():
    a = VirtualMachine("a", core_ids=(0, 1))
    b = VirtualMachine("b", core_ids=(2, 3))
    assert colocated_cores([a, b]) == {}


def test_three_way_colocation():
    vms = [
        VirtualMachine("a", core_ids=(5,)),
        VirtualMachine("b", core_ids=(5,)),
        VirtualMachine("c", core_ids=(5, 6)),
    ]
    shared = colocated_cores(vms)
    assert shared == {5: ["a", "b", "c"]}

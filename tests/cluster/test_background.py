"""Unit tests for scripted interference."""

import pytest

from repro.cluster import Cluster, Interferer, InterferencePhase, PhasedInterference
from repro.sim import SimProcess, SimulationEngine


def test_interferer_consumes_cpu_in_window():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    intf = Interferer(eng, cl.core(0), start=1.0, end=3.0)
    eng.run(until=5.0)
    assert intf.cpu_consumed == pytest.approx(2.0)
    core = cl.core(0)
    core.sync()
    assert core.busy_time == pytest.approx(2.0)
    assert core.idle_time == pytest.approx(3.0)


def test_interferer_halves_app_throughput():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    Interferer(eng, cl.core(0), start=0.0)
    app = SimProcess("work", 2.0, owner="app")
    cl.core(0).dispatch(app)
    eng.run(until=10.0)
    assert app.completed_at == pytest.approx(4.0)  # 2 CPU-s at 50%


def test_weighted_interferer_starves_app():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    Interferer(eng, cl.core(0), start=0.0, weight=4.0)
    app = SimProcess("work", 1.0, owner="app")
    cl.core(0).dispatch(app)
    eng.run(until=20.0)
    assert app.completed_at == pytest.approx(5.0)  # 20% share


def test_interferer_releases_core_at_end():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    Interferer(eng, cl.core(0), start=0.0, end=1.0)
    app = SimProcess("work", 2.0, owner="app")
    cl.core(0).dispatch(app)
    eng.run(until=10.0)
    # 0.5 CPU-s by t=1 (shared), remaining 1.5 alone -> t=2.5
    assert app.completed_at == pytest.approx(2.5)


def test_interferer_end_before_start_rejected():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    with pytest.raises(ValueError):
        Interferer(eng, cl.core(0), start=2.0, end=1.0)


def test_phased_interference_moves_between_cores():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    phases = [
        InterferencePhase(core_id=1, start=0.0, end=2.0),
        InterferencePhase(core_id=3, start=4.0, end=6.0),
    ]
    pi = PhasedInterference(eng, cl.cores, phases)
    eng.run(until=10.0)
    assert pi.interferers[0].cpu_consumed == pytest.approx(2.0)
    assert pi.interferers[1].cpu_consumed == pytest.approx(2.0)
    c1, c3 = cl.core(1), cl.core(3)
    c1.sync(), c3.sync()
    assert c1.busy_time == pytest.approx(2.0)
    assert c3.busy_time == pytest.approx(2.0)


def test_phase_on_unknown_core_rejected():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    with pytest.raises(ValueError):
        PhasedInterference(eng, cl.cores, [InterferencePhase(core_id=9, start=0.0)])


def test_phase_validation():
    with pytest.raises(ValueError):
        InterferencePhase(core_id=0, start=5.0, end=1.0)
    with pytest.raises(ValueError):
        InterferencePhase(core_id=0, start=0.0, weight=0.0)

"""Unit tests for the network cost model."""

import pytest

from repro.cluster import NetworkModel


def test_message_time_components():
    net = NetworkModel(latency_s=1e-3, bandwidth_Bps=1e6, per_message_overhead_s=1e-4)
    assert net.message_time(0) == pytest.approx(1.1e-3)
    assert net.message_time(1e6) == pytest.approx(1.1e-3 + 1.0)


def test_virtualized_is_slower_than_native():
    native = NetworkModel.native()
    cloud = NetworkModel.virtualized()
    for size in (0, 1024, 1 << 20):
        assert cloud.message_time(size) > native.message_time(size)


def test_zero_network_is_free():
    net = NetworkModel.zero()
    assert net.message_time(1 << 30) == pytest.approx(0.0, abs=1e-6)


def test_migration_time_exceeds_message_time():
    net = NetworkModel.native()
    assert net.migration_time(4096) > net.message_time(4096)


def test_negative_bytes_rejected():
    net = NetworkModel.native()
    with pytest.raises(ValueError):
        net.message_time(-1)


def test_invalid_model_rejected():
    with pytest.raises(ValueError):
        NetworkModel(latency_s=-1.0)
    with pytest.raises(ValueError):
        NetworkModel(bandwidth_Bps=0.0)

"""The fabric flight recorder: trace assembly, rebasing, health, export.

Everything here runs against synthetic job directories — hand-written
``"schema":1`` streams with *deliberately skewed* wall clocks — so the
assembler's one real promise (the merged timeline is causally
consistent no matter how the hosts' clocks disagree) is tested directly
rather than hoped for. The live-fabric end of the same contract (real
workers, real kills) lives in ``tests/fabric/test_fabric_integration``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fabric.transport import JOB_SCHEMA, FileTransport
from repro.experiments.progress import PROGRESS_SCHEMA
from repro.obs.fabtrace import (
    COORDINATOR,
    FabricTrace,
    assemble_trace,
    export_perfetto,
    fabric_status,
    format_status_text,
    format_trace_text,
)

_EPS = 1e-6


def _stream_lines(events, *, skew=0.0, mono_base=0.0, clock=True):
    """Serialize ``(true_time, payload)`` pairs as one worker's JSONL.

    ``t`` is the offset from the stream's first event (what EventLog
    writes); with ``clock`` the dual stamps are added — ``t_mono`` on a
    private monotonic axis, ``t_wall`` on a wall clock ``skew`` seconds
    away from the true global clock.
    """
    t0 = events[0][0]
    lines = []
    for true_t, payload in events:
        record = {
            "schema": PROGRESS_SCHEMA,
            "t": round(true_t - t0, 6),
            **payload,
        }
        if clock:
            record["t_mono"] = round(true_t + mono_base, 6)
            record["t_wall"] = round(true_t + skew, 6)
        lines.append(json.dumps(record))
    return "".join(line + "\n" for line in lines)


def _kill_drill_job(root, *, skews=(0.0, 0.0, 0.0), clock=True):
    """A 2-shard, 2-worker job where w0 is killed and w1 steals.

    True (global) schedule:
      w0: claims s0000, executes ``ka``, dies to a kill fault at 0.31
      w1: finishes s0001 (``kb``), then steals s0000 and re-runs ``ka``
      coordinator: narrates publish, completes, the death and the steal
    ``skews`` shifts each stream's *wall* clock (coordinator, w0, w1)
    without touching the true order — the assembler must undo it.
    """
    coord_skew, w0_skew, w1_skew = skews
    transport = FileTransport(root)
    transport.publish_job(
        {
            "schema": JOB_SCHEMA,
            "name": "drill",
            "shards": [
                {"index": 0, "shard_id": "s0000", "point_indices": [0]},
                {"index": 1, "shard_id": "s0001", "point_indices": [1]},
            ],
        }
    )
    (root / "events").mkdir(exist_ok=True)
    (root / "events" / "w0.jsonl").write_text(
        _stream_lines(
            [
                (0.02, {"event": "worker_start", "worker": "w0"}),
                (0.03, {"event": "shard_claimed", "shard": "s0000",
                        "worker": "w0", "points": 1}),
                (0.30, {"event": "point_done", "shard": "s0000",
                        "worker": "w0", "key": "ka", "label": "a",
                        "cached": False, "wall_s": 0.27}),
                (0.31, {"event": "fault", "kind": "kill", "shard": "s0000",
                        "worker": "w0"}),
            ],
            skew=w0_skew, mono_base=100.0, clock=clock,
        )
    )
    (root / "events" / "w1.jsonl").write_text(
        _stream_lines(
            [
                (0.02, {"event": "worker_start", "worker": "w1"}),
                (0.03, {"event": "shard_claimed", "shard": "s0001",
                        "worker": "w1", "points": 1}),
                (0.40, {"event": "point_done", "shard": "s0001",
                        "worker": "w1", "key": "kb", "label": "b",
                        "cached": False, "wall_s": 0.36}),
                (0.41, {"event": "shard_done", "shard": "s0001",
                        "worker": "w1", "points": 1}),
                (0.70, {"event": "shard_claimed", "shard": "s0000",
                        "worker": "w1", "points": 1}),
                (0.90, {"event": "point_done", "shard": "s0000",
                        "worker": "w1", "key": "ka", "label": "a",
                        "cached": False, "wall_s": 0.19}),
                (0.91, {"event": "shard_done", "shard": "s0000",
                        "worker": "w1", "points": 1}),
                (0.95, {"event": "worker_exit", "worker": "w1"}),
            ],
            skew=w1_skew, mono_base=200.0, clock=clock,
        )
    )
    (root / "coordinator.jsonl").write_text(
        _stream_lines(
            [
                (0.00, {"event": "sweep_start", "spec": "drill", "points": 2,
                        "workers": 2, "cached": 0}),
                (0.01, {"event": "job_published", "shards": 2}),
                (0.45, {"event": "shard_complete", "shard": "s0001",
                        "worker": "w1"}),
                (0.60, {"event": "worker_dead", "worker": "w0"}),
                (0.61, {"event": "shard_reassigned", "shard": "s0000",
                        "worker": "w0"}),
                (0.95, {"event": "shard_complete", "shard": "s0000",
                        "worker": "w1"}),
                (1.00, {"event": "sweep_done", "points": 2}),
            ],
            skew=coord_skew, mono_base=300.0, clock=clock,
        )
    )
    transport.submit_result(
        "s0001", "w1", [{"key": "kb", "cached": False}]
    )
    transport.submit_result(
        "s0000", "w1", [{"key": "ka", "cached": False}]
    )
    return root


def _g(trace, stream, predicate):
    """Global time of the first event of ``stream`` matching ``predicate``."""
    for event in trace.streams[stream]:
        if predicate(event):
            return event["g"]
    raise AssertionError(f"no matching event in {stream}")


def _assert_causally_consistent(trace: FabricTrace) -> None:
    """The protocol's happens-before pairs hold on the rebased clock."""
    publish = _g(trace, COORDINATOR, lambda e: e["event"] == "job_published")
    for worker in ("w0", "w1"):
        first = trace.streams[worker][0]["g"]
        assert publish <= first + _EPS, (publish, worker, first)
    done_s1 = _g(
        trace, "w1",
        lambda e: e["event"] == "shard_done" and e.get("shard") == "s0001",
    )
    complete_s1 = _g(
        trace, COORDINATOR,
        lambda e: e["event"] == "shard_complete" and e.get("shard") == "s0001",
    )
    assert done_s1 <= complete_s1 + _EPS
    # the steal: w0's kill precedes w1's claim of the same shard
    kill = _g(trace, "w0", lambda e: e["event"] == "fault")
    steal_claim = _g(
        trace, "w1",
        lambda e: e["event"] == "shard_claimed" and e.get("shard") == "s0000",
    )
    assert kill <= steal_claim + _EPS
    # global timestamps never go backwards within one stream
    for events in trace.streams.values():
        gs = [e["g"] for e in events]
        assert gs == sorted(gs)
    assert all(e["g"] >= 0 for e in trace.timeline)


# ---------------------------------------------------------------------------
# assembly on honest clocks
# ---------------------------------------------------------------------------


def test_assemble_reconstructs_the_kill_drill(tmp_path):
    trace = assemble_trace(_kill_drill_job(tmp_path))
    assert trace.job_name == "drill"
    assert trace.workers == ["w0", "w1"]
    _assert_causally_consistent(trace)

    by_label = {a.label: a for a in trace.attempts}
    assert set(by_label) == {"s0000#1", "s0000#2", "s0001#1"}
    assert by_label["s0000#1"].worker == "w0"
    assert by_label["s0000#1"].outcome == "killed"
    assert not by_label["s0000#1"].committed
    assert by_label["s0000#2"].worker == "w1"
    assert by_label["s0000#2"].outcome == "done"
    assert by_label["s0000#2"].committed
    assert by_label["s0001#1"].committed

    health = trace.health
    assert health["steals"] == 1
    assert health["worker_deaths"] == 1
    assert health["faults"] == {"kill": 1, "hang": 0, "duplicate": 0}
    assert health["committed"] == 2
    assert trace.problems == []
    # the critical path ends at the last-finishing attempt (the steal)
    assert trace.critical_path[-1].label == "s0000#2"


def test_queue_depth_series_tracks_claims_steals_and_completions(tmp_path):
    trace = assemble_trace(_kill_drill_job(tmp_path))
    depths = [d for _t, d in trace.health["queue_depth"]]
    # 2 queued -> both claimed -> s0001 done -> s0000 requeued by the
    # steal -> reclaimed -> done
    assert depths[0] in (1, 2) and 0 in depths
    assert depths[-1] == 0
    times = [t for t, _d in trace.health["queue_depth"]]
    assert times == sorted(times)


def test_assembly_without_clock_fields_falls_back_to_envelope_t(tmp_path):
    """Tracing off: no ``t_wall``/``t_mono`` anywhere, causality still holds."""
    trace = assemble_trace(_kill_drill_job(tmp_path, clock=False))
    _assert_causally_consistent(trace)
    assert trace.problems == []
    assert trace.health["steals"] == 1


def test_missing_job_is_a_value_error(tmp_path):
    with pytest.raises(ValueError, match="no fabric job"):
        assemble_trace(tmp_path)


def test_interrupted_stream_yields_a_lost_attempt(tmp_path):
    """A stream that ends mid-attempt (hard crash): outcome ``lost``."""
    root = _kill_drill_job(tmp_path)
    (root / "events" / "w2.jsonl").write_text(
        _stream_lines(
            [
                (1.10, {"event": "worker_start", "worker": "w2"}),
                (1.11, {"event": "shard_claimed", "shard": "s0001",
                        "worker": "w2", "points": 1}),
            ],
            mono_base=400.0,
        )
    )
    trace = assemble_trace(root)
    lost = [a for a in trace.attempts if a.worker == "w2"]
    assert len(lost) == 1 and lost[0].outcome == "lost"
    assert not lost[0].committed


def test_commit_by_unnarrated_worker_is_reported_as_a_problem(tmp_path):
    root = _kill_drill_job(tmp_path)
    FileTransport(root).submit_result(
        "s0001", "ghost", [{"key": "kb", "cached": False}]
    )
    trace = assemble_trace(root)
    assert any("ghost" in p for p in trace.problems)
    assert "PROBLEMS" in format_trace_text(trace)


# ---------------------------------------------------------------------------
# clock rebasing under skew
# ---------------------------------------------------------------------------


def test_gross_wall_skew_is_undone_by_causal_edges(tmp_path):
    # w1's wall clock is five minutes behind, w0's two minutes ahead —
    # far beyond any lease timeout. Wall order is garbage; the
    # assembled order must not be.
    trace = assemble_trace(
        _kill_drill_job(tmp_path, skews=(0.0, 120.0, -300.0))
    )
    _assert_causally_consistent(trace)
    assert trace.problems == []
    by_label = {a.label: a for a in trace.attempts}
    # attempt numbering follows the rebased clock: the killed attempt
    # is still #1 even though its wall stamps say it ran "later"
    assert by_label["s0000#1"].outcome == "killed"
    assert by_label["s0000#2"].committed


@settings(max_examples=30, deadline=None)
@given(
    coord_skew=st.floats(-600.0, 600.0),
    w0_skew=st.floats(-600.0, 600.0),
    w1_skew=st.floats(-600.0, 600.0),
)
def test_causal_consistency_for_any_clock_skew(
    tmp_path_factory, coord_skew, w0_skew, w1_skew
):
    root = tmp_path_factory.mktemp("skew")
    trace = assemble_trace(
        _kill_drill_job(root, skews=(coord_skew, w0_skew, w1_skew))
    )
    _assert_causally_consistent(trace)
    assert trace.problems == []
    # structure is skew-invariant: same attempts, same commits
    assert {
        (a.label, a.outcome, a.committed) for a in trace.attempts
    } == {
        ("s0000#1", "killed", False),
        ("s0000#2", "done", True),
        ("s0001#1", "done", True),
    }


@settings(max_examples=20, deadline=None)
@given(skew=st.floats(-600.0, 600.0))
def test_rebasing_preserves_intra_stream_durations(tmp_path_factory, skew):
    root = tmp_path_factory.mktemp("dur")
    trace = assemble_trace(_kill_drill_job(root, skews=(0.0, skew, 0.0)))
    w0 = trace.streams["w0"]
    # offsets slide whole streams: gaps between a stream's own events
    # are exactly the monotonic gaps, untouched by the rebase
    assert w0[-1]["g"] - w0[0]["g"] == pytest.approx(0.31 - 0.02, abs=1e-5)


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


def test_perfetto_export_round_trips_the_viewer_contract(tmp_path):
    trace = assemble_trace(_kill_drill_job(tmp_path / "job"))
    out = tmp_path / "drill.trace.json"
    n = export_perfetto(trace, out)
    events = json.load(open(out))
    assert isinstance(events, list) and len(events) == n
    # per-track monotonic timestamps — same invariant as the simulator's
    # trace-format tests
    per_track = {}
    for e in events:
        if "ts" in e:
            per_track.setdefault(
                (e["pid"], e.get("tid"), e.get("cat")), []
            ).append(e["ts"])
    for key, ts in per_track.items():
        assert ts == sorted(ts), key
    # one named track per worker
    thread_names = {
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    }
    assert thread_names == {"w0", "w1"}
    # the steal appears as a migration between the workers' tracks
    migrations = [e for e in events if e.get("cat") == "migration"]
    assert len(migrations) == 1


def test_perfetto_export_is_skew_stable(tmp_path):
    """The same drill exports the same span structure under gross skew."""
    a = assemble_trace(_kill_drill_job(tmp_path / "a"))
    b = assemble_trace(
        _kill_drill_job(tmp_path / "b", skews=(60.0, -240.0, 300.0))
    )
    export_perfetto(a, tmp_path / "a.json")
    export_perfetto(b, tmp_path / "b.json")

    def spans(path):
        return sorted(
            (e["name"], e["tid"])
            for e in json.load(open(path))
            if e.get("cat") == "task"
        )

    assert spans(tmp_path / "a.json") == spans(tmp_path / "b.json")


# ---------------------------------------------------------------------------
# live status
# ---------------------------------------------------------------------------


def test_fabric_status_snapshot(tmp_path):
    root = _kill_drill_job(tmp_path)
    transport = FileTransport(root)
    transport.register_worker("w0")
    transport.register_worker("w1")
    status = fabric_status(root)
    assert status["name"] == "drill"
    assert status["shards"] == 2 and status["done"] == 2
    assert status["queued"] == [] and status["leased"] == []
    assert not status["stopped"]
    workers = {w["worker"]: w for w in status["workers"]}
    assert workers["w0"]["last_event"] == "fault"
    assert workers["w1"]["last_event"] == "worker_exit"
    text = format_status_text(status)
    assert "2/2 done" in text and "w0" in text


def test_fabric_status_shows_live_leases_and_queue(tmp_path):
    transport = FileTransport(tmp_path)
    transport.publish_job(
        {
            "schema": JOB_SCHEMA,
            "name": "live",
            "shards": [
                {"index": s, "shard_id": f"s{s:04d}", "point_indices": [s]}
                for s in range(3)
            ],
        }
    )
    transport.claim_shard("w0", lease_timeout_s=60)
    transport.submit_result("s0001", "w1", [])
    status = fabric_status(tmp_path)
    assert status["done"] == 1
    assert [lease["shard"] for lease in status["leased"]] == ["s0000"]
    assert status["leased"][0]["worker"] == "w0"
    assert status["queued"] == ["s0002"]
    assert "lease s0000 -> w0" in format_status_text(status)


def test_fabric_status_without_a_job_is_a_value_error(tmp_path):
    with pytest.raises(ValueError, match="no fabric job"):
        fabric_status(tmp_path)


# ---------------------------------------------------------------------------
# renderings
# ---------------------------------------------------------------------------


def test_trace_text_summarises_health_and_critical_path(tmp_path):
    trace = assemble_trace(_kill_drill_job(tmp_path))
    text = format_trace_text(trace)
    assert "fabric trace: drill" in text
    assert "steals=1" in text and "kill=1" in text
    assert "critical path" in text
    assert "causality: every executed point" in text
    data = trace.to_dict()
    json.dumps(data)  # JSON-ready, no dataclasses/paths left inside
    assert data["critical_path"][-1] == "s0000#2"

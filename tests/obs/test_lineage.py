"""The imbalance observatory: metrics, lineage graph, counterfactuals.

Three layers under test: the exact imbalance statistics
(:func:`imbalance_metrics` — λ, CoV, Gini), the
:class:`LineageRecorder` hook contract and its derived residency
graph / counterfactual bounds (hand-built sample schedules with known
answers), and the carriage through sweeps, caches, the registry, the
anomaly rules and the report. Backend parity of the payloads lives in
``tests/experiments/test_backend_parity.py``.
"""

import json
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import ResultCache
from repro.experiments.runner import run_scenario
from repro.experiments.sweep import (
    SweepSpec,
    build_scenario,
    run_point,
    run_point_lineaged,
    run_sweep,
)
from repro.obs.anomaly import Thresholds, check_lineage, check_run
from repro.obs.lineage import (
    LINEAGE_SCHEMA,
    LineageError,
    LineageRecorder,
    format_lineage_text,
    imbalance_metrics,
    lineage_dot,
)
from repro.obs.registry import RunRegistry
from repro.obs.report import _migration_flow_svg, build_report, render_report
from repro.telemetry import Telemetry

#: Cheap scenario base the integration tests sweep around.
TINY = {"app": "jacobi2d", "scale": 0.05, "iterations": 5, "cores": 4}


# ---------------------------------------------------------------------------
# imbalance metrics: exact invariants
# ---------------------------------------------------------------------------


class TestImbalanceMetrics:
    def test_empty_and_negative_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            imbalance_metrics([])
        with pytest.raises(ValueError, match="non-negative"):
            imbalance_metrics([1.0, -0.5])

    def test_all_zero_is_perfectly_balanced(self):
        m = imbalance_metrics([0, 0, 0])
        assert m["lambda"] == 1.0 and m["cov"] == 0.0 and m["gini"] == 0.0

    def test_known_two_core_example(self):
        # loads (3, 1): mean 2, max 3 -> λ 1.5; var 1 -> cov 0.5;
        # gini = ((2*0-1)*1 + (2*1-1)*3) / (2*4) = 0.25
        m = imbalance_metrics([3, 1])
        assert m["lambda"] == 1.5
        assert m["cov"] == 0.5
        assert m["gini"] == 0.25
        assert m["max_s"] == 3.0 and m["mean_s"] == 2.0 and m["total_s"] == 4.0

    def test_balanced_vector_is_exactly_flat(self):
        m = imbalance_metrics([0.7, 0.7, 0.7, 0.7])
        assert m["lambda"] == 1.0 and m["cov"] == 0.0 and m["gini"] == 0.0


# dyadic rationals: exact as floats AND as Fractions, so the invariants
# below are theorems, not approximations
_dyadic = st.integers(min_value=0, max_value=1 << 12).map(
    lambda n: Fraction(n, 16)
)
_load_vectors = st.lists(_dyadic, min_size=1, max_size=12)


@settings(max_examples=200, deadline=None)
@given(loads=_load_vectors)
def test_metric_invariants_hold_exactly(loads):
    m = imbalance_metrics(loads)
    n = len(loads)
    assert m["lambda"] >= 1.0
    assert 0.0 <= m["gini"] < 1.0
    assert m["gini"] <= (n - 1) / n if n > 1 else m["gini"] == 0.0
    assert m["cov"] >= 0.0
    balanced = len(set(loads)) == 1
    # CoV = 0 iff perfectly balanced — and λ = 1 exactly then, too
    assert (m["cov"] == 0.0) == balanced
    if balanced:
        assert m["lambda"] == 1.0 and m["gini"] == 0.0


@settings(max_examples=100, deadline=None)
@given(loads=_load_vectors, seed=st.integers(min_value=0, max_value=2**16))
def test_metrics_are_permutation_invariant(loads, seed):
    shuffled = list(loads)
    random.Random(seed).shuffle(shuffled)
    assert imbalance_metrics(loads) == imbalance_metrics(shuffled)


# ---------------------------------------------------------------------------
# recorder mechanics: the hook contract
# ---------------------------------------------------------------------------

X = ("c", 0)
Y = ("c", 1)


def _two_chare_recorder():
    """2 cores, 2 chares both starting on core 0, 1 cpu-s per task.

    Iterations 0-1 run on the initial placement; an LB step before
    iteration 2 moves Y to core 1; iterations 2-3 run balanced.
    """
    rec = LineageRecorder(job="app", core_ids=(0, 1))
    rec.record_placement({X: 0, Y: 0})
    for i in range(4):
        rec.mark_iteration(i, float(i))
    rec.record_sample(X, 0, 0, 1.0)
    rec.record_sample(Y, 0, 0, 1.0)
    rec.record_sample(X, 1, 0, 1.0)
    rec.record_sample(Y, 1, 0, 1.0)
    rec.record_lb_step(time=2.0, iteration=2, migrations=[(Y, 0, 1)])
    rec.record_sample(X, 2, 0, 1.0)
    rec.record_sample(Y, 2, 1, 1.0)
    rec.record_sample(X, 3, 0, 1.0)
    rec.record_sample(Y, 3, 1, 1.0)
    return rec


class TestRecorderContract:
    def test_duplicate_core_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            LineageRecorder(core_ids=(0, 0, 1))

    def test_placement_only_once(self):
        rec = LineageRecorder(core_ids=(0,))
        rec.record_placement({X: 0})
        with pytest.raises(LineageError, match="already recorded"):
            rec.record_placement({X: 0})

    def test_placement_on_foreign_core_rejected(self):
        rec = LineageRecorder(core_ids=(0, 1))
        with pytest.raises(LineageError, match="not one of the"):
            rec.record_placement({X: 7})

    def test_duplicate_sample_rejected(self):
        rec = LineageRecorder(core_ids=(0,))
        rec.record_sample(X, 0, 0, 1.0)
        with pytest.raises(LineageError, match="duplicate sample"):
            rec.record_sample(X, 0, 0, 2.0)

    def test_negative_sample_rejected(self):
        rec = LineageRecorder(core_ids=(0,))
        with pytest.raises(LineageError, match="negative CPU"):
            rec.record_sample(X, 0, 0, -1e-9)

    def test_iteration_marks_must_be_dense_and_monotone(self):
        rec = LineageRecorder(core_ids=(0,))
        rec.mark_iteration(0, 0.0)
        with pytest.raises(LineageError, match="out of order"):
            rec.mark_iteration(2, 1.0)
        with pytest.raises(LineageError, match="non-decreasing"):
            rec.mark_iteration(1, -1.0)

    def test_lb_steps_must_advance(self):
        rec = LineageRecorder(core_ids=(0, 1))
        rec.record_lb_step(time=1.0, iteration=1, migrations=[])
        with pytest.raises(LineageError, match="ordered in time"):
            rec.record_lb_step(time=2.0, iteration=1, migrations=[])
        with pytest.raises(LineageError, match="ordered in time"):
            rec.record_lb_step(time=0.5, iteration=3, migrations=[])

    def test_close_is_final(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        assert rec.closed
        with pytest.raises(LineageError, match="already closed"):
            rec.close(5.0)

    def test_payload_requires_close(self):
        with pytest.raises(LineageError, match="still open"):
            _two_chare_recorder().payload()

    def test_hooks_after_close_are_silent_noops(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        before = rec.payload()
        rec.record_sample(X, 4, 0, 1.0)
        rec.mark_iteration(4, 9.0)
        rec.record_lb_step(time=9.0, iteration=4, migrations=[])
        assert rec.payload() == before

    def test_migration_source_must_match_residency(self):
        rec = _two_chare_recorder()
        rec.record_lb_step(time=4.0, iteration=4, migrations=[(Y, 0, 1)])
        rec.close(4.0)
        with pytest.raises(LineageError, match="resides on core"):
            rec.payload()

    def test_migration_of_unplaced_chare_rejected(self):
        rec = LineageRecorder(core_ids=(0, 1))
        rec.record_placement({X: 0})
        rec.mark_iteration(0, 0.0)
        rec.record_sample(X, 0, 0, 1.0)
        rec.record_lb_step(time=1.0, iteration=1, migrations=[(("c", 9), 0, 1)])
        rec.close(1.0)
        with pytest.raises(LineageError, match="unplaced chare"):
            rec.payload()

    def test_missing_sample_is_a_broken_graph(self):
        rec = LineageRecorder(core_ids=(0, 1))
        rec.record_placement({X: 0, Y: 1})
        rec.mark_iteration(0, 0.0)
        rec.record_sample(X, 0, 0, 1.0)  # Y never sampled
        rec.close(1.0)
        with pytest.raises(LineageError, match="does not match the placed"):
            rec.payload()

    def test_sample_on_wrong_core_is_a_broken_graph(self):
        rec = LineageRecorder(core_ids=(0, 1))
        rec.record_placement({X: 0})
        rec.mark_iteration(0, 0.0)
        rec.record_sample(X, 0, 1, 1.0)  # placed on 0, sampled on 1
        rec.close(1.0)
        with pytest.raises(LineageError, match="resides on core"):
            rec.payload()


# ---------------------------------------------------------------------------
# residencies + counterfactual bounds on a known schedule
# ---------------------------------------------------------------------------


class TestHandBuiltCounterfactuals:
    def test_residencies_partition_the_lifetime(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        res = rec.payload()["residencies"]
        assert res["c[0]"] == [
            {"core": 0, "from_iteration": 0, "to_iteration": 4, "lb_step": None}
        ]
        assert res["c[1]"] == [
            {"core": 0, "from_iteration": 0, "to_iteration": 2, "lb_step": None},
            {"core": 1, "from_iteration": 2, "to_iteration": 4, "lb_step": 0},
        ]

    def test_per_iteration_metrics(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        rows = rec.payload()["per_iteration"]
        # iterations 0-1: both chares on core 0 -> λ = 2/1 = 2
        assert rows[0]["lambda"] == 2.0
        assert rows[0]["loads"] == {"0": 2.0, "1": 0.0}
        assert rows[0]["shares"] == {"0": 1.0, "1": 0.0}
        # iterations 2-3: balanced
        assert rows[3]["lambda"] == 1.0
        assert rows[3]["loads"] == {"0": 1.0, "1": 1.0}

    def test_perfect_step_recovers_everything(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        (step,) = rec.payload()["steps"]
        # interval [2, 4): observed max 2 (1+1 per core); no-LB replay
        # puts all 4 cpu-s back on core 0; oracle = 4/2 = 2
        assert step["iterations"] == [2, 4]
        assert step["observed_max_s"] == 2.0
        assert step["nolb_max_s"] == 4.0
        assert step["oracle_max_s"] == 2.0
        assert step["recovered_s"] == 2.0 and step["recoverable_s"] == 2.0
        assert step["efficiency"] == 1.0
        assert step["lambda_observed"] == 1.0 and step["lambda_nolb"] == 2.0
        assert step["sane"]

    def test_run_block_totals_and_hotspot(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        run = rec.payload()["run"]
        assert run["lb_steps"] == 1 and run["migrations"] == 1
        assert run["efficiency"] == 1.0 and run["sane"]
        hot = run["residual_hotspot"]
        # closing interval is balanced: tie breaks to the lowest core
        assert hot["core"] == 0 and hot["share"] == 0.5
        assert hot["chares"] == [{"chare": "c[0]", "cpu_s": 2.0}]

    def test_interference_is_pinned_to_its_core(self):
        # same app schedule, but core 1 suffers 3 cpu-s of interference
        # after the step: the replay must charge it in BOTH variants,
        # turning a helpful-looking step into a genuinely insane one
        rec = LineageRecorder(job="app", core_ids=(0, 1))
        rec.record_placement({X: 0, Y: 0})
        for i in range(4):
            rec.mark_iteration(i, float(i))
        for i in range(2):
            rec.record_sample(X, i, 0, 1.0)
            rec.record_sample(Y, i, 0, 1.0)
        rec.record_lb_step(
            time=2.0, iteration=2, migrations=[(Y, 0, 1)],
            bg_cpu={0: 0.0, 1: 0.0},
        )
        for i in range(2, 4):
            rec.record_sample(X, i, 0, 1.0)
            rec.record_sample(Y, i, 1, 1.0)
        rec.close(4.0, bg_cpu={0: 0.0, 1: 3.0})
        (step,) = rec.payload()["steps"]
        assert step["interference_s"] == 3.0
        # observed: core 1 carries 1+1 app + 3 stolen = 5; no-LB: core 0
        # carries all 4 app, core 1 keeps its 3 stolen -> max 4
        assert step["observed_max_s"] == 5.0
        assert step["nolb_max_s"] == 4.0
        assert step["oracle_max_s"] == 3.5
        assert not step["sane"]  # the step made things worse
        assert step["oracle_max_s"] <= step["observed_max_s"]

    def test_noop_step_has_nothing_to_recover_when_balanced(self):
        rec = LineageRecorder(core_ids=(0, 1))
        rec.record_placement({X: 0, Y: 1})
        rec.mark_iteration(0, 0.0)
        rec.mark_iteration(1, 1.0)
        rec.record_sample(X, 0, 0, 1.0)
        rec.record_sample(Y, 0, 1, 1.0)
        rec.record_lb_step(time=1.0, iteration=1, migrations=[])
        rec.record_sample(X, 1, 0, 1.0)
        rec.record_sample(Y, 1, 1, 1.0)
        rec.close(2.0)
        (step,) = rec.payload()["steps"]
        assert step["recovered_s"] == 0.0 and step["recoverable_s"] == 0.0
        assert step["efficiency"] is None and step["sane"]


# ---------------------------------------------------------------------------
# the audit join
# ---------------------------------------------------------------------------


def _audit_record(**over):
    record = {
        "iteration": 2,
        "strategy": "greedy",
        "candidates": [
            {"chare": ["c", 1], "src": 0, "dst": 1, "reason": "max-min",
             "outcome": "accepted"},
            {"chare": ["c", 0], "src": 0, "dst": 1, "reason": "over-eps",
             "outcome": "rejected"},
        ],
    }
    record.update(over)
    return record


class TestAuditJoin:
    def test_reason_strategy_and_rejected_count_joined(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        (step,) = rec.payload(audit=[_audit_record()])["steps"]
        assert step["strategy"] == "greedy"
        assert step["rejected"] == 1
        assert step["migrations"] == [
            {"chare": "c[1]", "src": 0, "dst": 1, "reason": "max-min"}
        ]

    def test_unjoined_migration_has_no_reason(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        (step,) = rec.payload(audit=[_audit_record(candidates=[])])["steps"]
        assert step["migrations"][0]["reason"] is None
        assert step["rejected"] == 0

    def test_audit_length_mismatch_rejected(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        with pytest.raises(LineageError, match="audit trail has 2"):
            rec.payload(audit=[_audit_record(), _audit_record()])

    def test_audit_iteration_mismatch_rejected(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        with pytest.raises(LineageError, match="audit iteration"):
            rec.payload(audit=[_audit_record(iteration=3)])

    def test_without_audit_fields_are_none(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        (step,) = rec.payload()["steps"]
        assert step["strategy"] is None and step["rejected"] is None


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


class TestRendering:
    def _payload(self):
        rec = _two_chare_recorder()
        rec.close(4.0)
        return rec.payload(audit=[_audit_record()])

    def test_text_summary_reads_the_whole_story(self):
        text = format_lineage_text(self._payload(), label="tiny")
        assert text.startswith("tiny: app: 4 iterations x 2 cores")
        assert "λ  2.000" in text
        assert "LB step 0 [greedy] before iter 2" in text
        assert "recovered 2.000000/2.000000 core-s (100% of achievable)" in text
        assert "c[1]" in text and "core 0 -> 1 (max-min)" in text
        assert "residual hotspot: core 0" in text
        assert "NOT SANE" not in text

    def test_dot_flow_graph(self):
        dot = lineage_dot(self._payload())
        assert dot.startswith("digraph lineage {")
        assert 'c0 -> c1 [label="1"' in dot
        assert '"core 0\\n50.0%"' in dot

    def test_payload_is_json_safe(self):
        payload = self._payload()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schema"] == LINEAGE_SCHEMA


# ---------------------------------------------------------------------------
# real runs: the lineage graph is consistent by construction
# ---------------------------------------------------------------------------


def _lineaged_run(params):
    scenario = build_scenario(params)
    telemetry = Telemetry()
    lineage = LineageRecorder(job="app", core_ids=scenario.app_core_ids)
    run_scenario(scenario, backend="fast", telemetry=telemetry, lineage=lineage)
    return lineage.payload(audit=telemetry.audit.records)


_graph_params = st.fixed_dictionaries(
    {
        "app": st.sampled_from(["jacobi2d", "wave2d"]),
        "scale": st.sampled_from([0.02, 0.05]),
        "iterations": st.integers(min_value=2, max_value=10),
        "cores": st.sampled_from([2, 4]),
        "balancer": st.sampled_from(["refine-vm", "greedy", "greedy-aware"]),
        "bg": st.booleans(),
        "lb_period": st.sampled_from([2, 3]),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)


@settings(max_examples=10, deadline=None)
@given(params=_graph_params)
def test_lineage_graph_consistency(params):
    """Residency intervals tile each chare's lifetime contiguously, and
    every non-initial interval matches exactly one audited migration of
    that chare into that core at that step."""
    payload = _lineaged_run(params)
    n = payload["iterations"]
    edges = 0
    for chare, intervals in payload["residencies"].items():
        assert intervals[0]["from_iteration"] == 0
        assert intervals[0]["lb_step"] is None
        assert intervals[0]["core"] == payload["placement"][chare]
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur["from_iteration"] == prev["to_iteration"]
            assert cur["core"] != prev["core"]
        assert intervals[-1]["to_iteration"] == n
        for cur, prev in zip(intervals[1:], intervals):
            edges += 1
            step = payload["steps"][cur["lb_step"]]
            assert step["iteration"] == cur["from_iteration"]
            matches = [
                m for m in step["migrations"]
                if m["chare"] == chare and m["dst"] == cur["core"]
                and m["src"] == prev["core"]
            ]
            assert len(matches) == 1
            # the audit join resolved this committed move's reason
            assert matches[0]["reason"] is not None
    assert edges == sum(len(s["migrations"]) for s in payload["steps"])
    assert edges == payload["run"]["migrations"]


# ---------------------------------------------------------------------------
# sweep carriage: run_point_lineaged, cache extras, registry
# ---------------------------------------------------------------------------

_SPEC = SweepSpec(name="lin", base=TINY, axes={"balancer": ["none", "refine-vm"]})


class TestSweepCarriage:
    def test_run_point_lineaged_matches_run_point(self):
        params = {**TINY, "balancer": "refine-vm"}
        summary, payload = run_point_lineaged(params)
        assert summary == run_point(params)
        assert payload["schema"] == LINEAGE_SCHEMA
        assert payload["iterations"] == TINY["iterations"]
        assert all(s["strategy"] is not None for s in payload["steps"])

    def test_sweep_lineage_rides_every_point(self):
        plain = run_sweep(_SPEC, workers=1, cache=None)
        lineaged = run_sweep(_SPEC, workers=1, cache=None, lineage=True)
        assert lineaged.summaries() == plain.summaries()
        assert all(r.lineage is not None for r in lineaged.results)
        assert all(r.lineage["schema"] == LINEAGE_SCHEMA
                   for r in lineaged.results)

    def test_cache_round_trip_preserves_payloads(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(_SPEC, workers=1, cache=cache, lineage=True)
        assert not any(r.cached for r in cold.results)
        warm = run_sweep(_SPEC, workers=1, cache=cache, lineage=True)
        assert all(r.cached for r in warm.results)
        assert [r.lineage for r in warm.results] == [
            r.lineage for r in cold.results
        ]

    def test_hits_without_the_extra_are_reexecuted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(_SPEC, workers=1, cache=cache)  # no lineage stored
        res = run_sweep(_SPEC, workers=1, cache=cache, lineage=True)
        assert not any(r.cached for r in res.results)
        assert all(r.lineage is not None for r in res.results)
        # and the re-execution back-fills the extra for next time
        warm = run_sweep(_SPEC, workers=1, cache=cache, lineage=True)
        assert all(r.cached for r in warm.results)

    def test_mutual_exclusions(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_sweep(_SPEC, lineage=True, audit_dir=tmp_path / "audit")
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_sweep(_SPEC, lineage=True, ledger=True)
        with pytest.raises(ValueError, match="driver='local'"):
            run_sweep(_SPEC, lineage=True, driver="fabric",
                      fabric_dir=tmp_path / "fab")

    def test_registry_record_carries_payloads_and_aggregate(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry")
        run_sweep(_SPEC, workers=1, cache=None, registry=registry,
                  lineage=True)
        record = registry.load("latest")
        assert all(p["lineage"] is not None for p in record["points"])
        agg = record["lineage"]
        assert agg["points"] == 2
        assert agg["all_sane"] is True
        assert agg["migrations"] == sum(
            p["lineage"]["run"]["migrations"] for p in record["points"]
        )


# ---------------------------------------------------------------------------
# anomaly rules
# ---------------------------------------------------------------------------


def _lineage_point(label, *, efficiency=0.8, steps=(), sane=True):
    return {
        "label": label,
        "params": {"cores": 4},
        "summary": {"app_time": 1.0},
        "lineage": {
            "schema": LINEAGE_SCHEMA,
            "steps": list(steps),
            "run": {
                "lb_steps": len(steps),
                "migrations": sum(len(s["migrations"]) for s in steps),
                "recovered_s": 1.0,
                "recoverable_s": 1.25,
                "efficiency": efficiency,
                "sane": sane,
            },
        },
    }


def _churn_steps(chare="c[3]", count=4, recovered=0.0):
    return [
        {"step": k, "recovered_s": recovered,
         "migrations": [{"chare": chare, "src": k % 2, "dst": (k + 1) % 2,
                         "reason": None}]}
        for k in range(count)
    ]


class TestAnomalyRules:
    def test_unlineaged_points_are_silent(self):
        rec = {"run_id": "r", "points": [
            {"label": "a", "params": {}, "summary": {"app_time": 1.0}}
        ]}
        assert check_lineage(rec, []) == []

    def test_thrashing_chare_warns(self):
        rec = {"run_id": "r",
               "points": [_lineage_point("a", steps=_churn_steps())]}
        findings = check_lineage(rec, [])
        assert [f.rule for f in findings] == ["thrashing-chare"]
        assert findings[0].severity == "warning"
        assert findings[0].subject == "r:a:c[3]"

    def test_churn_that_recovers_load_is_not_thrashing(self):
        rec = {"run_id": "r", "points": [
            _lineage_point("a", steps=_churn_steps(recovered=0.01))
        ]}
        assert check_lineage(rec, []) == []

    def test_migration_count_at_threshold_is_silent(self):
        rec = {"run_id": "r", "points": [
            _lineage_point("a", steps=_churn_steps(count=3))
        ]}
        assert check_lineage(rec, []) == []

    def test_efficiency_drop_needs_history(self):
        now = {"run_id": "r", "points": [_lineage_point("a", efficiency=0.1)]}
        assert check_lineage(now, []) == []
        history = [{"run_id": "h", "points": [_lineage_point("a")]}]
        findings = check_lineage(now, history)
        assert [f.rule for f in findings] == ["imbalance-unrecovered"]
        assert findings[0].severity == "error"  # drop 0.7 >= 0.5

    def test_moderate_drop_is_a_warning(self):
        history = [{"run_id": "h", "points": [_lineage_point("a")]}]
        now = {"run_id": "r", "points": [_lineage_point("a", efficiency=0.5)]}
        findings = check_lineage(now, history)
        assert [f.rule for f in findings] == ["imbalance-unrecovered"]
        assert findings[0].severity == "warning"

    def test_small_drop_is_silent(self):
        history = [{"run_id": "h", "points": [_lineage_point("a")]}]
        now = {"run_id": "r", "points": [_lineage_point("a", efficiency=0.7)]}
        assert check_lineage(now, history) == []

    def test_thresholds_are_tunable(self):
        rec = {"run_id": "r", "points": [
            _lineage_point("a", steps=_churn_steps(count=2))
        ]}
        strict = Thresholds(thrash_migrations=1)
        assert [f.rule for f in check_lineage(rec, [], strict)] == [
            "thrashing-chare"
        ]

    def test_check_run_composes_lineage_rules(self):
        rec = {"run_id": "r",
               "points": [_lineage_point("a", steps=_churn_steps())]}
        rules = {f.rule for f in check_run(rec, [])}
        assert "thrashing-chare" in rules


# ---------------------------------------------------------------------------
# report section
# ---------------------------------------------------------------------------


class TestReportSection:
    def test_flow_svg_empty_and_weighted(self):
        assert "no migrations" in _migration_flow_svg([], [0, 1])
        steps = _churn_steps(count=4) + [
            {"step": 9, "recovered_s": 0.0,
             "migrations": [{"chare": "c[0]", "src": 0, "dst": 1,
                             "reason": None}]}
        ]
        svg = _migration_flow_svg(steps, [0, 1])
        assert svg.startswith("<svg")
        assert "core 0 &rarr; core 1: 3 migration(s)" in svg
        assert "core 1 &rarr; core 0: 2 migration(s)" in svg

    def test_report_renders_lineage_rows(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry")
        run_sweep(_SPEC, workers=1, cache=None, registry=registry,
                  lineage=True)
        data = build_report(tmp_path / "registry")
        assert len(data["lineage_rows"]) == 2
        row = data["lineage_rows"][0]
        assert row["sweep"] == "lin"
        assert len(row["lambdas"]) == TINY["iterations"]
        assert all(lam >= 1.0 for lam in row["lambdas"])
        html = render_report(data)
        assert "Load imbalance (sweep --lineage)" in html
        assert "✓ sane" in html

    def test_report_without_lineage_shows_fallback(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry")
        run_sweep(_SPEC, workers=1, cache=None, registry=registry)
        html = render_report(build_report(tmp_path / "registry"))
        assert "Load imbalance (sweep --lineage)" in html
        assert "✓ sane" not in html


# ---------------------------------------------------------------------------
# surfaces: perfetto counters + the `repro lineage` CLI
# ---------------------------------------------------------------------------

#: One point with real LB steps (period 2 under interference) — and,
#: deterministically, a step the replay judges unhelpful (not sane).
_STEPPY = SweepSpec(
    name="steppy",
    base={**TINY, "iterations": 6, "lb_period": 2, "bg": True},
    points=({"label": "rvm", "balancer": "refine-vm"},),
)


class TestSurfaces:
    def test_perfetto_counter_events(self):
        from repro.projections.export import lineage_counter_events

        _, payload = run_point_lineaged(
            {**TINY, "iterations": 6, "lb_period": 2, "bg": True,
             "balancer": "refine-vm"}
        )
        events = lineage_counter_events(payload)
        rows = payload["per_iteration"]
        assert len(events) == 2 * len(rows) == 12
        for pair, row in zip(zip(events[::2], events[1::2]), rows):
            imb, loads = pair
            assert imb["ph"] == loads["ph"] == "C"
            assert imb["ts"] == loads["ts"] == row["start_s"] * 1e6
            assert imb["args"] == {"lambda": row["lambda"],
                                   "cov": row["cov"], "gini": row["gini"]}
            assert loads["args"] == {
                f"core{c}": v for c, v in row["loads"].items()
            }

    def test_lineage_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(_SPEC, workers=1, cache=None, lineage=True,
                  registry=registry)
        rc = main(
            ["lineage", "latest", "--registry", str(tmp_path / "reg"),
             "--output", str(tmp_path / "out"),
             "--perfetto", str(tmp_path / "traces")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-iteration imbalance" in out
        assert (tmp_path / "out" / "lineage.txt").is_file()
        traces = list((tmp_path / "traces").glob("*.lineage.trace.json"))
        assert len(traces) == 2
        events = json.loads(traces[0].read_text())
        assert any(e.get("name") == "imbalance" and e.get("ph") == "C"
                   for e in events)

    def test_lineage_cli_json_recompute_path(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(_SPEC, workers=1, cache=None, registry=registry)
        rc = main(
            ["lineage", "latest", "--registry", str(tmp_path / "reg"),
             "--point", "refine-vm", "--json",
             "--output", str(tmp_path / "out")]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["violations"] == []
        (point,) = doc["points"]
        assert point["recomputed"] is True
        assert point["lineage"]["schema"] == LINEAGE_SCHEMA
        assert json.loads(
            (tmp_path / "out" / "lineage.json").read_text()
        ) == doc

    def test_lineage_cli_dot_output(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(_STEPPY, workers=1, cache=None, lineage=True,
                  registry=registry)
        rc = main(["lineage", "latest", "--registry", str(tmp_path / "reg"),
                   "--dot"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lineage {")
        assert "->" in out  # the steppy point really migrates

    def test_lineage_cli_check_gates_on_insane_steps(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(_STEPPY, workers=1, cache=None, lineage=True,
                  registry=registry)
        # a not-sane step is a balancer verdict, not a bug: plain mode
        # reports it in the text but exits 0
        args = ["lineage", "latest", "--registry", str(tmp_path / "reg")]
        assert main(args) == 0
        cap = capsys.readouterr()
        assert "NOT SANE" in cap.out
        assert "VIOLATION" not in cap.err
        # --check turns the verdict into a gate
        assert main(args + ["--check"]) == 1
        assert "NOT SANE" in capsys.readouterr().err
        # ... and a sane run passes it (own registry: a same-second
        # ingest would make `latest` ambiguous between the two runs)
        sane_reg = RunRegistry(tmp_path / "sane-reg")
        run_sweep(_SPEC, workers=1, cache=None, lineage=True,
                  registry=sane_reg)
        assert main(["lineage", "latest", "--registry",
                     str(tmp_path / "sane-reg"), "--check"]) == 0

    def test_lineage_cli_errors_are_clean(self, tmp_path, capsys):
        from repro.cli import main

        args = ["lineage", "latest", "--registry", str(tmp_path / "reg")]
        assert main(args) == 2  # empty registry
        assert "error" in capsys.readouterr().err
        registry = RunRegistry(tmp_path / "reg")
        run_sweep(_SPEC, workers=1, cache=None, registry=registry)
        assert main(args + ["--point", "no-such-label"]) == 2
        assert "no point" in capsys.readouterr().err

    def test_runs_show_json_is_pure(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(_SPEC, workers=1, cache=None, lineage=True,
                  registry=registry)
        rc = main(["runs", "--registry", str(tmp_path / "reg"),
                   "show", "latest", "--json"])
        assert rc == 0
        cap = capsys.readouterr()
        assert cap.err == ""
        record = json.loads(cap.out)
        assert all(p["lineage"] is not None for p in record["points"])

"""Shared fixtures: fabricate sweep runs without running the simulator.

The registry/anomaly/report tests need *many* runs with controlled
metrics (e.g. an injected 3x timing outlier); simulating would be slow
and couple the tests to engine physics. These factories build real
``SweepSpec``/``SweepResult`` objects directly.
"""

import pytest

from repro.experiments.progress import SweepMetrics
from repro.experiments.sweep import (
    PointResult,
    ScenarioSummary,
    SweepResult,
    SweepSpec,
)


def make_summary(app_time=1.0, total_migrations=2, **over):
    base = dict(
        app_time=app_time,
        bg_time=round(app_time * 1.1, 6),
        energy_j=50.0,
        avg_power_w=40.0,
        busy_core_seconds=3.0,
        iterations=10,
        lb_steps=2,
        total_migrations=total_migrations,
        total_migration_cost_s=0.01,
        total_task_cpu_s=2.5,
        final_mapping_digest="0123abcd",
    )
    base.update(over)
    return ScenarioSummary(**base)


def build_run(name="smoke", points=()):
    """Build ``(SweepSpec, SweepResult)`` from simple point descriptions.

    ``points`` is a list of dicts with ``label`` plus optional
    ``params``, ``app_time``, ``migrations``, ``audit``, ``seed``.
    """
    results = []
    spec_points = []
    for i, p in enumerate(points):
        params = dict(p.get("params", {}))
        params.setdefault("seed", p.get("seed", 0))
        results.append(
            PointResult(
                index=i,
                label=p["label"],
                params=params,
                key=f"key-{name}-{i:03d}",
                summary=make_summary(
                    p.get("app_time", 1.0), p.get("migrations", 2)
                ),
                cached=False,
                wall_s=0.01,
                worker="main",
                audit=p.get("audit"),
            )
        )
        spec_points.append({"label": p["label"], **params})
    metrics = SweepMetrics(
        points=len(results),
        executed=len(results),
        cache_hits=0,
        elapsed_s=0.1,
        executed_wall_s=0.05,
        workers=1,
        worker_utilization=0.5,
    )
    spec = SweepSpec(name=name, base={}, points=tuple(spec_points))
    return spec, SweepResult(
        spec_name=name, results=tuple(results), metrics=metrics
    )


@pytest.fixture
def fabricate():
    """The :func:`build_run` factory as a fixture."""
    return build_run


#: A matched interfered (noLB, LB) pair plus an uninterfered LB point.
PAIRED_POINTS = [
    {
        "label": "cores=4,balancer=none",
        "params": {"cores": 4, "balancer": "none", "bg": True},
        "app_time": 2.0,
    },
    {
        "label": "cores=4,balancer=refine-vm",
        "params": {"cores": 4, "balancer": "refine-vm", "bg": True},
        "app_time": 1.5,
    },
    {
        "label": "alone",
        "params": {"cores": 4, "balancer": "refine-vm", "bg": False},
        "app_time": 1.0,
    },
]

"""Time-attribution ledger: conservation, attribution, energy, surfaces.

The backend-parity aspects (event engine vs fast path producing
bit-identical ledgers) live in ``tests/experiments/test_backend_parity``;
this module covers the ledger itself — exact accounting mechanics on
synthetic intervals, the conservation invariant over random scenarios,
the energy decomposition reconciling bit-exactly with the meter, and the
surfaces that carry ledgers (sweep results, cache, registry, anomaly
rules, waterfall rendering, Perfetto export, the explain CLI).
"""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.sweep import (
    build_scenario,
    run_point,
    run_point_ledgered,
    run_sweep,
)
from repro.experiments.sweep_presets import smoke_spec
from repro.obs.anomaly import check_ledger
from repro.obs.ledger import (
    BUCKETS,
    LedgerError,
    TimeLedger,
    format_ledger_text,
)
from repro.power.meter import decompose_energy, exact_dynamic_split
from repro.power.model import PowerModel


class _Proc:
    """Minimal runnable-process stand-in (owner / weight / key)."""

    def __init__(self, owner, weight=1.0, key=None):
        self.owner = owner
        self.weight = weight
        self.key = key if key is not None else (owner, 0)


# ---------------------------------------------------------------------------
# exact accounting mechanics
# ---------------------------------------------------------------------------


class TestAccounting:
    def test_proportional_split_is_exact(self):
        led = TimeLedger(core_ids=[0])
        led.mark_iteration(0, 0.0)
        # app (w=1) and bg (w=1) share the core over an awkward float span
        led.accrue(0, 0.0, 0.1, [_Proc("app"), _Proc("bg")])
        led.close(0.1)
        totals = led.totals_exact()
        dt = Fraction(0.1)
        assert totals["compute"] == dt / 2
        assert totals["stolen"] == dt / 2
        assert led.conserved and led.residual_exact() == 0

    def test_weighted_split(self):
        led = TimeLedger(core_ids=[0])
        led.mark_iteration(0, 0.0)
        led.accrue(0, 0.0, 1.0, [_Proc("app", 1.0), _Proc("bg", 3.0)])
        led.close(1.0)
        totals = led.totals_exact()
        assert totals["compute"] == Fraction(1, 4)
        assert totals["stolen"] == Fraction(3, 4)

    def test_overhead_vs_idle_classification(self):
        led = TimeLedger(core_ids=[0])
        led.mark_iteration(0, 0.0)
        led.mark_pause(0.2, 0.3)
        # bg-only stretch spanning the pause window: idle outside it,
        # overhead inside, and all of it busy (a proc was runnable)
        led.accrue(0, 0.0, 0.5, [_Proc("bg")])
        led.close(0.5)
        totals = led.totals_exact()
        assert totals["overhead"] == Fraction(0.3) - Fraction(0.2)
        assert totals["idle"] == Fraction(0.5) - (Fraction(0.3) - Fraction(0.2))
        busy = led.busy_exact()
        assert busy["overhead"] == totals["overhead"]
        assert busy["idle"] == totals["idle"]
        assert led.conserved

    def test_truly_empty_core_is_idle_not_busy(self):
        led = TimeLedger(core_ids=[0])
        led.mark_iteration(0, 0.0)
        led.accrue(0, 0.0, 1.0, [])
        led.close(1.0)
        assert led.totals_exact()["idle"] == Fraction(1)
        assert led.busy_exact()["idle"] == 0

    def test_accrue_app_is_pure_compute(self):
        led = TimeLedger(core_ids=[0])
        led.mark_iteration(0, 0.0)
        led.mark_iteration(1, 0.4)
        led.accrue_app(0, 0.0, 1.0, ("jacobi2d", 3))
        led.close(1.0)
        assert led.totals_exact()["compute"] == Fraction(1)
        summ = led.summary()
        assert summ["chares"] == {
            "jacobi2d[3]": {"compute": 1.0, "stolen": 0.0}
        }
        # the iteration mark at 0.4 split the interval across both rows
        assert summ["per_iteration"][0]["compute"] == pytest.approx(0.4)
        assert summ["per_iteration"][1]["compute"] == pytest.approx(0.6)

    def test_gap_and_overlap_raise(self):
        led = TimeLedger(core_ids=[0])
        led.accrue(0, 0.0, 0.5, [])
        with pytest.raises(LedgerError, match="gap or overlap"):
            led.accrue(0, 0.6, 0.7, [])
        with pytest.raises(LedgerError, match="gap or overlap"):
            led.accrue(0, 0.4, 0.7, [])

    def test_mark_ordering_enforced(self):
        led = TimeLedger(core_ids=[0])
        led.mark_iteration(0, 0.0)
        with pytest.raises(LedgerError, match="out of order"):
            led.mark_iteration(2, 1.0)
        led.mark_iteration(1, 1.0)
        with pytest.raises(LedgerError, match="non-decreasing"):
            led.mark_iteration(2, 0.5)
        led.mark_pause(1.0, 1.5)
        with pytest.raises(LedgerError, match="ordered and disjoint"):
            led.mark_pause(0.5, 0.8)

    def test_close_requires_synced_cores(self):
        led = TimeLedger(core_ids=[0, 1])
        led.accrue(0, 0.0, 1.0, [])
        with pytest.raises(LedgerError, match="sync the core"):
            led.close(1.0)

    def test_post_close_calls_are_noops_and_double_close_raises(self):
        led = TimeLedger(core_ids=[0])
        led.accrue(0, 0.0, 1.0, [])
        led.close(1.0)
        led.accrue(0, 1.0, 2.0, [])  # no-op, not an error
        led.mark_iteration(0, 2.0)  # likewise
        assert led.totals_exact()["idle"] == Fraction(1)
        with pytest.raises(LedgerError, match="already closed"):
            led.close(1.0)

    def test_open_ledger_refuses_summary_and_residual(self):
        led = TimeLedger(core_ids=[0])
        with pytest.raises(LedgerError, match="still open"):
            led.summary()
        with pytest.raises(LedgerError, match="still open"):
            led.residual_exact()

    def test_duplicate_core_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            TimeLedger(core_ids=[0, 0])


# ---------------------------------------------------------------------------
# conservation over real scenarios
# ---------------------------------------------------------------------------

_params = st.fixed_dictionaries(
    {
        "app": st.sampled_from(["jacobi2d", "wave2d", "mol3d"]),
        "scale": st.sampled_from([0.02, 0.05]),
        "iterations": st.integers(min_value=1, max_value=10),
        "cores": st.sampled_from([2, 4, 8]),
        "balancer": st.sampled_from(
            ["none", "refine-vm", "refine", "greedy", "greedy-aware"]
        ),
        "bg": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)


@settings(max_examples=20, deadline=None)
@given(params=_params)
def test_conservation_over_random_scenarios(params):
    """Every simulated core-second lands in exactly one bucket."""
    summary, ledger = run_point_ledgered(params)
    assert ledger["conserved"]
    assert ledger["residual_s"] == 0.0
    assert ledger["wall_s"] == summary.app_time
    # the float view agrees with the exact one to reporting precision
    total = sum(ledger["totals"][b] for b in BUCKETS)
    assert total == pytest.approx(
        ledger["wall_s"] * len(ledger["cores"]), rel=1e-12
    )
    assert sum(ledger["fractions"][b] for b in BUCKETS) == pytest.approx(1.0)


def test_stolen_time_responds_to_bg_weight():
    """More co-runner weight -> more stolen time (the Fig. 2 mechanism)."""
    fractions = []
    for weight in (1.0, 2.0, 4.0):
        _, ledger = run_point_ledgered(
            {
                "app": "jacobi2d",
                "scale": 0.05,
                "iterations": 8,
                "cores": 4,
                "bg": True,
                "bg_weight": weight,
                "balancer": "refine-vm",
            }
        )
        assert ledger["conserved"]
        fractions.append(ledger["fractions"]["stolen"])
    assert fractions[0] < fractions[1] < fractions[2]


def test_no_bg_means_no_stolen_time():
    _, ledger = run_point_ledgered(
        {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 6,
            "cores": 4,
            "bg": False,
            "balancer": "none",
        }
    )
    assert ledger["conserved"]
    assert ledger["totals"]["stolen"] == 0.0
    assert ledger["totals"]["overhead"] == 0.0


def test_lb_run_records_migration_overhead():
    _, ledger = run_point_ledgered(
        {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
    )
    assert ledger["conserved"]
    assert ledger["totals"]["overhead"] > 0.0


# ---------------------------------------------------------------------------
# energy decomposition
# ---------------------------------------------------------------------------


class TestEnergyDecomposition:
    def test_reconciles_bit_exactly_with_meter(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        summary, ledger = run_point_ledgered(params)
        scenario = build_scenario(params)
        nodes = len(
            {cid // scenario.cores_per_node for cid in scenario.app_core_ids}
        )
        model = PowerModel(cores_per_node=scenario.cores_per_node)
        energy = decompose_energy(
            model,
            duration_s=summary.app_time,
            busy_core_seconds=summary.busy_core_seconds,
            nodes=nodes,
            busy_by_bucket=ledger["busy"],
        )
        # bit-exact: the two addends mirror PowerModel.energy operand
        # for operand
        assert energy["base_j"] + energy["dynamic_j"] == summary.energy_j
        assert energy["energy_j"] == summary.energy_j
        assert set(energy["dynamic_by_bucket"]) == set(BUCKETS)

    def test_base_dynamic_mirror_energy(self):
        model = PowerModel()
        for t, busy, nodes in ((1.0, 2.5, 2), (0.1, 0.3, 1), (7.3, 11.9, 4)):
            assert (
                model.base_energy(t, nodes) + model.dynamic_energy(busy)
                == model.energy(t, busy, nodes)
            )

    def test_exact_dynamic_split_sums_with_zero_residue(self):
        busy = {
            "compute": Fraction(1, 3),
            "stolen": Fraction(1, 7),
            "overhead": Fraction(2, 11),
            "idle": Fraction(5, 13),
        }
        dynamic = 12.345
        shares = exact_dynamic_split(dynamic, busy)
        assert sum(shares.values(), Fraction(0)) == Fraction(dynamic)

    def test_all_zero_busy_yields_zero_shares(self):
        shares = exact_dynamic_split(5.0, {b: 0 for b in BUCKETS})
        assert all(v == 0 for v in shares.values())

    def test_empty_window_matches_meter_special_case(self):
        out = decompose_energy(
            PowerModel(), duration_s=0.0, busy_core_seconds=0.0, nodes=1
        )
        assert out["energy_j"] == 0.0
        assert out["base_j"] == 0.0 and out["dynamic_j"] == 0.0


# ---------------------------------------------------------------------------
# sweep / cache / registry carriage
# ---------------------------------------------------------------------------


class TestSweepCarriage:
    def test_ledger_rides_results_without_changing_summaries(self):
        spec = smoke_spec()
        plain = run_sweep(spec, workers=1, cache=None)
        ledgered = run_sweep(spec, workers=1, cache=None, ledger=True)
        assert plain.summaries() == ledgered.summaries()
        for r in ledgered.results:
            assert r.ledger is not None and r.ledger["conserved"]
        for r in plain.results:
            assert r.ledger is None

    def test_cache_roundtrip_preserves_ledger(self, tmp_path):
        from repro.experiments.cache import ResultCache

        spec = smoke_spec()
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(spec, workers=1, cache=cache, ledger=True)
        warm = run_sweep(spec, workers=1, cache=cache, ledger=True)
        assert warm.metrics.cache_hits == len(spec.expand())
        for a, b in zip(cold.results, warm.results):
            assert a.ledger == b.ledger

    def test_unledgered_cache_entries_are_reexecuted(self, tmp_path):
        from repro.experiments.cache import ResultCache

        spec = smoke_spec()
        cache = ResultCache(tmp_path / "cache")
        run_sweep(spec, workers=1, cache=cache)
        again = run_sweep(spec, workers=1, cache=cache, ledger=True)
        assert again.metrics.cache_hits == 0
        assert all(r.ledger is not None for r in again.results)

    def test_registry_carries_points_and_aggregate(self, tmp_path):
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(tmp_path / "reg")
        spec = smoke_spec()
        run_sweep(spec, workers=1, cache=None, ledger=True, registry=registry)
        record = registry.load(registry.resolve("latest"))
        assert record["ledger"]["all_conserved"] is True
        assert record["ledger"]["points"] == len(spec.expand())
        assert set(record["ledger"]["mean_fractions"]) == set(BUCKETS)
        for point in record["points"]:
            assert point["ledger"]["conserved"]

    def test_audit_and_ledger_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_sweep(
                smoke_spec(), workers=1, cache=None,
                ledger=True, audit_dir=tmp_path / "audit",
            )

    def test_fabric_driver_rejects_ledger(self):
        with pytest.raises(ValueError, match="driver='local'"):
            run_sweep(
                smoke_spec(), workers=1, cache=None,
                ledger=True, driver="fabric",
            )


# ---------------------------------------------------------------------------
# anomaly rules
# ---------------------------------------------------------------------------


def _ledger_point(label, **over):
    ledger = {
        "conserved": True,
        "residual_s": 0.0,
        "wall_s": 1.0,
        "cores": [0, 1],
        "totals": {"compute": 1.0, "stolen": 0.1, "overhead": 0.01, "idle": 0.2},
        "fractions": {"compute": 0.5, "stolen": 0.05, "overhead": 0.02, "idle": 0.1},
    }
    ledger.update(over)
    return {
        "label": label,
        "params": {"app": "jacobi2d", "seed": 1},
        "summary": {"app_time": 1.0},
        "ledger": ledger,
    }


class TestAnomalyRules:
    def test_clean_point_no_findings(self):
        assert check_ledger({"run_id": "r", "points": [_ledger_point("a")]}, []) == []

    def test_conservation_violation_is_error(self):
        rec = {
            "run_id": "r",
            "points": [_ledger_point("a", conserved=False, residual_s=1e-3)],
        }
        findings = check_ledger(rec, [])
        assert [f.rule for f in findings] == ["ledger-not-conserved"]
        assert findings[0].severity == "error"

    def test_interference_dominated_escalates(self):
        warn = check_ledger(
            {"run_id": "r", "points": [_ledger_point(
                "a", totals={"compute": 1.0, "stolen": 0.6, "overhead": 0.0, "idle": 0.0})]},
            [],
        )
        assert [f.rule for f in warn] == ["interference-dominated"]
        assert warn[0].severity == "warning"
        err = check_ledger(
            {"run_id": "r", "points": [_ledger_point(
                "a", totals={"compute": 1.0, "stolen": 1.5, "overhead": 0.0, "idle": 0.0})]},
            [],
        )
        assert err[0].severity == "error"

    def test_overhead_spike_needs_history(self):
        spike = {"run_id": "r", "points": [_ledger_point(
            "a", fractions={"compute": 0.5, "stolen": 0.05, "overhead": 0.09, "idle": 0.1})]}
        assert check_ledger(spike, []) == []
        history = [{"run_id": "h", "points": [_ledger_point("a")]}]
        findings = check_ledger(spike, history)
        assert [f.rule for f in findings] == ["migration-overhead-spike"]

    def test_idle_regression_vs_history(self):
        history = [{"run_id": "h", "points": [_ledger_point("a")]}]
        rec = {"run_id": "r", "points": [_ledger_point(
            "a", fractions={"compute": 0.5, "stolen": 0.05, "overhead": 0.02, "idle": 0.3})]}
        findings = check_ledger(rec, history)
        assert [f.rule for f in findings] == ["idle-regression"]
        assert findings[0].severity == "error"

    def test_below_floor_is_silent(self):
        history = [{"run_id": "h", "points": [_ledger_point(
            "a", fractions={"compute": 0.5, "stolen": 0.05, "overhead": 0.001, "idle": 0.1})]}]
        rec = {"run_id": "r", "points": [_ledger_point(
            "a", fractions={"compute": 0.5, "stolen": 0.05, "overhead": 0.005, "idle": 0.1})]}
        assert check_ledger(rec, history) == []

    def test_unledgered_points_are_skipped(self):
        rec = {"run_id": "r", "points": [
            {"label": "a", "params": {}, "summary": {"app_time": 1.0}}
        ]}
        assert check_ledger(rec, []) == []


# ---------------------------------------------------------------------------
# rendering + export + CLI
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_waterfall_text(self):
        _, ledger = run_point_ledgered(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 6, "cores": 4,
             "bg": True, "balancer": "refine-vm"}
        )
        text = format_ledger_text(ledger, label="demo", top=3)
        assert "demo:" in text and "[conserved]" in text
        assert "per-core waterfall" in text
        assert "top 3 chares" in text

    def test_waterfall_flags_violation(self):
        _, ledger = run_point_ledgered(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 2, "cores": 2}
        )
        broken = dict(ledger)
        broken["conserved"] = False
        broken["residual_s"] = 1e-3
        assert "NOT CONSERVED" in format_ledger_text(broken)

    def test_perfetto_counter_events(self):
        from repro.projections.export import ledger_counter_events

        _, ledger = run_point_ledgered(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 5, "cores": 4}
        )
        events = ledger_counter_events(ledger)
        assert len(events) == len(ledger["per_iteration"]) == 5
        for event, row in zip(events, ledger["per_iteration"]):
            assert event["ph"] == "C"
            assert event["ts"] == row["start_s"] * 1e6
            assert set(event["args"]) == set(BUCKETS)

    def test_explain_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(
            smoke_spec(), workers=1, cache=None, ledger=True,
            registry=registry,
        )
        rc = main(
            ["explain", "latest", "--registry", str(tmp_path / "reg"),
             "--output", str(tmp_path / "out"),
             "--perfetto", str(tmp_path / "traces")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "[conserved]" in out and "energy:" in out
        assert (tmp_path / "out" / "explain.txt").is_file()
        assert len(list((tmp_path / "traces").glob("*.trace.json"))) == len(
            smoke_spec().expand()
        )

    def test_explain_cli_json_recompute_path(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(smoke_spec(), workers=1, cache=None, registry=registry)
        rc = main(
            ["explain", "latest", "--registry", str(tmp_path / "reg"),
             "--point", "cores=4,balancer=none", "--json",
             "--output", str(tmp_path / "out")]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["violations"] == []
        (point,) = doc["points"]
        assert point["recomputed"] is True
        assert point["ledger"]["conserved"]
        assert point["energy"]["energy_j"] == pytest.approx(
            point["energy"]["base_j"] + point["energy"]["dynamic_j"]
        )
        assert json.loads(
            (tmp_path / "out" / "explain.json").read_text()
        ) == doc

    def test_explain_cli_missing_run_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["explain", "latest", "--registry", str(tmp_path / "reg")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_runs_list_json(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.registry import RunRegistry

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(
            smoke_spec(), workers=1, cache=None, ledger=True,
            registry=registry,
        )
        rc = main(["runs", "--registry", str(tmp_path / "reg"), "list", "--json"])
        assert rc == 0
        lines = json.loads(capsys.readouterr().out)
        assert len(lines) == 1 and lines[0]["kind"] == "sweep"

    def test_report_carries_ledger_rows(self, tmp_path):
        from repro.obs.registry import RunRegistry
        from repro.obs.report import build_report, render_report

        registry = RunRegistry(tmp_path / "reg")
        run_sweep(
            smoke_spec(), workers=1, cache=None, ledger=True,
            registry=registry,
        )
        data = build_report(tmp_path / "reg")
        assert len(data["ledger_rows"]) == len(smoke_spec().expand())
        assert all(r["conserved"] for r in data["ledger_rows"])
        html = render_report(data)
        assert "Time attribution" in html

"""The HTML dashboard: data assembly and self-contained rendering."""

import json

import pytest

from repro.obs.registry import RunRegistry
from repro.obs.report import (
    _sparkline_svg,
    build_report,
    render_report,
    write_report,
)

from .conftest import PAIRED_POINTS


@pytest.fixture(autouse=True)
def _pinned_sha(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")


@pytest.fixture
def populated(tmp_path, fabricate):
    """A registry with history + an outlier run, and a 3-entry trajectory."""
    registry = RunRegistry(tmp_path / "registry")
    for i in range(2):
        spec, result = fabricate("smoke", PAIRED_POINTS)
        registry.ingest_sweep(spec, result, created_utc=f"2026-08-06T1{i}:00:00Z")
    outlier = [dict(p) for p in PAIRED_POINTS]
    outlier[1] = {**outlier[1], "app_time": 4.5}  # 3x -> error + lb-no-benefit
    spec, result = fabricate("smoke", outlier)
    registry.ingest_sweep(spec, result, created_utc="2026-08-06T12:00:00Z")

    trajectory = tmp_path / "trajectory"
    trajectory.mkdir()
    for i, median in enumerate([100.0, 102.0, 40.0]):  # ends 2.5x slower
        (trajectory / f"BENCH_sha{i}.json").write_text(json.dumps({
            "created_utc": f"2026-08-0{i + 1}T00:00:00Z",
            "env": {"git_sha": f"sha{i}"},
            "metrics": {"core.tput": {"median": median, "unit": "ops/s",
                                      "direction": "higher"}},
        }))
    return registry, trajectory


def test_build_report_assembles_everything(populated):
    registry, trajectory = populated
    data = build_report(registry.root, trajectory_dir=trajectory)
    assert len(data["runs"]) == 3
    assert data["total_points"] == 9
    assert data["latest_sha"] == "feedbeef"
    assert data["trajectory_entries"] == 3
    assert data["trends"]["core.tput"]["values"] == [100.0, 102.0, 40.0]

    # figure validation judges the latest run's interfered pair only
    (row,) = data["figure_rows"]
    assert row["sweep"] == "smoke"
    assert row["nolb_s"] == 2.0 and row["lb_s"] == 4.5
    assert row["holds"] is False

    rules = {f["rule"] for f in data["findings"]}
    assert {"penalty-outlier", "lb-no-benefit", "bench-regression"} <= rules
    assert any(f["severity"] == "error" for f in data["findings"])


def test_render_report_is_self_contained_html(populated):
    registry, trajectory = populated
    data = build_report(registry.root, trajectory_dir=trajectory)
    html = render_report(data)
    assert html.startswith("<!DOCTYPE html>")
    # strictly self-contained: no external fetches of any kind
    assert "http://" not in html and "https://" not in html
    assert "<script" not in html
    assert "<link" not in html
    # content made it in
    assert data["runs"][-1]["run_id"] in html
    assert "penalty-outlier" in html
    assert "▲ violated" in html
    assert '<svg class="spark"' in html
    assert "prefers-color-scheme: dark" in html
    # severity is icon + label, never color alone
    assert "✖ error" in html


def test_render_report_empty_registry(tmp_path):
    data = build_report(tmp_path / "registry")
    html = render_report(data)
    assert "The registry is empty." in html
    assert "✓ No anomalies detected." in html
    assert "No bench trajectory entries" in html


def test_report_escapes_untrusted_strings(tmp_path, fabricate):
    registry = RunRegistry(tmp_path / "registry")
    spec, result = fabricate("x<script>alert(1)</script>",
                             [{"label": "<b>&nasty"}])
    registry.ingest_sweep(spec, result, created_utc="2026-08-06T10:00:00Z")
    html = render_report(build_report(registry.root))
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_fabric_runs_get_a_health_section(tmp_path, fabricate):
    registry = RunRegistry(tmp_path / "registry")
    spec, result = fabricate("drill", PAIRED_POINTS)
    fabric = {
        "fabric_dir": "/jobs/drill",
        "workers": 2,
        "workers_seen": ["w0", "w1"],
        "shards": 2,
        "steals": 1,
        "respawns": 0,
        "max_respawns": 2,
        "worker_deaths": 1,
        "shard_walls": {"s0000": 0.3, "s0001": 0.2},
        "attempts": [
            {"shard": "s0000", "worker": "w0", "t0": 0.0, "t1": 0.3,
             "outcome": "killed"},
            {"shard": "s0000", "worker": "w1", "t0": 0.5, "t1": 0.9,
             "outcome": "done"},
            {"shard": "s0001", "worker": "w1", "t0": 0.0, "t1": 0.4,
             "outcome": "done"},
        ],
    }
    record = registry.ingest_sweep(
        spec, result, created_utc="2026-08-06T10:00:00Z",
        extra={"fabric": fabric},
    )

    data = build_report(registry.root)
    (row,) = data["fabric_rows"]
    assert row["sweep"] == "drill" and row["run_id"] == record["run_id"]

    html = render_report(data)
    assert "Fabric health" in html
    assert "/jobs/drill" in html
    # the strip has one lane per worker and a tooltip per attempt
    assert html.count("shard attempts per worker") == 1
    assert "s0000#1" in html or "s0000" in html
    assert "w0" in html and "w1" in html
    # a steal-storm finding rides along from the same block
    assert any(f["rule"] == "steal-storm" for f in data["findings"])


def test_report_without_fabric_runs_says_so(populated):
    registry, trajectory = populated
    html = render_report(build_report(registry.root, trajectory_dir=trajectory))
    assert "Fabric health" in html
    assert "No fabric runs registered" in html


def test_write_report(populated, tmp_path):
    registry, trajectory = populated
    out = tmp_path / "nested" / "report.html"
    data = write_report(out, registry.root, trajectory_dir=trajectory)
    assert out.is_file()
    assert out.read_text().startswith("<!DOCTYPE html>")
    assert len(data["runs"]) == 3


def test_sparkline_needs_two_points():
    assert "n/a" in _sparkline_svg([1.0])
    svg = _sparkline_svg([1.0, 2.0, 1.5])
    assert svg.startswith("<svg") and "polyline" in svg
    # flat series must not divide by zero
    assert "<svg" in _sparkline_svg([3.0, 3.0])

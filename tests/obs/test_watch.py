"""Live monitoring: the renderer over a replayed event stream.

No engine, no TTY, no clock — the renderer is pure state, which is the
point: ``repro watch`` / ``sweep --live`` can be tested end to end from
canned events without perturbing (or even importing) the sweep engine.
"""

import io
import json

from repro.experiments.progress import PROGRESS_SCHEMA
from repro.obs.watch import LiveWatch, WatchRenderer, replay, watch_file


def _ev(event, t=0.0, **fields):
    return {"schema": PROGRESS_SCHEMA, "event": event, "t": t, **fields}


EVENTS = [
    _ev("sweep_start", 0.0, spec="smoke", points=4, workers=2, cached=1),
    _ev("point_start", 0.01, label="a", key="k1"),
    _ev("point_done", 0.02, label="a", key="k1", cached=True, wall_s=0.0,
        worker="cache"),
    _ev("point_start", 0.03, label="b", key="k2"),
    _ev("point_done", 0.5, label="b", key="k2", cached=False, wall_s=0.4,
        worker="pid:1"),
    _ev("point_start", 0.55, label="c", key="k3"),
]


def test_renderer_midstream_state():
    r = replay(EVENTS)
    assert r.spec == "smoke" and r.total == 4 and r.workers == 2
    assert r.done == 2 and r.cached == 1 and r.executed == 1
    assert r.in_flight == ["c"]
    assert not r.finished
    assert r.throughput() > 0
    # 2 remaining points at ~0.4s each over 2 workers
    assert r.eta_s() == (4 - 2) * 0.4 / 2

    frame = r.render()
    assert "sweep smoke — 2/4 points (1 cached) workers=2" in frame
    assert "50.0%" in frame
    assert "running: c" in frame
    assert "pid:1: 1 done, last b" in frame
    assert "b [pid:1 0.40s]" in frame


def test_renderer_finishes_and_reports_registration():
    done = EVENTS + [
        _ev("point_done", 0.9, label="c", key="k3", cached=False, wall_s=0.3,
            worker="pid:2"),
        _ev("point_done", 1.0, label="d", key="k4", cached=False, wall_s=0.35,
            worker="pid:1"),
        _ev("sweep_done", 1.1, points=4, executed=3, cache_hits=1,
            hit_rate=0.25, elapsed_s=1.1, executed_wall_s=1.05,
            workers=2, worker_utilization=0.48),
        _ev("run_registered", 1.15, run_id="20260806T100000Z-sweep-abcd1234"),
    ]
    r = replay(done)
    assert r.finished
    frame = r.render()
    assert "4/4" in frame and "100.0%" in frame
    assert "executed=3 cache_hits=1 (25%)" in frame
    assert "utilization=48%" in frame
    assert "registered as run 20260806T100000Z-sweep-abcd1234" in frame
    assert "eta: 0s" in frame


def test_unknown_events_and_fields_are_ignored():
    weird = [
        _ev("sweep_start", 0.0, spec="s", points=1, workers=1, cached=0,
            flux_capacitance=88),          # unknown field
        _ev("telepathy_sync", 0.1, vibes="good"),  # unknown event type
        _ev("point_done", 0.2, label="a", key="k", cached=False, wall_s=0.1,
            worker="main", extra_field={"nested": True}),
    ]
    r = replay(weird)
    assert r.done == 1 and r.finished is False
    assert "1/1" in r.render()  # state unperturbed by the unknowns


def test_watch_file_replays_and_renders(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    events = EVENTS + [_ev("sweep_done", 1.0, points=4, executed=3,
                           cache_hits=1, hit_rate=0.25, elapsed_s=1.0,
                           executed_wall_s=1.0, workers=2,
                           worker_utilization=0.5)]
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    out = io.StringIO()
    assert watch_file(path, out=out) == 0
    frame = out.getvalue()
    assert "sweep smoke — 2/4 points (1 cached)" in frame
    assert "done: executed=3 cache_hits=1 (25%)" in frame
    assert "\x1b" not in frame  # no ANSI on a non-tty


def test_watch_file_skips_partial_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        json.dumps(EVENTS[0]) + "\n" + '{"schema": 1, "event": "point_do'
    )
    out = io.StringIO()
    assert watch_file(path, out=out) == 0
    assert "sweep smoke" in out.getvalue()


def test_watch_file_missing_is_a_clean_error(tmp_path, capsys):
    assert watch_file(tmp_path / "nope.jsonl", out=io.StringIO()) == 1
    assert "no progress file" in capsys.readouterr().err


def test_watch_file_follow_stops_on_timeout(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(json.dumps(EVENTS[0]) + "\n")  # never finishes
    out = io.StringIO()
    assert watch_file(path, out=out, follow=True, interval=0.01,
                      timeout_s=0.05) == 0
    assert "sweep smoke" in out.getvalue()


def test_live_watch_on_pipe_prints_only_final_frame():
    out = io.StringIO()  # not a tty
    live = LiveWatch(out)
    for event in EVENTS:
        live.on_event(event)
    assert out.getvalue() == ""  # silent mid-run on a pipe
    live.on_event(_ev("sweep_done", 1.0, points=4, executed=3, cache_hits=1,
                      hit_rate=0.25, elapsed_s=1.0, executed_wall_s=1.0,
                      workers=2, worker_utilization=0.5))
    assert "sweep smoke" in out.getvalue()
    assert out.getvalue().count("sweep smoke") == 1


def test_eta_and_throughput_edge_cases():
    r = WatchRenderer()
    assert r.throughput() is None and r.eta_s() is None
    r.feed(_ev("sweep_start", 0.0, spec="s", points=0, workers=0, cached=0))
    assert "workers=?" in r.render()  # renders before any completion


# ---------------------------------------------------------------------------
# multi-worker (fabric) streams: interleaving, dedup, per-worker rates
# ---------------------------------------------------------------------------

FABRIC_EVENTS = [
    _ev("sweep_start", 0.0, spec="fab", points=4, workers=2, cached=0,
        driver="fabric", shards=2),
    _ev("shard_claimed", 0.01, shard="s0000", worker="w0"),
    _ev("shard_claimed", 0.01, shard="s0001", worker="w1"),
    # interleaved completions from two workers' merged streams
    _ev("point_done", 0.2, label="a", key="ka", cached=False, wall_s=0.2,
        worker="w0", shard="s0000"),
    _ev("point_done", 0.3, label="c", key="kc", cached=False, wall_s=0.3,
        worker="w1", shard="s0001"),
    _ev("point_done", 0.4, label="b", key="kb", cached=False, wall_s=0.2,
        worker="w0", shard="s0000"),
    _ev("point_done", 0.6, label="d", key="kd", cached=False, wall_s=0.3,
        worker="w1", shard="s0001"),
]


def test_per_worker_throughput_from_interleaved_streams():
    r = replay(FABRIC_EVENTS)
    rates = r.worker_throughput()
    # exact: w0 did 2 points in 0.4s busy, w1 did 2 in 0.6s busy
    assert rates["w0"] == 2 / 0.4
    assert rates["w1"] == 2 / 0.6
    frame = r.render()
    assert "w0: 2 done, last b (5.00/s)" in frame
    assert "w1: 2 done, last d (3.33/s)" in frame
    assert "4/4 points" in frame


def test_redelivered_point_done_counts_once_toward_progress():
    # at-least-once delivery: a worker dies after completing a point,
    # the shard is re-run and the point re-reported as a cache hit
    events = FABRIC_EVENTS + [
        _ev("point_done", 0.7, label="a", key="ka", cached=True, wall_s=0.0,
            worker="cache", shard="s0000"),
    ]
    r = replay(events)
    assert r.done == 4  # not 5
    assert r.cached == 0  # first completion of 'a' was an execution
    assert "4/4 points" in r.render()


def test_fabric_stream_round_trips_through_watch_replay(tmp_path, capsys):
    events = FABRIC_EVENTS + [
        _ev("sweep_done", 1.0, points=4, executed=4, cache_hits=0,
            hit_rate=0.0, elapsed_s=1.0, executed_wall_s=1.0, workers=2,
            worker_utilization=0.5),
    ]
    path = tmp_path / "events.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    out = io.StringIO()
    assert watch_file(path, out=out, require_finished=True) == 0
    frame = out.getvalue()
    assert "w0: 2 done" in frame and "w1: 2 done" in frame
    assert "4/4 points" in frame


def test_watch_replay_fails_on_unfinished_stream(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    path.write_text(
        "".join(json.dumps(e) + "\n" for e in FABRIC_EVENTS)
    )
    out = io.StringIO()
    assert watch_file(path, out=out, require_finished=True) == 1
    assert "no sweep_done" in capsys.readouterr().err
    assert "4/4 points" in out.getvalue()  # the frame still prints


# ---------------------------------------------------------------------------
# fabric job directories: tail every worker stream in place
# ---------------------------------------------------------------------------


def test_watch_accepts_a_fabric_job_directory(tmp_path):
    from .test_fabtrace import _kill_drill_job

    root = _kill_drill_job(tmp_path)
    out = io.StringIO()
    assert watch_file(root, out=out) == 0
    frame = out.getvalue()
    assert "sweep drill" in frame
    assert "shards: 2/2 results on disk" in frame
    # per-worker lines come from the tailed event streams
    assert "w1: 2 done" in frame


def test_watch_fabric_dir_dedupes_redelivered_points(tmp_path):
    # the killed worker completed 'ka' before dying; the stealer re-ran
    # it — at-least-once delivery means two point_done events for one
    # point, which must count once toward progress
    from .test_fabtrace import _kill_drill_job

    root = _kill_drill_job(tmp_path)
    out = io.StringIO()
    assert watch_file(root, out=out) == 0
    assert "2/2 points" in out.getvalue()


def test_watch_fabric_dir_replay_fails_when_shards_missing(tmp_path, capsys):
    from .test_fabtrace import _kill_drill_job

    root = _kill_drill_job(tmp_path)
    (root / "results" / "s0001.json").unlink()
    out = io.StringIO()
    assert watch_file(root, out=out, require_finished=True) == 1
    assert "1/2" in capsys.readouterr().err


def test_watch_directory_without_a_job_is_a_clean_error(tmp_path, capsys):
    assert watch_file(tmp_path, out=io.StringIO()) == 1
    assert "no fabric job" in capsys.readouterr().err


def test_watch_fabric_dir_follow_stops_on_timeout(tmp_path):
    from .test_fabtrace import _kill_drill_job

    root = _kill_drill_job(tmp_path)
    (root / "results" / "s0000.json").unlink()  # never finishes
    out = io.StringIO()
    assert watch_file(root, out=out, follow=True, interval=0.01,
                      timeout_s=0.05) == 0
    assert "1/2 results on disk" in out.getvalue()

"""The anomaly detectors: each rule, its thresholds, and composition."""

import pytest

from repro.obs.anomaly import (
    DEFAULT_THRESHOLDS,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    Finding,
    Thresholds,
    check_bench_trajectory,
    check_estimation_drift,
    check_fabric,
    check_history_outliers,
    check_lb_benefit,
    check_run,
    has_errors,
    max_severity,
)
from repro.obs.registry import RunRegistry

from .conftest import PAIRED_POINTS


def _point(label, app_time=1.0, migrations=2, bg=True, balancer="refine-vm",
           audit=None, **params):
    p = {"cores": 4, "balancer": balancer, "bg": bg, "seed": 0}
    p.update(params)
    return {
        "label": label,
        "params": p,
        "summary": {"app_time": app_time, "total_migrations": migrations},
        "audit": audit,
    }


def _record(points, run_id="run-x"):
    return {"run_id": run_id, "name": "smoke", "points": points}


# ---------------------------------------------------------------------------
# bg-est-drift
# ---------------------------------------------------------------------------


def test_estimation_drift_severities():
    clean = _record([_point("a", audit={"estimation_error": {"max_abs": 0.0}})])
    assert check_estimation_drift(clean) == []

    warn = _record([_point("a", audit={"estimation_error": {"max_abs": 1e-8}})])
    (f,) = check_estimation_drift(warn)
    assert f.rule == "bg-est-drift" and f.severity == SEV_WARNING

    err = _record([_point("a", audit={"estimation_error": {"max_abs": 1e-3}})])
    (f,) = check_estimation_drift(err)
    assert f.severity == SEV_ERROR
    assert f.subject == "run-x:a"
    assert "bg_est" in f.message


def test_estimation_drift_ignores_unaudited_points():
    assert check_estimation_drift(_record([_point("a", audit=None)])) == []


# ---------------------------------------------------------------------------
# lb-no-benefit
# ---------------------------------------------------------------------------


def test_lb_benefit_warns_only_on_interfered_slower_pairs():
    # LB slower than matched noLB under interference -> warning
    rec = _record([
        _point("nolb", app_time=1.0, balancer="none"),
        _point("lb", app_time=1.4),
    ])
    (f,) = check_lb_benefit(rec)
    assert f.rule == "lb-no-benefit" and f.severity == SEV_WARNING
    assert f.value == pytest.approx(1.4)

    # LB faster -> clean
    rec = _record([
        _point("nolb", app_time=2.0, balancer="none"),
        _point("lb", app_time=1.5),
    ])
    assert check_lb_benefit(rec) == []

    # no interference -> never judged, even if LB is slower
    rec = _record([
        _point("nolb", app_time=1.0, balancer="none", bg=False),
        _point("lb", app_time=1.4, bg=False),
    ])
    assert check_lb_benefit(rec) == []

    # different params (cores) -> not a pair
    rec = _record([
        _point("nolb", app_time=1.0, balancer="none", cores=4),
        _point("lb", app_time=1.4, cores=8),
    ])
    assert check_lb_benefit(rec) == []


# ---------------------------------------------------------------------------
# history rules
# ---------------------------------------------------------------------------


def test_penalty_outlier_against_history():
    history = [_record([_point("a", app_time=t)], run_id=f"h{i}")
               for i, t in enumerate([1.0, 1.02, 0.98])]
    # 3x the history median -> error
    findings = check_history_outliers(_record([_point("a", app_time=3.0)]), history)
    (f,) = [f for f in findings if f.rule == "penalty-outlier"]
    assert f.severity == SEV_ERROR
    assert f.value == pytest.approx(3.0)
    # 1.6x -> warning
    findings = check_history_outliers(_record([_point("a", app_time=1.6)]), history)
    (f,) = [f for f in findings if f.rule == "penalty-outlier"]
    assert f.severity == SEV_WARNING
    # in line with history -> clean
    assert check_history_outliers(_record([_point("a", app_time=1.05)]), history) == []
    # no history at all -> silent
    assert check_history_outliers(_record([_point("a", app_time=3.0)]), []) == []


def test_history_matching_requires_identical_params():
    history = [_record([_point("a", app_time=1.0, cores=4)], run_id="h0")]
    # same label, different params: not comparable, no finding
    current = _record([_point("a", app_time=3.0, cores=8)])
    assert check_history_outliers(current, history) == []


def test_migration_spike_with_absolute_floor():
    history = [_record([_point("a", migrations=2)], run_id=f"h{i}")
               for i in range(3)]
    # 12 vs median 2 = 6x -> error
    findings = check_history_outliers(_record([_point("a", migrations=12)]), history)
    (f,) = [f for f in findings if f.rule == "migration-spike"]
    assert f.severity == SEV_ERROR
    # 3x but only 3 migrations moved: below the absolute floor -> silent
    history1 = [_record([_point("a", migrations=1)], run_id="h0")]
    assert check_history_outliers(_record([_point("a", migrations=3)]), history1) == []


# ---------------------------------------------------------------------------
# fabric health rules
# ---------------------------------------------------------------------------


def _fabric_record(run_id="run-f", **fabric):
    block = {"shards": 4, "steals": 0, "respawns": 0, "max_respawns": 2,
             "worker_deaths": 0, "shard_walls": {}}
    block.update(fabric)
    return {"run_id": run_id, "name": "smoke", "points": [], "fabric": block}


def test_local_runs_without_a_fabric_block_are_silent():
    assert check_fabric(_record([_point("a")])) == []


def test_steal_storm_escalates_with_the_stolen_ratio():
    # one recovered steal across many shards: info, not noise-free —
    # the CI recovery drills grep for exactly this finding
    (f,) = check_fabric(_fabric_record(steals=1, shards=8))
    assert f.rule == "steal-storm" and f.severity == SEV_INFO

    # a quarter of the shards stolen: systemic churn -> warning
    (f,) = check_fabric(_fabric_record(steals=1, shards=4))
    assert f.severity == SEV_WARNING
    assert f.value == pytest.approx(0.25)

    # three quarters: error
    (f,) = check_fabric(_fabric_record(steals=3, shards=4))
    assert f.severity == SEV_ERROR

    assert check_fabric(_fabric_record(steals=0)) == []


def test_respawn_budget_burn():
    (f,) = check_fabric(_fabric_record(respawns=1, max_respawns=4))
    assert f.rule == "respawn-budget-burn" and f.severity == SEV_INFO

    (f,) = check_fabric(_fabric_record(respawns=2, max_respawns=2))
    assert f.severity == SEV_WARNING
    assert "exhausted" in f.message

    assert check_fabric(_fabric_record(respawns=0)) == []


def test_straggler_shard_against_this_runs_median():
    rec = _fabric_record(
        shard_walls={"s0000": 0.1, "s0001": 0.1, "s0002": 0.5}
    )
    (f,) = check_fabric(rec)
    assert f.rule == "straggler-shard" and f.severity == SEV_WARNING
    assert f.subject == "run-f:s0002"
    assert f.value == pytest.approx(5.0)


def test_straggler_shard_prefers_same_shard_history():
    # s0002 is 5x this run's median but identical to its own history:
    # the shard is just big, not straggling
    walls = {"s0000": 0.1, "s0001": 0.1, "s0002": 0.5}
    history = [_fabric_record(run_id=f"h{i}", shard_walls=dict(walls))
               for i in range(3)]
    assert check_fabric(_fabric_record(shard_walls=walls), history) == []
    # but a shard 3x its own history fires even if this run's median
    # would have excused it
    slow = dict(walls, s0002=1.5)
    (f,) = check_fabric(_fabric_record(shard_walls=slow), history)
    assert f.subject == "run-f:s0002"
    assert f.value == pytest.approx(3.0)


def test_straggler_ignores_sub_resolution_walls():
    # micro-shards: 5x ratio but everything under straggler_min_s
    rec = _fabric_record(shard_walls={"a": 0.002, "b": 0.002, "c": 0.01})
    assert check_fabric(rec) == []


def test_check_run_includes_fabric_findings():
    record = {**_record([]), **{"fabric": _fabric_record(steals=3)["fabric"]}}
    findings = check_run(record, [])
    assert any(f.rule == "steal-storm" for f in findings)


# ---------------------------------------------------------------------------
# bench trajectory
# ---------------------------------------------------------------------------


def _bench_entry(sha, **medians):
    return {
        "env": {"git_sha": sha},
        "metrics": {
            name: {"median": m, "unit": "x/s",
                   "direction": "lower" if name.endswith("_s") else "higher"}
            for name, m in medians.items()
        },
    }


def test_bench_trajectory_direction_normalised():
    # throughput (higher=better) halves -> factor 2 -> error
    entries = [
        _bench_entry("aaa", tput=100.0),
        _bench_entry("bbb", tput=101.0),
        _bench_entry("ccc", tput=50.0),
    ]
    (f,) = check_bench_trajectory(entries)
    assert f.rule == "bench-regression" and f.severity == SEV_ERROR
    assert f.subject == "bench:ccc:tput"

    # latency (lower=better) rising 1.3x -> warning
    entries = [
        _bench_entry("aaa", wall_s=1.0),
        _bench_entry("bbb", wall_s=1.3),
    ]
    (f,) = check_bench_trajectory(entries)
    assert f.severity == SEV_WARNING

    # improvement never fires
    entries = [_bench_entry("aaa", tput=100.0), _bench_entry("bbb", tput=300.0)]
    assert check_bench_trajectory(entries) == []
    # a single entry has no baseline
    assert check_bench_trajectory([_bench_entry("aaa", tput=1.0)]) == []


# ---------------------------------------------------------------------------
# composition + the acceptance fixture
# ---------------------------------------------------------------------------


def test_check_run_sorts_worst_first():
    history = [_record([_point("a", app_time=1.0)], run_id="h0")]
    record = _record([
        _point("a", app_time=3.0,
               audit={"estimation_error": {"max_abs": 1e-8}}),  # warning
    ])
    findings = check_run(record, history)
    assert [f.severity for f in findings] == [SEV_ERROR, SEV_WARNING]
    assert max_severity(findings) == SEV_ERROR
    assert has_errors(findings)
    assert max_severity([]) is None
    assert not has_errors([])


def test_injected_3x_penalty_outlier_in_registry_fixture(tmp_path, fabricate,
                                                         monkeypatch):
    """The acceptance fixture: prior smoke-like runs in a real registry,
    then one run with a 3x app_time on one label -> error finding."""
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
    registry = RunRegistry(tmp_path / "registry")
    for i in range(2):
        spec, result = fabricate("smoke", PAIRED_POINTS)
        registry.ingest_sweep(
            spec, result, created_utc=f"2026-08-06T1{i}:00:00Z"
        )
    outlier_points = [dict(p) for p in PAIRED_POINTS]
    outlier_points[1] = {**outlier_points[1], "app_time": 4.5}  # 3x the 1.5s median
    spec, result = fabricate("smoke", outlier_points)
    record = registry.ingest_sweep(
        spec, result, created_utc="2026-08-06T12:00:00Z"
    )

    history = registry.history("smoke", before=record["run_id"])
    assert len(history) == 2
    findings = check_run(record, history)
    outliers = [f for f in findings if f.rule == "penalty-outlier"]
    assert len(outliers) == 1
    assert outliers[0].severity == SEV_ERROR
    assert outliers[0].value == pytest.approx(3.0)
    assert "cores=4,balancer=refine-vm" in outliers[0].subject
    assert has_errors(findings)


def test_custom_thresholds_and_finding_dict():
    lax = Thresholds(penalty_warn=10.0, penalty_error=20.0)
    history = [_record([_point("a", app_time=1.0)], run_id="h0")]
    assert check_history_outliers(_record([_point("a", app_time=3.0)]),
                                  history, lax) == []
    f = Finding(rule="r", severity=SEV_INFO, subject="s", message="m", value=1.0)
    assert f.to_dict() == {
        "rule": "r", "severity": "info", "subject": "s", "message": "m",
        "value": 1.0, "threshold": None,
    }
    assert DEFAULT_THRESHOLDS.penalty_error == 2.0

"""The run registry: ingest, list, resolve, history, reconcile, diff."""

import json

import pytest

from repro.obs.registry import RUN_SCHEMA, RunRegistry, default_registry_dir, diff_runs


@pytest.fixture(autouse=True)
def _pinned_sha(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(tmp_path / "registry")


def test_default_registry_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "r"))
    assert default_registry_dir() == tmp_path / "r"
    monkeypatch.delenv("REPRO_REGISTRY_DIR")
    assert default_registry_dir().name == "registry"


def test_ingest_sweep_and_list(registry, fabricate):
    spec, result = fabricate(
        "smoke", [{"label": "a", "seed": 7}, {"label": "b", "seed": 8}]
    )
    record = registry.ingest_sweep(
        spec, result, created_utc="2026-08-06T10:00:00Z",
        artifacts={"audit_dir": "audits/x"},
    )
    assert record["schema"] == RUN_SCHEMA
    assert record["run_id"].startswith("20260806T100000Z-sweep-")
    assert record["git_sha"] == "feedbeef"
    assert record["env"]["git_sha"] == "feedbeef"
    assert record["spec"]["name"] == "smoke"
    assert record["metrics"]["points"] == 2
    assert [p["seed"] for p in record["points"]] == [7, 8]
    assert record["points"][0]["summary"]["app_time"] == 1.0
    assert record["artifacts"] == {"audit_dir": "audits/x"}

    listed = registry.list()
    assert len(listed) == len(registry) == 1
    assert listed[0]["run_id"] == record["run_id"]
    assert listed[0]["kind"] == "sweep"
    assert listed[0]["points"] == 2


def test_run_id_collisions_get_suffixes(registry, fabricate):
    spec, result = fabricate("smoke", [{"label": "a"}])
    stamp = "2026-08-06T10:00:00Z"
    first = registry.ingest_sweep(spec, result, created_utc=stamp)
    second = registry.ingest_sweep(spec, result, created_utc=stamp)
    assert second["run_id"] == f"{first['run_id']}-1"
    assert len(registry.list()) == 2


def test_load_and_resolve(registry, fabricate):
    spec, result = fabricate("smoke", [{"label": "a"}])
    r1 = registry.ingest_sweep(spec, result, created_utc="2026-08-06T10:00:00Z")
    spec2, result2 = fabricate("abl", [{"label": "a"}])
    r2 = registry.ingest_sweep(spec2, result2, created_utc="2026-08-06T11:00:00Z")

    assert registry.load(r1["run_id"])["run_id"] == r1["run_id"]
    assert registry.resolve("latest") == r2["run_id"]
    assert registry.resolve("latest:smoke") == r1["run_id"]
    assert registry.resolve(r1["run_id"][:20]) == r1["run_id"]
    assert registry.load("latest")["name"] == "abl"

    with pytest.raises(ValueError, match="ambiguous"):
        registry.resolve("2026")
    with pytest.raises(ValueError, match="no run matching"):
        registry.resolve("zzz")
    with pytest.raises(ValueError, match="no runs named"):
        registry.resolve("latest:nope")


def test_resolve_on_empty_registry(registry):
    with pytest.raises(ValueError, match="no runs"):
        registry.resolve("latest")


def test_history_excludes_other_names_and_later_runs(registry, fabricate):
    ids = []
    for hour, name in ((10, "smoke"), (11, "abl"), (12, "smoke"), (13, "smoke")):
        spec, result = fabricate(name, [{"label": "a"}])
        rec = registry.ingest_sweep(
            spec, result, created_utc=f"2026-08-06T{hour}:00:00Z"
        )
        ids.append(rec["run_id"])
    history = registry.history("smoke", before=ids[3])
    assert [r["run_id"] for r in history] == [ids[0], ids[2]]
    assert [r["run_id"] for r in registry.history("smoke")] == [
        ids[0], ids[2], ids[3]
    ]


def test_index_reconciles_missing_lines(registry, fabricate):
    spec, result = fabricate("smoke", [{"label": "a"}])
    record = registry.ingest_sweep(spec, result, created_utc="2026-08-06T10:00:00Z")
    registry.index_path.unlink()  # e.g. writer died between record and index
    listed = registry.list()
    assert [r["run_id"] for r in listed] == [record["run_id"]]
    assert listed[0]["points"] == 1


def test_truncated_trailing_index_line_is_skipped(registry, fabricate):
    spec, result = fabricate("smoke", [{"label": "a"}])
    record = registry.ingest_sweep(spec, result, created_utc="2026-08-06T10:00:00Z")
    with open(registry.index_path, "a") as fh:
        fh.write('{"run_id": "half-writ')  # killed mid-line
    assert [r["run_id"] for r in registry.list()] == [record["run_id"]]


def test_corrupt_middle_index_line_raises(registry, fabricate):
    for hour in (10, 11):
        spec, result = fabricate("smoke", [{"label": "a"}])
        registry.ingest_sweep(spec, result, created_utc=f"2026-08-06T{hour}:00:00Z")
    lines = registry.index_path.read_text().splitlines()
    registry.index_path.write_text("\n".join([lines[0], "{broken", lines[1]]) + "\n")
    with pytest.raises(ValueError, match="not valid JSON"):
        registry.list()


def test_load_rejects_wrong_schema(registry, tmp_path):
    registry.runs_dir.mkdir(parents=True)
    bad = registry.runs_dir / "x.json"
    bad.write_text(json.dumps({"schema": 99, "run_id": "x"}))
    with pytest.raises(ValueError, match="schema"):
        registry.load("x")


def test_ingest_bench(registry):
    bench = {
        "schema": 1,
        "created_utc": "2026-08-06T12:00:00Z",
        "elapsed_s": 3.2,
        "env": {"git_sha": "feedbeef", "code_fingerprint": "abc"},
        "config": {"repeats": 5},
        "metrics": {
            "engine.events_per_s": {
                "median": 1e6, "iqr": 1e4, "p90": 1.1e6,
                "unit": "events/s", "direction": "higher", "suite": "micro",
            },
        },
    }
    record = registry.ingest_bench(bench, artifacts={"trajectory_entry": "b.json"})
    assert record["kind"] == "bench"
    assert record["run_id"].startswith("20260806T120000Z-bench-")
    assert record["points"][0]["label"] == "engine.events_per_s"
    assert record["points"][0]["summary"]["median"] == 1e6
    assert registry.list()[0]["kind"] == "bench"


def test_diff_runs(registry, fabricate):
    spec_a, result_a = fabricate(
        "smoke",
        [
            {"label": "a", "app_time": 1.0},
            {"label": "b", "app_time": 2.0},
            {"label": "gone", "app_time": 3.0},
        ],
    )
    spec_b, result_b = fabricate(
        "smoke",
        [
            {"label": "a", "app_time": 1.0},
            {"label": "b", "app_time": 3.0},
            {"label": "new", "app_time": 4.0},
        ],
    )
    ra = registry.ingest_sweep(spec_a, result_a, created_utc="2026-08-06T10:00:00Z")
    rb = registry.ingest_sweep(spec_b, result_b, created_utc="2026-08-06T11:00:00Z")
    diff = diff_runs(ra, rb)
    assert diff["a"] == ra["run_id"] and diff["b"] == rb["run_id"]
    assert diff["only_a"] == ["gone"] and diff["only_b"] == ["new"]
    assert diff["identical"] == ["a"]
    va, vb, rel = diff["changed"]["b"]["app_time"]
    assert (va, vb) == (2.0, 3.0)
    assert rel == pytest.approx(0.5)
    # bg_time tracks app_time in the fixture, so it differs too
    assert "bg_time" in diff["changed"]["b"]

"""Unit tests for the MaxHeap used by Algorithm 1."""

import pytest

from repro.core.heaps import MaxHeap


def test_pop_order_is_descending():
    h = MaxHeap()
    for item, pr in [("a", 1.0), ("b", 3.0), ("c", 2.0)]:
        h.push(item, pr)
    assert h.pop() == ("b", 3.0)
    assert h.pop() == ("c", 2.0)
    assert h.pop() == ("a", 1.0)


def test_len_and_contains():
    h = MaxHeap()
    h.push("x", 1.0)
    assert len(h) == 1
    assert "x" in h
    assert "y" not in h


def test_reprioritise_replaces_old_entry():
    h = MaxHeap()
    h.push("a", 1.0)
    h.push("b", 2.0)
    h.push("a", 5.0)  # update
    assert len(h) == 2
    assert h.pop() == ("a", 5.0)
    assert h.pop() == ("b", 2.0)


def test_remove_is_lazy_but_effective():
    h = MaxHeap()
    h.push("a", 3.0)
    h.push("b", 1.0)
    h.remove("a")
    assert "a" not in h
    assert h.pop() == ("b", 1.0)
    with pytest.raises(IndexError):
        h.pop()


def test_remove_absent_is_noop():
    h = MaxHeap()
    h.remove("ghost")
    assert len(h) == 0


def test_priority_query():
    h = MaxHeap()
    h.push("a", 2.5)
    assert h.priority("a") == 2.5
    assert h.priority("b") is None


def test_peek_does_not_remove():
    h = MaxHeap()
    h.push("a", 1.0)
    assert h.peek() == ("a", 1.0)
    assert len(h) == 1


def test_peek_empty_raises():
    with pytest.raises(IndexError):
        MaxHeap().peek()


def test_fifo_among_ties():
    h = MaxHeap()
    h.push("first", 1.0)
    h.push("second", 1.0)
    assert h.pop()[0] == "first"
    assert h.pop()[0] == "second"

"""Hypothesis property tests on Algorithm 1's invariants.

These cover the guarantees the paper's scheme rests on:

1. migrations are always valid (source correct, chares exist, no core
   outside the job);
2. receivers never end above ``T_avg + ε`` (the Eq. 3 constraint the
   pseudocode enforces at line 12);
3. task conservation — no chare is lost or duplicated;
4. the algorithm terminates and is deterministic for arbitrary views;
5. total load is invariant under migration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CoreLoad,
    GreedyLB,
    LBView,
    RefineVMInterferenceLB,
    TaskRecord,
)
from repro.core.database import validate_migrations

task_times = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
bg_loads = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)


@st.composite
def lb_views(draw):
    n_cores = draw(st.integers(min_value=1, max_value=8))
    cores = []
    for cid in range(n_cores):
        times = draw(st.lists(task_times, min_size=0, max_size=6))
        tasks = tuple(
            TaskRecord(chare=(f"arr{cid}", i), cpu_time=t, state_bytes=64.0)
            for i, t in enumerate(times)
        )
        bg = draw(bg_loads)
        cores.append(CoreLoad(core_id=cid, tasks=tasks, bg_load=bg))
    return LBView(cores=tuple(cores), window=100.0)


def final_loads(view, migrations, *, include_bg=True):
    load = {
        c.core_id: c.task_time + (c.bg_load if include_bg else 0.0)
        for c in view.cores
    }
    t = {tr.chare: tr.cpu_time for c in view.cores for tr in c.tasks}
    for m in migrations:
        load[m.src] -= t[m.chare]
        load[m.dst] += t[m.chare]
    return load


@given(lb_views(), st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=200, deadline=None)
def test_algorithm1_migrations_are_valid(view, eps):
    lb = RefineVMInterferenceLB(eps)
    migrations = lb.decide(view)
    validate_migrations(view, migrations)  # raises on violation


@given(lb_views(), st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=200, deadline=None)
def test_algorithm1_receivers_stay_below_threshold(view, eps):
    lb = RefineVMInterferenceLB(eps)
    migrations = lb.decide(view)
    t_avg = view.t_avg
    loads = final_loads(view, migrations)
    for m in migrations:
        pass
    receivers = {m.dst for m in migrations}
    for cid in receivers:
        assert loads[cid] - t_avg <= eps * t_avg + 1e-9


@given(lb_views(), st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=200, deadline=None)
def test_algorithm1_conserves_tasks_and_load(view, eps):
    lb = RefineVMInterferenceLB(eps)
    migrations = lb.decide(view)
    before = {tr.chare for c in view.cores for tr in c.tasks}
    mapping = view.task_map()
    for m in migrations:
        mapping[m.chare] = m.dst
    assert set(mapping) == before  # no chare lost or invented
    total_before = sum(c.total_load for c in view.cores)
    total_after = sum(final_loads(view, migrations).values())
    assert abs(total_before - total_after) < 1e-6


@given(lb_views())
@settings(max_examples=100, deadline=None)
def test_algorithm1_is_deterministic(view):
    lb = RefineVMInterferenceLB(0.05)
    assert lb.decide(view) == lb.decide(view)


@given(lb_views(), st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=200, deadline=None)
def test_algorithm1_never_worsens_max_load(view, eps):
    lb = RefineVMInterferenceLB(eps)
    migrations = lb.decide(view)
    before = max((c.total_load for c in view.cores), default=0.0)
    after = max(final_loads(view, migrations).values(), default=0.0)
    assert after <= before + 1e-9


@given(lb_views())
@settings(max_examples=100, deadline=None)
def test_greedy_migrations_are_valid(view):
    migrations = GreedyLB().decide(view)
    validate_migrations(view, migrations)


@given(lb_views())
@settings(max_examples=100, deadline=None)
def test_greedy_aware_respects_list_scheduling_bound(view):
    """LPT with seed loads: makespan <= max(max seed, avg + biggest task).

    (Greedy cannot promise strict improvement over an arbitrary starting
    mapping — tasks are indivisible — but list scheduling guarantees this
    classical bound, which is what makes it a usable baseline.)
    """
    lb = GreedyLB(aware=True)
    migrations = lb.decide(view)
    after = max(final_loads(view, migrations).values(), default=0.0)
    max_seed = max((c.bg_load for c in view.cores), default=0.0)
    biggest = max(
        (t.cpu_time for c in view.cores for t in c.tasks), default=0.0
    )
    assert after <= max(max_seed, view.t_avg + biggest) + 1e-9

"""Unit tests for the LB database and view structures."""

import pytest

from repro.core import CoreLoad, LBDatabase, LBView, Migration, TaskRecord
from repro.core.database import validate_migrations
from repro.sim import SharedCore, SimProcess, SimulationEngine
from repro.sim.procstat import ProcStat


def make_view(loads, bg=None):
    """Helper: one unit task per core with the given cpu_time."""
    bg = bg or [0.0] * len(loads)
    cores = tuple(
        CoreLoad(
            core_id=i,
            tasks=(TaskRecord(chare=("a", i), cpu_time=loads[i]),),
            bg_load=bg[i],
        )
        for i in range(len(loads))
    )
    return LBView(cores=cores, window=max(loads) + max(bg) + 1.0)


def test_task_record_validation():
    with pytest.raises(ValueError):
        TaskRecord(chare=("a", 0), cpu_time=-1.0)
    with pytest.raises(ValueError):
        TaskRecord(chare=("a", 0), cpu_time=1.0, state_bytes=-1.0)


def test_core_load_totals():
    c = CoreLoad(
        core_id=0,
        tasks=(
            TaskRecord(chare=("a", 0), cpu_time=1.0),
            TaskRecord(chare=("a", 1), cpu_time=2.0),
        ),
        bg_load=0.5,
    )
    assert c.task_time == pytest.approx(3.0)
    assert c.total_load == pytest.approx(3.5)


def test_view_t_avg_is_equation_one():
    view = make_view([1.0, 3.0], bg=[0.0, 2.0])
    # (1 + (3+2)) / 2
    assert view.t_avg == pytest.approx(3.0)


def test_view_rejects_duplicate_cores():
    cores = (
        CoreLoad(core_id=0, tasks=()),
        CoreLoad(core_id=0, tasks=()),
    )
    with pytest.raises(ValueError):
        LBView(cores=cores, window=1.0)


def test_view_core_lookup_and_task_map():
    view = make_view([1.0, 2.0])
    assert view.core(1).task_time == pytest.approx(2.0)
    with pytest.raises(KeyError):
        view.core(99)
    assert view.task_map() == {("a", 0): 0, ("a", 1): 1}


def test_empty_view_t_avg_zero():
    assert LBView(cores=(), window=0.0).t_avg == 0.0


def test_migration_to_self_rejected():
    with pytest.raises(ValueError):
        Migration(chare=("a", 0), src=1, dst=1)


def test_validate_migrations_catches_bad_decisions():
    view = make_view([1.0, 2.0])
    # unknown chare
    with pytest.raises(ValueError):
        validate_migrations(view, [Migration(chare=("zz", 9), src=0, dst=1)])
    # wrong source
    with pytest.raises(ValueError):
        validate_migrations(view, [Migration(chare=("a", 0), src=1, dst=0)])
    # destination outside the job
    with pytest.raises(ValueError):
        validate_migrations(view, [Migration(chare=("a", 0), src=0, dst=7)])
    # double move
    with pytest.raises(ValueError):
        validate_migrations(
            view,
            [
                Migration(chare=("a", 0), src=0, dst=1),
                Migration(chare=("a", 0), src=0, dst=1),
            ],
        )
    # a valid set passes
    validate_migrations(view, [Migration(chare=("a", 0), src=0, dst=1)])


class TestLBDatabase:
    def _setup(self):
        eng = SimulationEngine()
        cores = {0: SharedCore(eng, 0), 1: SharedCore(eng, 1)}
        stat = ProcStat(cores, owner="app")
        db = LBDatabase(stat, state_bytes={("a", 0): 100.0})
        return eng, cores, db

    def test_accumulates_task_cpu(self):
        eng, cores, db = self._setup()
        db.record_task(("a", 0), 1.0)
        db.record_task(("a", 0), 0.5)
        view = db.build_view({("a", 0): 0})
        assert view.core(0).task_time == pytest.approx(1.5)
        assert view.core(0).tasks[0].state_bytes == 100.0

    def test_reset_window_zeroes_accumulators(self):
        eng, cores, db = self._setup()
        db.record_task(("a", 0), 1.0)
        db.reset_window()
        view = db.build_view({("a", 0): 0})
        assert view.core(0).task_time == 0.0

    def test_bg_load_derived_from_counters(self):
        eng, cores, db = self._setup()
        # app task and an interloper share core 0 for 2 CPU-s each
        app = SimProcess("t", 2.0, owner="app")
        intruder = SimProcess("x", 2.0, owner="other")
        cores[0].dispatch(app)
        cores[0].dispatch(intruder)
        eng.run()
        db.record_task(("a", 0), app.cpu_time)
        view = db.build_view({("a", 0): 0})
        assert view.core(0).bg_load == pytest.approx(2.0)
        assert view.core(1).bg_load == pytest.approx(0.0)
        assert view.window == pytest.approx(4.0)

    def test_mapping_outside_job_rejected(self):
        eng, cores, db = self._setup()
        with pytest.raises(ValueError):
            db.build_view({("a", 0): 5})

    def test_negative_task_time_rejected(self):
        eng, cores, db = self._setup()
        with pytest.raises(ValueError):
            db.record_task(("a", 0), -0.1)

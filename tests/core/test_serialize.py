"""Tests for LBView / migration JSON serialisation."""

import json

import pytest
from hypothesis import given, settings

from repro.core import Migration, RefineVMInterferenceLB
from repro.core.serialize import (
    dump_view,
    load_view,
    migrations_from_dict,
    migrations_to_dict,
    view_from_dict,
    view_to_dict,
)
from tests.core.test_properties import lb_views


def test_round_trip_preserves_view(tmp_path):
    from repro.core import CoreLoad, LBView, TaskRecord

    view = LBView(
        cores=(
            CoreLoad(
                core_id=0,
                tasks=(
                    TaskRecord(
                        ("grid", 3),
                        cpu_time=1.5,
                        state_bytes=512.0,
                        comm=((("grid", 4), 100.0),),
                    ),
                ),
                bg_load=0.7,
            ),
            CoreLoad(core_id=1, tasks=()),
        ),
        window=10.0,
    )
    path = tmp_path / "view.json"
    dump_view(view, str(path))
    loaded = load_view(str(path))
    assert loaded == view


@given(lb_views())
@settings(max_examples=100, deadline=None)
def test_round_trip_property(view):
    assert view_from_dict(view_to_dict(view)) == view


@given(lb_views())
@settings(max_examples=50, deadline=None)
def test_replay_gives_identical_decisions(view):
    """The raison d'être: offline replay reproduces the online decision."""
    lb = RefineVMInterferenceLB(0.05)
    online = lb.balance(view)
    replayed = lb.balance(view_from_dict(view_to_dict(view)))
    assert online == replayed


def test_json_is_actually_json(tmp_path):
    from tests.core.test_interference_lb import view_from

    view = view_from([[1.0, 2.0], [0.5]], bg_loads=[3.0, 0.0])
    path = tmp_path / "v.json"
    dump_view(view, str(path))
    data = json.loads(path.read_text())
    assert data["format"] == 1
    assert len(data["cores"]) == 2


def test_migration_round_trip():
    ms = [
        Migration(chare=("a", 0), src=0, dst=1),
        Migration(chare=("b", 7), src=2, dst=0),
    ]
    assert migrations_from_dict(migrations_to_dict(ms)) == ms


def test_bad_format_rejected():
    with pytest.raises(ValueError):
        view_from_dict({"format": 99, "window": 1.0, "cores": []})


def test_malformed_key_rejected():
    data = {
        "format": 1,
        "window": 1.0,
        "cores": [
            {"core_id": 0, "bg_load": 0.0,
             "tasks": [{"chare": [1, 2], "cpu_time": 1.0}]}
        ],
    }
    with pytest.raises(ValueError):
        view_from_dict(data)


def test_corrupt_values_fail_dataclass_validation():
    data = {
        "format": 1,
        "window": 1.0,
        "cores": [
            {"core_id": 0, "bg_load": -5.0, "tasks": []}
        ],
    }
    with pytest.raises(ValueError):
        view_from_dict(data)

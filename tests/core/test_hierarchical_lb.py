"""Unit tests for the locality-preferring hierarchical balancer."""

import pytest

from repro.core import (
    CoreLoad,
    GreedyLB,
    LBView,
    Migration,
    RefineVMInterferenceLB,
    TaskRecord,
)
from repro.core.database import validate_migrations
from repro.core.hierarchical import HierarchicalLB


def view_from(task_lists, bg_loads=None, window=100.0):
    bg_loads = bg_loads or [0.0] * len(task_lists)
    cores = []
    for cid, times in enumerate(task_lists):
        tasks = tuple(
            TaskRecord(chare=(f"c{cid}", i), cpu_time=t) for i, t in enumerate(times)
        )
        cores.append(CoreLoad(core_id=cid, tasks=tasks, bg_load=bg_loads[cid]))
    return LBView(cores=tuple(cores), window=window)


def apply(view, migrations):
    load = {c.core_id: c.total_load for c in view.cores}
    t = {tr.chare: tr.cpu_time for c in view.cores for tr in c.tasks}
    for m in migrations:
        load[m.src] -= t[m.chare]
        load[m.dst] += t[m.chare]
    return load


def test_by_node_grouping():
    lb = HierarchicalLB.by_node(cores_per_node=4)
    assert lb.group_of(0) == 0
    assert lb.group_of(3) == 0
    assert lb.group_of(4) == 1
    with pytest.raises(ValueError):
        HierarchicalLB.by_node(cores_per_node=0)


def test_inner_family_enforced():
    with pytest.raises(TypeError):
        HierarchicalLB.by_node(cores_per_node=2, inner=GreedyLB())


def test_redirects_into_donor_node_when_feasible():
    # core 0 overloaded; core 1 (same node) and cores 2,3 (other node)
    # all light. Flat Algorithm 1 spreads by least-loaded order; the
    # hierarchical variant must land everything it can on core 1.
    view = view_from([[1.0] * 8, [1.0], [1.0], [1.0]])
    lb = HierarchicalLB.by_node(cores_per_node=2)
    migrations = lb.balance(view)
    validate_migrations(view, migrations)
    intra = [m for m in migrations if m.dst == 1]
    assert lb.last_intra == len(intra) > 0


def test_crosses_node_when_local_receiver_is_full():
    # donor's only node-mate is itself nearly at T_avg: must cross
    view = view_from([[1.0] * 6, [1.0, 1.0, 1.0], [], []])
    lb = HierarchicalLB.by_node(cores_per_node=2)
    migrations = lb.balance(view)
    validate_migrations(view, migrations)
    assert lb.last_inter > 0
    load = apply(view, migrations)
    t_avg = view.t_avg
    for m in migrations:
        assert load[m.dst] <= t_avg + 0.05 * t_avg + 1e-9


def test_balance_quality_matches_flat():
    """Redirection must not worsen the achieved max load beyond epsilon."""
    view = view_from(
        [[1.0] * 6, [1.0], [1.0], [1.0]], bg_loads=[2.0, 0.0, 0.0, 0.0]
    )
    flat = RefineVMInterferenceLB(0.05).balance(view)
    hier = HierarchicalLB.by_node(cores_per_node=2).balance(view)
    max_flat = max(apply(view, flat).values())
    max_hier = max(apply(view, hier).values())
    t_avg = view.t_avg
    assert max_hier <= max(max_flat, t_avg + 0.05 * t_avg) + 1e-9


def test_same_migration_count_as_inner():
    view = view_from([[1.0] * 8, [], [], []], bg_loads=[0.0, 0.0, 0.0, 0.0])
    inner = RefineVMInterferenceLB(0.05)
    flat_count = len(inner.balance(view))
    hier = HierarchicalLB.by_node(cores_per_node=2, inner=RefineVMInterferenceLB(0.05))
    assert len(hier.balance(view)) == flat_count


def test_no_decisions_passthrough():
    view = view_from([[1.0], [1.0]])
    lb = HierarchicalLB.by_node(cores_per_node=2)
    assert lb.balance(view) == []
    assert lb.last_intra == 0 and lb.last_inter == 0


def test_deterministic():
    view = view_from(
        [[1.0] * 5, [0.5], [2.0], []], bg_loads=[3.0, 0.0, 0.0, 1.0]
    )
    lb = HierarchicalLB.by_node(cores_per_node=2)
    assert lb.balance(view) == lb.balance(view)


def test_quotient_style_aggregation_would_oscillate():
    """Documents why the quotient formulation was rejected (module docs).

    A node whose interference is concentrated on half its cores looks
    overloaded *in aggregate* even though its clean cores have spare
    capacity: group load (tasks + O) exceeds the group average, yet
    after draining, the same aggregation flags it underloaded. The
    redirect formulation never aggregates, so the instability cannot
    arise — asserted here via idempotence: re-running on the post-
    migration state decides nothing new.
    """
    view = view_from(
        [[1.0] * 4, [1.0] * 4, [1.0] * 4, [1.0] * 4],
        bg_loads=[10.0, 0.0, 0.0, 0.0],
    )
    lb = HierarchicalLB.by_node(cores_per_node=2)
    migrations = lb.balance(view)
    # apply and rebuild the view
    mapping = view.task_map()
    for m in migrations:
        mapping[m.chare] = m.dst
    cpu = {t.chare: t for c in view.cores for t in c.tasks}
    new_cores = []
    for c in view.cores:
        tasks = tuple(
            sorted(
                (cpu[k] for k, cid in mapping.items() if cid == c.core_id),
                key=lambda t: t.chare,
            )
        )
        new_cores.append(
            CoreLoad(core_id=c.core_id, tasks=tasks, bg_load=c.bg_load)
        )
    view2 = LBView(cores=tuple(new_cores), window=view.window)
    followup = lb.balance(view2)
    assert len(followup) <= 1  # stable (one residual nudge tolerated)

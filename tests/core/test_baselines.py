"""Unit tests for NoLB / GreedyLB / MigrationCostAwareLB / policies / metrics."""

import pytest

from repro.cluster import NetworkModel
from repro.core import (
    GreedyLB,
    LBPolicy,
    Migration,
    MigrationCostAwareLB,
    NoLB,
    RefineVMInterferenceLB,
    imbalance_ratio,
    max_load,
    migration_volume_bytes,
    within_epsilon,
)
from tests.core.test_interference_lb import apply, view_from


def test_nolb_never_moves():
    view = view_from([[5.0] * 4, []], bg_loads=[4.0, 0.0])
    assert NoLB().balance(view) == []


class TestGreedyLB:
    def test_balances_internal_imbalance(self):
        view = view_from([[1.0] * 4, []])
        load = apply(view, GreedyLB().balance(view))
        assert load[0] == pytest.approx(2.0)
        assert load[1] == pytest.approx(2.0)

    def test_unaware_ignores_bg(self):
        view = view_from([[1.0] * 2, [1.0] * 2], bg_loads=[4.0, 0.0])
        load = apply(view, GreedyLB().balance(view))
        # task times equalised (2/2) regardless of bg: core0 stays at 6 total
        assert load[0] == pytest.approx(6.0)

    def test_aware_seeds_with_bg(self):
        view = view_from([[1.0] * 4, [1.0] * 4], bg_loads=[4.0, 0.0])
        load = apply(view, GreedyLB(aware=True).balance(view))
        assert load[0] == pytest.approx(6.0)
        assert load[1] == pytest.approx(6.0)

    def test_no_migrations_when_already_optimal(self):
        view = view_from([[2.0], [2.0]])
        assert GreedyLB().balance(view) == []


class TestMigrationCostAware:
    def _view(self, state_bytes):
        from repro.core import CoreLoad, LBView, TaskRecord

        cores = (
            CoreLoad(
                core_id=0,
                tasks=tuple(
                    TaskRecord(("a", i), cpu_time=1.0, state_bytes=state_bytes)
                    for i in range(4)
                ),
            ),
            CoreLoad(core_id=1, tasks=()),
        )
        return LBView(cores=cores, window=10.0)

    def test_allows_cheap_beneficial_migrations(self):
        view = self._view(state_bytes=1024.0)
        lb = MigrationCostAwareLB(RefineVMInterferenceLB(0.05), NetworkModel.native())
        assert lb.balance(view) != []
        assert lb.suppressed_steps == 0

    def test_suppresses_when_cost_dominates(self):
        # gigantic chare state on a degraded network: gain (2s) < cost
        view = self._view(state_bytes=1e9)
        lb = MigrationCostAwareLB(
            RefineVMInterferenceLB(0.05), NetworkModel.virtualized()
        )
        assert lb.balance(view) == []
        assert lb.suppressed_steps == 1

    def test_predicted_gain_is_max_load_drop(self):
        view = self._view(state_bytes=0.0)
        inner = RefineVMInterferenceLB(0.05)
        migrations = inner.balance(view)
        gain = MigrationCostAwareLB.predicted_gain(view, migrations)
        assert gain == pytest.approx(2.0)  # 4.0 -> 2.0

    def test_empty_decision_passthrough(self):
        view = view_from([[1.0], [1.0]])
        lb = MigrationCostAwareLB(NoLB(), NetworkModel.native())
        assert lb.balance(view) == []

    def test_safety_factor_validation(self):
        with pytest.raises(ValueError):
            MigrationCostAwareLB(NoLB(), NetworkModel.native(), safety_factor=0.0)


class TestLBPolicy:
    def test_periodic_schedule(self):
        pol = LBPolicy(period_iterations=5)
        due = [i for i in range(1, 21) if pol.due(i, total_iterations=20)]
        assert due == [5, 10, 15]  # never after the last iteration

    def test_skip_first(self):
        pol = LBPolicy(period_iterations=5, skip_first=3)
        due = [i for i in range(1, 20) if pol.due(i, total_iterations=50)]
        assert due == [8, 13, 18]

    def test_validation(self):
        with pytest.raises(ValueError):
            LBPolicy(period_iterations=0)
        with pytest.raises(ValueError):
            LBPolicy(decision_overhead_s=-1.0)


class TestMetrics:
    def test_max_load_and_imbalance(self):
        view = view_from([[3.0], [1.0]])
        assert max_load(view) == pytest.approx(3.0)
        assert imbalance_ratio(view) == pytest.approx(1.5)

    def test_imbalance_of_empty_view_is_one(self):
        from repro.core import LBView

        assert imbalance_ratio(LBView(cores=(), window=0.0)) == 1.0

    def test_within_epsilon(self):
        view = view_from([[1.05], [0.95]])
        assert within_epsilon(view, 0.10)
        assert not within_epsilon(view, 0.01)
        assert within_epsilon(view, 0.06, absolute=True)

    def test_migration_volume(self):
        from repro.core import CoreLoad, LBView, TaskRecord

        cores = (
            CoreLoad(
                core_id=0,
                tasks=(TaskRecord(("a", 0), 1.0, state_bytes=100.0),),
            ),
            CoreLoad(core_id=1, tasks=()),
        )
        view = LBView(cores=cores, window=1.0)
        moves = [Migration(chare=("a", 0), src=0, dst=1)]
        assert migration_volume_bytes(view, moves) == 100.0

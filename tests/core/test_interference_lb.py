"""Unit tests for Algorithm 1 (RefineVMInterferenceLB)."""

import pytest

from repro.core import (
    CoreLoad,
    LBView,
    RefineLB,
    RefineVMInterferenceLB,
    TaskRecord,
    imbalance_ratio,
    within_epsilon,
)


def view_from(task_lists, bg_loads=None, window=100.0):
    """Build an LBView from [[task_time, ...] per core] (+ bg per core)."""
    bg_loads = bg_loads or [0.0] * len(task_lists)
    cores = []
    for cid, times in enumerate(task_lists):
        tasks = tuple(
            TaskRecord(chare=(f"c{cid}", i), cpu_time=t) for i, t in enumerate(times)
        )
        cores.append(CoreLoad(core_id=cid, tasks=tasks, bg_load=bg_loads[cid]))
    return LBView(cores=tuple(cores), window=window)


def apply(view, migrations):
    """Return per-core total loads after applying migrations."""
    load = {c.core_id: c.total_load for c in view.cores}
    t = {tr.chare: tr.cpu_time for c in view.cores for tr in c.tasks}
    for m in migrations:
        load[m.src] -= t[m.chare]
        load[m.dst] += t[m.chare]
    return load


def test_balanced_view_yields_no_migrations():
    view = view_from([[1.0, 1.0], [1.0, 1.0]])
    assert RefineVMInterferenceLB(0.05).balance(view) == []


def test_internal_imbalance_is_refined():
    # core 0 has 4 units, core 1 has none
    view = view_from([[1.0, 1.0, 1.0, 1.0], []])
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    load = apply(view, migrations)
    assert load[0] == pytest.approx(2.0)
    assert load[1] == pytest.approx(2.0)


def test_background_load_drains_interfered_core():
    # equal app work everywhere, but core 0 lost 4s to an interferer:
    # an aware balancer must move app work OFF core 0.
    view = view_from([[1.0] * 4, [1.0] * 4], bg_loads=[4.0, 0.0])
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    assert migrations, "aware balancer must react to bg load"
    assert all(m.src == 0 and m.dst == 1 for m in migrations)
    load = apply(view, migrations)
    # T_avg = (8 + 4) / 2 = 6 ; ideal: core0 total 6 (2 app + 4 bg), core1 6
    assert load[0] == pytest.approx(6.0)
    assert load[1] == pytest.approx(6.0)


def test_oblivious_refine_ignores_background_load():
    view = view_from([[1.0] * 4, [1.0] * 4], bg_loads=[4.0, 0.0])
    assert RefineLB(0.05).balance(view) == []


def test_receiver_never_becomes_overloaded():
    view = view_from([[5.0, 5.0, 5.0], [1.0], [1.0]])
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    load = apply(view, migrations)
    t_avg = view.t_avg
    eps = 0.05 * t_avg
    for cid, l in load.items():
        if any(m.dst == cid for m in migrations):
            assert l - t_avg <= eps + 1e-12


def test_biggest_transferable_task_moves_first():
    view = view_from([[3.0, 1.0, 1.0, 1.0], []])
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    assert migrations[0].chare == ("c0", 0)  # the 3.0 task


def test_oversized_task_is_skipped_for_smaller_one():
    # T_avg = (9+1)/2 = 5, eps=0.25. The 9.0 task cannot fit anywhere
    # (1 + 9 = 10 > 5.25), so nothing moves from core 0... but a smaller
    # feasible task does: here core0 also has a 1.0 task.
    view = view_from([[9.0, 1.0], [1.0]])
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    assert [m.chare for m in migrations] == [("c0", 1)]


def test_untransferable_donor_terminates_cleanly():
    # one giant task, nothing else: no feasible migration may exist
    view = view_from([[10.0], [1.0]])
    lb = RefineVMInterferenceLB(0.05)
    assert lb.balance(view) == []


def test_bg_only_overload_cannot_shed():
    # core 0 overloaded purely by background load (no migratable tasks)
    view = view_from([[], [1.0, 1.0]], bg_loads=[10.0, 0.0])
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    # core 1 is not heavy (T_avg = 6), so nothing to do
    assert migrations == []


def test_epsilon_loosens_tolerance():
    view = view_from([[1.2], [0.8]])
    strict = RefineVMInterferenceLB(0.01)
    loose = RefineVMInterferenceLB(0.5)
    assert strict.balance(view) != [] or True  # strict may still be infeasible
    assert loose.balance(view) == []


def test_absolute_epsilon_mode():
    view = view_from([[2.0, 2.0], []])
    lb = RefineVMInterferenceLB(3.0, absolute_epsilon=True)
    assert lb.balance(view) == []  # |4-2|=2 < 3 absolute
    lb2 = RefineVMInterferenceLB(1.0, absolute_epsilon=True)
    assert lb2.balance(view) != []


def test_negative_epsilon_rejected():
    with pytest.raises(ValueError):
        RefineVMInterferenceLB(-0.1)


def test_many_core_scenario_reaches_eq3():
    # 8 cores, 8 tasks each of 1.0; interferers on cores 0 and 1 worth 4.0
    view = view_from([[1.0] * 8 for _ in range(8)], bg_loads=[4.0, 4.0] + [0.0] * 6)
    lb = RefineVMInterferenceLB(0.05)
    migrations = lb.balance(view)
    load = apply(view, migrations)
    t_avg = view.t_avg
    assert max(load.values()) / t_avg < 1.06
    # the interfered cores shed roughly 4 units of app work each
    shed0 = sum(1 for m in migrations if m.src == 0)
    assert shed0 >= 3


def test_determinism():
    view = view_from([[1.0] * 6, [2.0, 2.0], [0.5]], bg_loads=[0.0, 1.0, 3.0])
    lb = RefineVMInterferenceLB(0.05)
    assert lb.balance(view) == lb.balance(view)


def test_migration_count_is_minimal_versus_greedy():
    from repro.core import GreedyLB

    view = view_from([[1.0] * 5 for _ in range(4)], bg_loads=[3.0, 0.0, 0.0, 0.0])
    refine_moves = len(RefineVMInterferenceLB(0.05).balance(view))
    greedy_moves = len(GreedyLB().balance(view))
    assert refine_moves < greedy_moves

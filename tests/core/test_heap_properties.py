"""Model-based hypothesis test for the MaxHeap against a reference dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heaps import MaxHeap

ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 9), st.floats(0, 100, allow_nan=False)),
        st.tuples(st.just("remove"), st.integers(0, 9), st.just(0.0)),
        st.tuples(st.just("pop"), st.just(0), st.just(0.0)),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=300, deadline=None)
def test_maxheap_matches_reference_model(operations):
    heap: MaxHeap = MaxHeap()
    model = {}
    for op, item, priority in operations:
        if op == "push":
            heap.push(item, priority)
            model[item] = priority
        elif op == "remove":
            heap.remove(item)
            model.pop(item, None)
        else:  # pop
            if model:
                got_item, got_priority = heap.pop()
                # must be a max item of the model
                assert got_priority == max(model.values())
                assert model[got_item] == got_priority
                del model[got_item]
            else:
                try:
                    heap.pop()
                    raised = False
                except IndexError:
                    raised = True
                assert raised
        assert len(heap) == len(model)
        for k, v in model.items():
            assert heap.priority(k) == v

"""Property tests for the refinement/greedy balancer invariants.

The paper's scheme rests on three guarantees (Eq. 1-3 and Algorithm 1's
line-12 constraint), enforced here over randomized LB databases for both
the interference-aware refiner (:class:`RefineVMInterferenceLB`), the
classic task-only refiner (:class:`RefineLB`), and the greedy baseline:

1. **No receiver overload** — a core that receives work never ends above
   ``T_avg + ε`` under the balancer's own load model (Eq. 3);
2. **Conservation** — no chare is ever lost or duplicated, and total
   load is invariant under migration;
3. **Non-migratable work stays put** — background load O_p (another
   tenant's VM) is never moved: migrations only ever name chares that
   exist in the view, and each core keeps its bg_load.

Unlike ``test_properties.py`` (which probes Algorithm 1 on homogeneous
per-core arrays), the views here are adversarial: shared chare-array
names across cores, zero-cost tasks, all-background cores, and empty
cores — the shapes a production LB database actually produces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GreedyLB, RefineLB, RefineVMInterferenceLB
from repro.core.database import (
    CoreLoad,
    LBView,
    TaskRecord,
    validate_migrations,
)

task_times = st.one_of(
    st.just(0.0),  # zero-cost tasks must never be migrated by refinement
    st.floats(min_value=1e-6, max_value=25.0, allow_nan=False),
)
bg_loads = st.one_of(
    st.just(0.0), st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
)
epsilons = st.floats(min_value=0.01, max_value=0.75, allow_nan=False)


@st.composite
def lb_views(draw):
    """Randomized LB database snapshots with adversarial structure."""
    n_cores = draw(st.integers(min_value=1, max_value=10))
    n_tasks = draw(st.integers(min_value=0, max_value=24))
    # one shared chare array, tasks scattered arbitrarily over the cores
    placement = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_cores - 1),
            min_size=n_tasks,
            max_size=n_tasks,
        )
    )
    times = draw(
        st.lists(task_times, min_size=n_tasks, max_size=n_tasks)
    )
    per_core = {cid: [] for cid in range(n_cores)}
    for i, (cid, t) in enumerate(zip(placement, times)):
        per_core[cid].append(
            TaskRecord(chare=("work", i), cpu_time=t, state_bytes=128.0)
        )
    cores = tuple(
        CoreLoad(
            core_id=cid,
            tasks=tuple(per_core[cid]),
            bg_load=draw(bg_loads),
        )
        for cid in range(n_cores)
    )
    return LBView(cores=cores, window=50.0)


def apply_migrations(view, migrations):
    """mapping + per-core (task_load, bg_load) after the decision."""
    mapping = view.task_map()
    times = {t.chare: t.cpu_time for c in view.cores for t in c.tasks}
    task_load = {c.core_id: c.task_time for c in view.cores}
    bg = {c.core_id: c.bg_load for c in view.cores}
    for m in migrations:
        mapping[m.chare] = m.dst
        task_load[m.src] -= times[m.chare]
        task_load[m.dst] += times[m.chare]
    return mapping, task_load, bg


# ---------------------------------------------------------------------------
# 1. receiver overload (Eq. 3)
# ---------------------------------------------------------------------------


@given(lb_views(), epsilons)
@settings(max_examples=300, deadline=None)
def test_aware_refiner_never_overloads_a_receiver(view, eps):
    lb = RefineVMInterferenceLB(eps)
    migrations = lb.decide(view)
    _, task_load, bg = apply_migrations(view, migrations)
    t_avg = view.t_avg  # Eq. (1): includes O_p
    for cid in {m.dst for m in migrations}:
        assert task_load[cid] + bg[cid] <= t_avg + eps * t_avg + 1e-9


@given(lb_views(), epsilons)
@settings(max_examples=300, deadline=None)
def test_oblivious_refiner_never_overloads_under_its_own_model(view, eps):
    """RefineLB ignores O_p, so Eq. 3 holds w.r.t. the task-only average."""
    lb = RefineLB(eps)
    migrations = lb.decide(view)
    _, task_load, _ = apply_migrations(view, migrations)
    n = len(view.cores)
    t_avg = sum(c.task_time for c in view.cores) / n
    for cid in {m.dst for m in migrations}:
        assert task_load[cid] <= t_avg + eps * t_avg + 1e-9


@given(lb_views(), epsilons)
@settings(max_examples=200, deadline=None)
def test_aware_refiner_with_absolute_epsilon_respects_bound(view, eps):
    lb = RefineVMInterferenceLB(eps, absolute_epsilon=True)
    migrations = lb.decide(view)
    _, task_load, bg = apply_migrations(view, migrations)
    t_avg = view.t_avg
    for cid in {m.dst for m in migrations}:
        assert task_load[cid] + bg[cid] <= t_avg + eps + 1e-9


# ---------------------------------------------------------------------------
# 2. conservation
# ---------------------------------------------------------------------------


@given(lb_views(), epsilons, st.sampled_from(["refine-vm", "refine", "greedy", "greedy-aware"]))
@settings(max_examples=300, deadline=None)
def test_no_chare_is_lost_or_duplicated(view, eps, which):
    lb = {
        "refine-vm": lambda: RefineVMInterferenceLB(eps),
        "refine": lambda: RefineLB(eps),
        "greedy": lambda: GreedyLB(),
        "greedy-aware": lambda: GreedyLB(aware=True),
    }[which]()
    migrations = lb.decide(view)
    validate_migrations(view, migrations)  # src correct, no double moves
    mapping, task_load, bg = apply_migrations(view, migrations)
    before = {t.chare for c in view.cores for t in c.tasks}
    assert set(mapping) == before
    valid_cores = {c.core_id for c in view.cores}
    assert set(mapping.values()) <= valid_cores
    total_before = sum(c.total_load for c in view.cores)
    total_after = sum(task_load.values()) + sum(bg.values())
    assert abs(total_before - total_after) < 1e-6


# ---------------------------------------------------------------------------
# 3. non-migratable work stays put
# ---------------------------------------------------------------------------


@given(lb_views(), epsilons)
@settings(max_examples=300, deadline=None)
def test_background_load_is_never_migrated(view, eps):
    """O_p belongs to another tenant: every migration names a real chare
    and each core's bg_load is untouched by the decision."""
    chares = {t.chare for c in view.cores for t in c.tasks}
    for lb in (RefineVMInterferenceLB(eps), RefineLB(eps), GreedyLB(aware=True)):
        migrations = lb.decide(view)
        assert all(m.chare in chares for m in migrations)
        _, _, bg = apply_migrations(view, migrations)
        assert bg == {c.core_id: c.bg_load for c in view.cores}


@given(lb_views(), epsilons)
@settings(max_examples=200, deadline=None)
def test_refiners_never_move_zero_cost_tasks(view, eps):
    """Moving a zero-cost task cannot reduce imbalance — only churn."""
    zero = {
        t.chare for c in view.cores for t in c.tasks if t.cpu_time == 0.0
    }
    for lb in (RefineVMInterferenceLB(eps), RefineLB(eps)):
        for m in lb.decide(view):
            assert m.chare not in zero


@given(st.integers(min_value=1, max_value=8), bg_loads, epsilons)
@settings(max_examples=100, deadline=None)
def test_pure_background_views_produce_no_migrations(n_cores, bg, eps):
    """With no application tasks there is nothing migratable at all."""
    view = LBView(
        cores=tuple(
            CoreLoad(core_id=cid, tasks=(), bg_load=bg * (cid + 1))
            for cid in range(n_cores)
        ),
        window=10.0,
    )
    for lb in (RefineVMInterferenceLB(eps), RefineLB(eps), GreedyLB(aware=True)):
        assert lb.decide(view) == []


# ---------------------------------------------------------------------------
# determinism (the sweep engine relies on it)
# ---------------------------------------------------------------------------


@given(lb_views(), epsilons)
@settings(max_examples=150, deadline=None)
def test_fresh_instances_decide_identically(view, eps):
    """Balancer decisions depend only on the view — never on instance
    history — so sweep workers can build them independently."""
    assert RefineVMInterferenceLB(eps).decide(view) == RefineVMInterferenceLB(eps).decide(view)
    assert RefineLB(eps).decide(view) == RefineLB(eps).decide(view)
    assert GreedyLB().decide(view) == GreedyLB().decide(view)

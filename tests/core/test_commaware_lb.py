"""Unit tests for the communication-aware refinement strategy."""

import pytest

from repro.core import CommAwareRefineLB, CoreLoad, LBView, RefineVMInterferenceLB, TaskRecord
from repro.core.database import validate_migrations


def make_view():
    """Core 0 overloaded with four equal tasks; cores 1 and 2 both light.

    Task ("a", 0) talks heavily to ("a", 9) which lives on core 2; a
    locality-blind balancer would send it to the least-loaded core 1.
    """
    cores = (
        CoreLoad(
            core_id=0,
            tasks=(
                TaskRecord(("a", 0), 2.0, comm=((("a", 9), 1e6),)),
                TaskRecord(("a", 1), 2.0),
                TaskRecord(("a", 2), 2.0),
                TaskRecord(("a", 3), 2.0),
            ),
        ),
        CoreLoad(core_id=1, tasks=(TaskRecord(("a", 5), 0.5),)),
        CoreLoad(
            core_id=2,
            tasks=(
                TaskRecord(("a", 9), 1.0, comm=((("a", 0), 1e6),)),
            ),
        ),
    )
    return LBView(cores=cores, window=20.0)


def test_prefers_receiver_with_affinity():
    view = make_view()
    migrations = CommAwareRefineLB(0.05).balance(view)
    validate_migrations(view, migrations)
    moved = {m.chare: m.dst for m in migrations}
    assert moved[("a", 0)] == 2  # lands next to its partner


def test_base_algorithm_prefers_least_loaded():
    view = make_view()
    migrations = RefineVMInterferenceLB(0.05).balance(view)
    moved = {m.chare: m.dst for m in migrations}
    assert moved[("a", 0)] == 1  # locality-blind: least-loaded first


def test_feasibility_still_respected():
    # partner core is too loaded to accept: affinity must not override Eq. 3
    cores = (
        CoreLoad(
            core_id=0,
            tasks=(TaskRecord(("a", 0), 2.0, comm=((("a", 9), 1e6),)),
                   TaskRecord(("a", 1), 2.0),
                   TaskRecord(("a", 2), 2.0),
                   TaskRecord(("a", 3), 2.0)),
        ),
        CoreLoad(core_id=1, tasks=()),
        CoreLoad(core_id=2, tasks=(TaskRecord(("a", 9), 5.0),)),
    )
    view = LBView(cores=cores, window=20.0)
    migrations = CommAwareRefineLB(0.05).balance(view)
    for m in migrations:
        assert m.dst != 2  # core 2 would become overloaded


def test_without_comm_data_matches_base():
    cores = (
        CoreLoad(
            core_id=0,
            tasks=tuple(TaskRecord(("a", i), 2.0) for i in range(4)),
        ),
        CoreLoad(core_id=1, tasks=()),
        CoreLoad(core_id=2, tasks=()),
    )
    view = LBView(cores=cores, window=10.0)
    assert CommAwareRefineLB(0.05).balance(view) == RefineVMInterferenceLB(0.05).balance(view)


def test_deterministic():
    view = make_view()
    lb = CommAwareRefineLB(0.05)
    assert lb.balance(view) == lb.balance(view)

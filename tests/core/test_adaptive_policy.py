"""Tests for the adaptive (imbalance-triggered) LB policy."""

import pytest

from repro.apps import SyntheticApp
from repro.cluster import Cluster, Interferer, NetworkModel
from repro.core import AdaptiveLBPolicy, LBPolicy, RefineVMInterferenceLB
from repro.sim import SimulationEngine


class TestPolicyLogic:
    def test_triggers_on_imbalance(self):
        pol = AdaptiveLBPolicy(
            period_iterations=100, imbalance_threshold=1.25, min_gap_iterations=1
        )
        assert pol.due(3, 50, imbalance=1.5, since_last_lb=3)
        assert not pol.due(3, 50, imbalance=1.1, since_last_lb=3)

    def test_min_gap_suppresses_bursts(self):
        pol = AdaptiveLBPolicy(period_iterations=100, min_gap_iterations=4)
        assert not pol.due(5, 50, imbalance=2.0, since_last_lb=2)
        assert pol.due(5, 50, imbalance=2.0, since_last_lb=4)

    def test_periodic_fallback_heartbeat(self):
        pol = AdaptiveLBPolicy(period_iterations=10, imbalance_threshold=5.0)
        assert pol.due(10, 50, imbalance=1.0, since_last_lb=10)
        assert not pol.due(9, 50, imbalance=1.0, since_last_lb=9)

    def test_never_after_final_iteration(self):
        pol = AdaptiveLBPolicy(period_iterations=5)
        assert not pol.due(20, 20, imbalance=3.0, since_last_lb=20)

    def test_skip_first_respected(self):
        pol = AdaptiveLBPolicy(period_iterations=5, skip_first=3)
        assert not pol.due(2, 50, imbalance=3.0, since_last_lb=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLBPolicy(imbalance_threshold=0.5)
        with pytest.raises(ValueError):
            AdaptiveLBPolicy(min_gap_iterations=0)

    def test_base_policy_ignores_imbalance(self):
        pol = LBPolicy(period_iterations=5)
        assert not pol.due(3, 50, imbalance=10.0, since_last_lb=3)


class TestRuntimeIntegration:
    def _run(self, policy, hog_at_iteration=10, iterations=40):
        eng = SimulationEngine()
        cl = Cluster(eng, num_nodes=1, cores_per_node=4)
        app = SyntheticApp([0.02] * 16, state_bytes=128.0)
        rt = app.instantiate(
            eng,
            cl,
            [0, 1, 2, 3],
            net=NetworkModel.zero(),
            balancer=RefineVMInterferenceLB(0.05),
            policy=policy,
        )
        hog = Interferer(eng, cl.core(0), start=None)
        rt.on_iteration(
            lambda r, it: hog.activate() if it == hog_at_iteration - 1 else None
        )
        rt.start(iterations)
        eng.run(until=1e6)
        return rt

    def test_imbalance_signal_tracks_interference(self):
        rt = self._run(LBPolicy(period_iterations=1000))  # effectively noLB
        # before the hog: balanced (each core 4 x 0.02)
        assert rt.iteration_imbalance[5] == pytest.approx(1.0, abs=0.05)
        # after: the interfered core's wall share doubles -> ratio ~1.6
        assert rt.iteration_imbalance[-2] > 1.4

    def test_adaptive_reacts_faster_than_slow_periodic(self):
        slow = self._run(
            LBPolicy(period_iterations=25, decision_overhead_s=0.0)
        )
        adaptive = self._run(
            AdaptiveLBPolicy(
                period_iterations=25,
                imbalance_threshold=1.25,
                min_gap_iterations=2,
                decision_overhead_s=0.0,
            )
        )
        assert adaptive.finished_at < slow.finished_at
        # and it reacted within a couple of iterations of the disturbance
        post_hog = adaptive.iteration_imbalance[10:16]
        assert min(post_hog) < 1.25  # balance restored quickly

    def test_adaptive_idles_when_balanced(self):
        rt = self._run(
            AdaptiveLBPolicy(
                period_iterations=15,
                imbalance_threshold=1.25,
                decision_overhead_s=0.0,
            ),
            hog_at_iteration=10_000,  # never
            iterations=30,
        )
        # only the heartbeat steps fire (after iterations 15 and 30->no)
        assert rt.lb_step_count <= 2

"""Unit tests for the noise-aware bench regression gate."""

import copy

import pytest

from repro.perf.bench import HIGHER, LOWER
from repro.perf.compare import (
    DEFAULT_IQR_FACTOR,
    DEFAULT_REL_THRESHOLD,
    compare_bench,
    format_compare_text,
)


def _metric(median, direction=HIGHER, iqr=0.0, unit="ops/s"):
    return {
        "suite": "micro", "unit": unit, "direction": direction,
        "repeats": 5, "warmup": 2, "median": median, "iqr": iqr,
        "mean": median, "p90": median, "samples": [median] * 5,
    }


def _bench(metrics, env=None):
    return {
        "schema": 1,
        "kind": "repro-bench",
        "env": env or {
            "implementation": "CPython", "platform": "linux", "machine": "x86_64",
        },
        "metrics": metrics,
    }


BASE = _bench({
    "engine.events_per_s": _metric(500_000.0),
    "macro.smoke_s": _metric(2.0, direction=LOWER, unit="s"),
})


class TestVerdicts:
    def test_unchanged_rerun_passes(self):
        report = compare_bench(BASE, copy.deepcopy(BASE))
        assert report.ok
        assert {d.verdict for d in report.deltas} == {"ok"}

    def test_2x_slowdown_regresses_for_both_directions(self):
        """The acceptance criterion: an injected 2x slowdown is flagged."""
        slow = copy.deepcopy(BASE)
        slow["metrics"]["engine.events_per_s"]["median"] = 250_000.0  # throughput halves
        slow["metrics"]["macro.smoke_s"]["median"] = 4.0  # wall time doubles
        report = compare_bench(BASE, slow)
        assert not report.ok
        assert sorted(d.name for d in report.regressions) == [
            "engine.events_per_s", "macro.smoke_s",
        ]
        for d in report.regressions:
            assert d.factor == pytest.approx(2.0)

    def test_improvement_is_reported_not_failed(self):
        fast = copy.deepcopy(BASE)
        fast["metrics"]["engine.events_per_s"]["median"] = 1_500_000.0
        report = compare_bench(BASE, fast)
        assert report.ok
        (delta,) = [d for d in report.deltas if d.name == "engine.events_per_s"]
        assert delta.verdict == "improved"
        assert delta.factor == pytest.approx(1 / 3)

    def test_change_within_the_relative_floor_is_ok(self):
        near = copy.deepcopy(BASE)
        near["metrics"]["engine.events_per_s"]["median"] = 450_000.0  # -10%
        assert compare_bench(BASE, near).ok

    def test_noisy_metric_widens_its_own_tolerance(self):
        """A 1.5x swing on a metric whose IQR is 15% of the median must
        not regress: tol = max(0.25, 4 * 0.15) = 0.6."""
        noisy_base = _bench({"m": _metric(100.0, iqr=15.0)})
        slower = _bench({"m": _metric(100.0 / 1.5)})
        report = compare_bench(noisy_base, slower)
        (delta,) = report.deltas
        assert delta.tolerance == pytest.approx(0.6)
        assert delta.verdict == "ok"
        # the same swing on a quiet metric does regress
        quiet_base = _bench({"m": _metric(100.0)})
        assert not compare_bench(quiet_base, slower).ok

    def test_added_and_removed_metrics_never_fail_the_gate(self):
        current = copy.deepcopy(BASE)
        del current["metrics"]["macro.smoke_s"]
        current["metrics"]["new.metric"] = _metric(1.0)
        report = compare_bench(BASE, current)
        assert report.ok
        verdicts = {d.name: d.verdict for d in report.deltas}
        assert verdicts["new.metric"] == "added"
        assert verdicts["macro.smoke_s"] == "removed"
        assert any("new.metric" in n for n in report.notes)

    def test_non_positive_medians_are_skipped_with_a_note(self):
        zero = _bench({"m": _metric(0.0)})
        report = compare_bench(zero, _bench({"m": _metric(5.0)}))
        assert report.ok
        assert any("non-positive" in n for n in report.notes)


class TestEnvironmentGuard:
    def test_machine_mismatch_refuses_to_compare(self):
        other = copy.deepcopy(BASE)
        other["env"]["machine"] = "arm64"
        with pytest.raises(ValueError, match="not comparable"):
            compare_bench(BASE, other)

    def test_mismatch_can_be_overridden_but_is_recorded(self):
        other = copy.deepcopy(BASE)
        other["env"]["machine"] = "arm64"
        report = compare_bench(BASE, other, allow_env_mismatch=True)
        assert report.env_mismatch == ("machine",)
        assert "environment mismatch" in format_compare_text(report)

    def test_missing_env_fields_are_not_a_mismatch(self):
        bare = copy.deepcopy(BASE)
        bare["env"] = {}
        assert compare_bench(BASE, bare).ok


class TestThresholds:
    def test_defaults_are_wired_through(self):
        report = compare_bench(BASE, copy.deepcopy(BASE))
        assert report.rel_threshold == DEFAULT_REL_THRESHOLD
        assert report.iqr_factor == DEFAULT_IQR_FACTOR

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ValueError, match="rel_threshold"):
            compare_bench(BASE, BASE, rel_threshold=-0.1)
        with pytest.raises(ValueError, match="iqr_factor"):
            compare_bench(BASE, BASE, iqr_factor=-1.0)

    def test_tighter_threshold_catches_smaller_slips(self):
        near = copy.deepcopy(BASE)
        near["metrics"]["engine.events_per_s"]["median"] = 450_000.0  # -10%
        assert not compare_bench(BASE, near, rel_threshold=0.05).ok


class TestReporting:
    def test_to_dict_is_json_shaped(self):
        slow = copy.deepcopy(BASE)
        slow["metrics"]["macro.smoke_s"]["median"] = 4.0
        d = compare_bench(BASE, slow).to_dict()
        assert d["ok"] is False
        assert d["regressions"] == ["macro.smoke_s"]
        assert {m["name"] for m in d["metrics"]} == set(BASE["metrics"])

    def test_text_verdict_lines(self):
        assert "PASS" in format_compare_text(compare_bench(BASE, BASE))
        slow = copy.deepcopy(BASE)
        slow["metrics"]["macro.smoke_s"]["median"] = 4.0
        text = format_compare_text(compare_bench(BASE, slow))
        assert "FAIL" in text and "REGRESSION" in text

"""Unit tests for the ``repro bench`` harness and its persistence."""

import json

import pytest

import repro.perf.bench as bench_mod
from repro.perf.bench import (
    BENCH_SCHEMA,
    HIGHER,
    LOWER,
    SUITES,
    Benchmark,
    bench_filename,
    default_benchmarks,
    environment_fingerprint,
    format_bench_text,
    load_bench,
    run_bench,
    save_bench,
)


def _fake_suite(calls):
    """Two deterministic benchmarks that log every invocation."""

    def micro():
        calls.append("micro")
        return 100.0 + 10.0 * (calls.count("micro") % 3)

    def macro():
        calls.append("macro")
        return 2.0

    return [
        Benchmark("fake.micro", "micro", "ops/s", HIGHER, micro),
        Benchmark("fake.macro", "macro", "s", LOWER, macro,
                  max_repeats=2, max_warmup=1),
    ]


@pytest.fixture
def fake_suite(monkeypatch):
    calls = []
    monkeypatch.setattr(
        bench_mod, "default_benchmarks", lambda: _fake_suite(calls)
    )
    return calls


class TestRunBench:
    def test_result_layout_and_metric_statistics(self, fake_suite):
        result = run_bench(repeats=4, warmup=2)
        assert result["schema"] == BENCH_SCHEMA
        assert result["kind"] == "repro-bench"
        assert result["config"] == {
            "suites": sorted(SUITES), "repeats": 4, "warmup": 2, "filter": None,
        }
        m = result["metrics"]["fake.micro"]
        assert m["suite"] == "micro" and m["direction"] == HIGHER
        assert m["repeats"] == 4 and m["warmup"] == 2
        assert len(m["samples"]) == 4
        assert min(m["samples"]) <= m["median"] <= max(m["samples"])
        assert m["iqr"] >= 0.0
        assert m["p90"] <= max(m["samples"])

    def test_warmup_iterations_are_discarded(self, fake_suite):
        run_bench(suites=("micro",), repeats=2, warmup=3)
        assert fake_suite.count("micro") == 5  # 3 warmup + 2 measured

    def test_macro_caps_clamp_global_settings(self, fake_suite):
        result = run_bench(repeats=10, warmup=5)
        m = result["metrics"]["fake.macro"]
        assert m["repeats"] == 2 and m["warmup"] == 1
        assert fake_suite.count("macro") == 3
        # micro metrics keep the requested settings
        assert result["metrics"]["fake.micro"]["repeats"] == 10

    def test_suite_and_name_filters(self, fake_suite):
        assert list(run_bench(suites=("macro",))["metrics"]) == ["fake.macro"]
        assert list(run_bench(name_filter="micro")["metrics"]) == ["fake.micro"]

    def test_progress_callback_fires_per_metric(self, fake_suite):
        seen = []
        run_bench(repeats=1, warmup=0,
                  progress=lambda name, i, n: seen.append((name, i, n)))
        assert seen == [("fake.micro", 0, 2), ("fake.macro", 1, 2)]

    def test_validation_errors(self, fake_suite):
        with pytest.raises(ValueError, match="repeats"):
            run_bench(repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            run_bench(warmup=-1)
        with pytest.raises(ValueError, match="unknown suite"):
            run_bench(suites=("nano",))
        with pytest.raises(ValueError, match="no benchmarks match"):
            run_bench(name_filter="no-such-metric")


class TestRealSuite:
    def test_curated_suite_shape(self):
        benches = default_benchmarks()
        assert len(benches) >= 6
        assert {b.suite for b in benches} == set(SUITES)
        assert len({b.name for b in benches}) == len(benches)
        for b in benches:
            assert b.direction in (HIGHER, LOWER)
        # macros are always capped so --repeats 20 stays affordable
        for b in benches:
            if b.suite == "macro":
                assert b.max_repeats is not None

    def test_one_real_micro_metric_end_to_end(self):
        result = run_bench(
            suites=("micro",), repeats=1, warmup=0,
            name_filter="net.message_time",
        )
        m = result["metrics"]["net.message_time_per_s"]
        assert m["median"] > 0.0
        assert m["median"] == m["samples"][0]


class TestEnvironmentFingerprint:
    def test_required_fields(self):
        env = environment_fingerprint()
        for key in ("repro_version", "python", "implementation", "platform",
                    "machine", "cpu_count", "git_sha", "code_fingerprint"):
            assert env[key], key
        assert len(env["code_fingerprint"]) == 16

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafef00d")
        assert environment_fingerprint()["git_sha"] == "cafef00d"


class TestPersistence:
    def _result(self, fake_suite):
        return run_bench(repeats=2, warmup=0)

    def test_filename_embeds_the_git_sha(self, fake_suite, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "abc1234")
        assert bench_filename(self._result(fake_suite)) == "BENCH_abc1234.json"
        assert bench_filename({}) == "BENCH_unknown.json"

    def test_save_load_round_trip(self, fake_suite, tmp_path):
        result = self._result(fake_suite)
        path = save_bench(result, tmp_path / "traj" / "BENCH_x.json")
        assert path.exists()
        assert list(path.parent.glob("*.tmp")) == []
        assert load_bench(path) == json.loads(json.dumps(result))

    def test_load_rejects_foreign_and_versioned_files(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a repro bench"):
            load_bench(p)
        p.write_text(json.dumps(
            {"kind": "repro-bench", "schema": 999, "metrics": {}}
        ))
        with pytest.raises(ValueError, match="schema"):
            load_bench(p)
        p.write_text(json.dumps({"kind": "repro-bench", "schema": BENCH_SCHEMA}))
        with pytest.raises(ValueError, match="no metrics"):
            load_bench(p)

    def test_text_report_lists_every_metric(self, fake_suite):
        result = self._result(fake_suite)
        text = format_bench_text(result)
        assert "fake.micro" in text and "fake.macro" in text
        assert "2 metrics" in text

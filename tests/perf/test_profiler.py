"""Unit tests for the phase profiler and its zero-overhead null path."""

import json
import tracemalloc

from repro.perf.profiler import (
    NULL_PROFILER,
    PROFILE_SCHEMA,
    PhaseProfiler,
    _NULL_PHASE,
    active,
    install,
    phase_trace_events,
    profiled,
)


class TestPhaseTiming:
    def test_phase_records_count_and_span_statistics(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("work"):
                pass
        snap = prof.snapshot()["phases"]["work"]
        assert snap["count"] == 3
        assert snap["total_s"] >= 0.0
        assert 0.0 <= snap["min_s"] <= snap["max_s"]
        assert snap["mean_s"] * 3 == snap["total_s"]

    def test_phase_objects_are_memoised_by_name(self):
        prof = PhaseProfiler()
        assert prof.phase("a") is prof.phase("a")
        assert prof.phase("a") is not prof.phase("b")

    def test_nested_reentry_of_the_same_phase_counts_both_spans(self):
        """The start-time stack keeps recursive entries correct."""
        prof = PhaseProfiler()
        with prof.phase("lb.decide"):
            with prof.phase("lb.decide"):
                pass
        snap = prof.snapshot()["phases"]["lb.decide"]
        assert snap["count"] == 2
        # the outer span encloses the inner one
        assert snap["max_s"] >= snap["min_s"]
        assert snap["total_s"] >= snap["max_s"]

    def test_unentered_phase_is_absent_from_snapshot(self):
        prof = PhaseProfiler()
        prof.phase("never")
        assert prof.snapshot()["phases"] == {}

    def test_snapshot_is_sorted(self):
        prof = PhaseProfiler()
        with prof.phase("z"):
            pass
        with prof.phase("a"):
            pass
        assert list(prof.snapshot()["phases"]) == ["a", "z"]


class TestTallies:
    def test_tally_accumulates_count_and_amount(self):
        prof = PhaseProfiler()
        prof.tally("net.message_time", 1024.0)
        prof.tally("net.message_time", 512.0)
        t = prof.snapshot()["tallies"]["net.message_time"]
        assert t == {"count": 2.0, "total": 1536.0}

    def test_tally_defaults_to_one(self):
        prof = PhaseProfiler()
        prof.tally("events")
        assert prof.snapshot()["tallies"]["events"]["total"] == 1.0


class TestDisabledPath:
    def test_disabled_profiler_hands_out_the_shared_null_phase(self):
        prof = PhaseProfiler(enabled=False)
        assert prof.phase("x") is _NULL_PHASE
        assert prof.phase("y") is _NULL_PHASE
        assert NULL_PROFILER.phase("anything") is _NULL_PHASE

    def test_disabled_profiler_records_nothing(self):
        prof = PhaseProfiler(enabled=False)
        with prof.phase("x"):
            pass
        prof.tally("t", 5.0)
        assert prof.snapshot() == {"phases": {}, "tallies": {}}

    def test_null_path_allocates_nothing_per_scope(self):
        """The acceptance criterion's mechanism: a disabled profiler costs
        one method call and zero allocation per instrumented scope."""
        prof = PhaseProfiler(enabled=False)
        with prof.phase("warm"):  # warm the lookup path
            pass
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(1000):
                with prof.phase("warm"):
                    pass
                prof.tally("warm", 1.0)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 512


class TestInstall:
    def test_default_active_profiler_is_the_null_singleton(self):
        assert active() is NULL_PROFILER

    def test_install_and_reset(self):
        prof = PhaseProfiler()
        try:
            assert install(prof) is prof
            assert active() is prof
        finally:
            install(None)
        assert active() is NULL_PROFILER

    def test_profiled_installs_for_the_dynamic_extent_only(self):
        with profiled() as prof:
            assert active() is prof
            assert prof.enabled
        assert active() is NULL_PROFILER

    def test_profiled_restores_previous_profiler_on_exception(self):
        outer = PhaseProfiler()
        with profiled(outer):
            try:
                with profiled() as inner:
                    assert active() is inner
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert active() is outer
        assert active() is NULL_PROFILER


class TestExport:
    def test_export_is_schema_versioned_and_json_safe(self):
        with profiled() as prof:
            with prof.phase("p"):
                pass
        out = prof.export()
        assert out["schema"] == PROFILE_SCHEMA
        assert json.loads(json.dumps(out)) == out

    def test_intervals_recorded_only_on_request(self):
        plain = PhaseProfiler()
        with plain.phase("p"):
            pass
        assert plain.export()["intervals"] == []

        recording = PhaseProfiler(record_intervals=True)
        with recording.phase("p"):
            pass
        (interval,) = recording.export()["intervals"]
        name, start, end = interval
        assert name == "p"
        # rebased to the profiler's construction epoch
        assert 0.0 <= start <= end < 60.0


class TestTraceEvents:
    def _recorded(self):
        prof = PhaseProfiler(record_intervals=True)
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        return prof

    def test_metadata_names_the_profiler_lane(self):
        events = phase_trace_events(self._recorded())
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert all(e["pid"] == 99 for e in meta)

    def test_one_complete_event_per_interval_in_microseconds(self):
        prof = self._recorded()
        events = phase_trace_events(prof, pid=7)
        spans = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["inner", "outer"]
        for e, (name, start, end) in zip(spans, prof.export()["intervals"]):
            assert e["pid"] == 7
            assert e["ts"] == start * 1e6
            assert e["dur"] == (end - start) * 1e6

    def test_accepts_an_exported_dict(self):
        prof = self._recorded()
        assert phase_trace_events(prof.export()) == phase_trace_events(prof)


class TestInstrumentedHotPaths:
    def test_engine_run_is_timed_once_per_run_not_per_event(self):
        """The <2% disabled-overhead budget holds because the engine pays
        one phase entry per run() call, never per event."""
        from repro.sim import SimulationEngine

        eng = SimulationEngine()
        fired = [0]

        def tick():
            fired[0] += 1
            if fired[0] < 100:
                eng.schedule_after(0.001, tick)

        eng.schedule_after(0.001, tick)
        with profiled() as prof:
            eng.run()
        snap = prof.snapshot()["phases"]
        assert fired[0] == 100
        assert snap["engine.run"]["count"] == 1

    def test_balancer_decide_and_netmodel_tallies_are_profiled(self):
        from repro.cluster import NetworkModel
        from repro.core import CoreLoad, GreedyLB, LBView, TaskRecord

        view = LBView(
            cores=(
                CoreLoad(0, (TaskRecord(("a", 0), 0.4, 100.0),), 0.2),
                CoreLoad(1, (), 0.0),
            ),
            window=1.0,
        )
        net = NetworkModel.virtualized()
        with profiled() as prof:
            GreedyLB(aware=True).balance(view)
            net.message_time(2048.0)
        snap = prof.snapshot()
        assert snap["phases"]["lb.decide"]["count"] == 1
        assert snap["phases"]["lb.greedy.sort"]["count"] == 1
        assert snap["tallies"]["net.message_time"] == {
            "count": 1.0,
            "total": 2048.0,
        }

    def test_unprofiled_runs_stay_silent(self):
        """Without an installed profiler nothing observes the run."""
        from repro.sim import SimulationEngine

        eng = SimulationEngine()
        eng.schedule_after(0.001, lambda: None)
        eng.run()  # must not raise, and NULL_PROFILER stays empty
        assert NULL_PROFILER.snapshot() == {"phases": {}, "tallies": {}}

import pytest


@pytest.fixture(autouse=True)
def _isolated_registry(tmp_path, monkeypatch):
    """Point the run registry at a per-test directory.

    ``repro sweep``/``repro bench`` register completed runs by default
    (under ``results/registry`` in the cwd), so every test gets an
    isolated registry to keep CLI tests from writing into the repo.
    """
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "_registry"))

"""Unit tests for the power meter."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.power import PowerMeter, PowerModel
from repro.sim import SimProcess, SimulationEngine


def test_idle_cluster_draws_base_power():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=2, cores_per_node=4)
    meter = PowerMeter(cl)
    eng.run(until=10.0)
    reading = meter.reading()
    assert reading.energy_j == pytest.approx(2 * 40.0 * 10.0)
    assert reading.average_power_w == pytest.approx(80.0)


def test_busy_core_adds_dynamic_power():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    meter = PowerMeter(cl)
    cl.core(0).dispatch(SimProcess("w", 10.0))
    eng.run(until=10.0)
    reading = meter.reading()
    assert reading.busy_core_seconds == pytest.approx(10.0)
    assert reading.average_power_w == pytest.approx(40.0 + 32.5)


def test_window_subtraction():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    meter = PowerMeter(cl)
    eng.run(until=5.0)
    mark = meter.reading()
    cl.core(0).dispatch(SimProcess("w", 5.0))
    eng.run(until=10.0)
    window = meter.reading() - mark
    assert window.time == pytest.approx(5.0)
    assert window.average_power_w == pytest.approx(72.5)


def test_subtracting_newer_reading_raises():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    meter = PowerMeter(cl)
    a = meter.reading()
    eng.run(until=1.0)
    b = meter.reading()
    with pytest.raises(ValueError):
        a - b


def test_metering_node_subset():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=4, cores_per_node=4)
    meter = PowerMeter(cl, nodes=cl.nodes[:1])
    eng.run(until=10.0)
    assert meter.reading().average_power_w == pytest.approx(40.0)


def test_mismatched_model_shape_rejected():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    with pytest.raises(ValueError):
        PowerMeter(cl, model=PowerModel(cores_per_node=8))


def test_power_series_reconstruction():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2, record_intervals=True)
    meter = PowerMeter(cl, model=PowerModel(cores_per_node=2))
    cl.core(0).dispatch(SimProcess("w", 2.0))
    eng.run(until=4.0)
    cl.finalize_intervals()
    series = meter.power_series(t_end=4.0, dt=1.0)
    dyn = PowerModel(cores_per_node=2).dynamic_per_core_w
    assert series.shape == (4,)
    assert series[0] == pytest.approx(40.0 + dyn)
    assert series[1] == pytest.approx(40.0 + dyn)
    assert series[2] == pytest.approx(40.0)
    assert series[3] == pytest.approx(40.0)


def test_power_series_requires_recording():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    meter = PowerMeter(cl, model=PowerModel(cores_per_node=2))
    eng.run(until=1.0)
    with pytest.raises(RuntimeError):
        meter.power_series(t_end=1.0)


def test_series_energy_matches_exact_integral():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4, record_intervals=True)
    meter = PowerMeter(cl)
    cl.core(0).dispatch(SimProcess("a", 3.3))
    cl.core(2).dispatch(SimProcess("b", 1.7))
    eng.run(until=5.0)
    cl.finalize_intervals()
    series = meter.power_series(t_end=5.0, dt=0.5)
    series_energy = float(np.sum(series) * 0.5)
    assert series_energy == pytest.approx(meter.reading().energy_j, rel=1e-9)

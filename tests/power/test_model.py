"""Unit tests for the power model (paper testbed numbers)."""

import pytest

from repro.power import PowerModel


def test_paper_defaults():
    pm = PowerModel()
    assert pm.base_w == 40.0
    assert pm.peak_w == 170.0
    assert pm.dynamic_per_core_w == pytest.approx(32.5)


def test_node_power_endpoints():
    pm = PowerModel()
    assert pm.node_power(0) == pytest.approx(40.0)
    assert pm.node_power(4) == pytest.approx(170.0)
    assert pm.node_power(2) == pytest.approx(105.0)


def test_node_power_range_check():
    pm = PowerModel()
    with pytest.raises(ValueError):
        pm.node_power(5)
    with pytest.raises(ValueError):
        pm.node_power(-1)


def test_energy_idle_only_base():
    pm = PowerModel()
    assert pm.energy(10.0, 0.0, nodes=2) == pytest.approx(800.0)


def test_energy_full_load():
    pm = PowerModel()
    # 1 node, 10 s, all 4 cores busy the whole time
    assert pm.energy(10.0, 40.0, nodes=1) == pytest.approx(1700.0)


def test_energy_rejects_impossible_busy_time():
    pm = PowerModel()
    with pytest.raises(ValueError):
        pm.energy(1.0, 10.0, nodes=1)


def test_peak_below_base_rejected():
    with pytest.raises(ValueError):
        PowerModel(base_w=100.0, peak_w=50.0)

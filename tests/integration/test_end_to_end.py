"""End-to-end integration tests across all subsystems.

These exercise whole scenarios (runtime + cluster + balancer + power +
tracing together) and check cross-cutting invariants rather than module
behaviour:

* instrumentation honesty — the Eq. (2) background load the balancer
  sees equals the interferer's ground-truth CPU consumption;
* conservation — task CPU equals the work model's total, energy equals
  the exact counter integral;
* determinism — identical scenarios give bit-identical results;
* consistency — traces, mappings and statistics agree with each other.
"""

import pytest

from repro.apps import Jacobi2D, SyntheticApp, Wave2D
from repro.cluster import Cluster, Interferer, NetworkModel
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.experiments import BackgroundSpec, Scenario, run_scenario
from repro.power import PowerMeter, PowerModel
from repro.sim import SimulationEngine


def test_instrumented_bg_load_matches_ground_truth():
    """What Eq. (2) reports must equal what the interferer really used."""
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    app = SyntheticApp([0.05] * 8)
    rt = app.instantiate(eng, cl, [0, 1], net=NetworkModel.zero())
    hog = Interferer(eng, cl.core(1), start=0.0)
    rt.start(iterations=4)
    eng.run(until=rt.finished_at or 100.0)
    # run to app completion only
    while not rt.done:
        eng.step()
    view = rt.db.build_view(rt.mapping)
    truth = hog.cpu_consumed
    assert view.core(1).bg_load == pytest.approx(truth, rel=1e-6)
    assert view.core(0).bg_load == pytest.approx(0.0, abs=1e-9)


def test_total_task_cpu_matches_work_model():
    app = SyntheticApp([0.01 * (i + 1) for i in range(8)])
    res = run_scenario(
        Scenario(app=app, num_cores=4, iterations=5, net=NetworkModel.zero())
    )
    expected = 5 * sum(0.01 * (i + 1) for i in range(8))
    assert res.app.total_task_cpu_s == pytest.approx(expected)


def test_energy_equals_exact_counter_integral():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=2, cores_per_node=4)
    app = Jacobi2D(grid_size=512, jitter_amp=0.0)
    rt = app.instantiate(eng, cl, list(range(8)), net=NetworkModel.zero())
    bg = Wave2D.background(grid_size=128).instantiate(
        eng, cl, [0, 1], name="bg"
    )
    rt.start(iterations=10)
    bg.start(iterations=50)
    eng.run()
    meter = PowerMeter(cl, PowerModel())
    reading = meter.reading()
    cl.sync_all()
    busy = sum(c.busy_time for c in cl.cores)
    expected = 2 * 40.0 * eng.now + 32.5 * busy
    assert reading.energy_j == pytest.approx(expected, rel=1e-9)


def test_end_to_end_determinism():
    def run_once():
        app = Jacobi2D(grid_size=1024)
        res = run_scenario(
            Scenario(
                app=app,
                num_cores=8,
                iterations=30,
                balancer=RefineVMInterferenceLB(0.05),
                policy=LBPolicy(period_iterations=5),
                bg=BackgroundSpec(
                    model=Wave2D.background(grid_size=512),
                    core_ids=(0, 1),
                    iterations=100,
                ),
                tracing=True,
            )
        )
        return (
            res.app_time,
            res.bg_time,
            res.energy.energy_j,
            res.app.total_migrations,
            tuple(sorted(res.final_mapping.items())),
        )

    assert run_once() == run_once()


def test_trace_agrees_with_statistics():
    app = SyntheticApp([0.02] * 12, state_bytes=128.0)
    res = run_scenario(
        Scenario(
            app=app,
            num_cores=4,
            iterations=8,
            net=NetworkModel.zero(),
            balancer=RefineVMInterferenceLB(0.05),
            policy=LBPolicy(period_iterations=3, decision_overhead_s=0.0),
            bg=BackgroundSpec(
                model=SyntheticApp([0.02, 0.02]), core_ids=(0, 1), iterations=60
            ),
            tracing=True,
        )
    )
    assert len(res.trace.iterations) == 8
    assert len(res.trace.tasks) == 8 * 12
    assert res.trace.total_migrations() == res.app.total_migrations
    assert len(res.trace.lb_steps) == res.app.lb_steps
    # every chare maps to a core inside the job
    assert set(res.final_mapping.values()) <= set(range(4))
    # per-iteration trace spans tile the run without overlap
    spans = sorted(
        (e.start, e.end) for e in res.trace.iterations
    )
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2 + 1e-12


def test_app_and_bg_both_complete_with_lb_churn():
    """A long mixed run: LB on, bg weight 4, migrations mid-flight."""
    res = run_scenario(
        Scenario(
            app=Jacobi2D(grid_size=1024),
            num_cores=8,
            iterations=50,
            balancer=RefineVMInterferenceLB(0.05),
            policy=LBPolicy(period_iterations=5),
            bg=BackgroundSpec(
                model=Wave2D.background(grid_size=512),
                core_ids=(0, 1),
                iterations=300,
                weight=4.0,
            ),
        )
    )
    assert res.app.iterations == 50
    assert res.bg is not None and res.bg.iterations == 300
    assert res.app.total_migrations > 0
    assert res.app_time > 0 and res.bg_time > 0


def test_chare_lifetime_statistics_are_consistent():
    app = SyntheticApp([0.01] * 8, state_bytes=64.0)
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    rt = app.instantiate(
        eng,
        cl,
        [0, 1, 2, 3],
        net=NetworkModel.zero(),
        balancer=RefineVMInterferenceLB(0.05),
        policy=LBPolicy(period_iterations=2, decision_overhead_s=0.0),
    )
    Interferer(eng, cl.core(0), start=0.0, end=0.5)
    rt.start(iterations=10)
    eng.run(until=1e5)
    assert rt.done
    for chare in rt.chares.values():
        assert chare.executions == 10
        assert chare.total_cpu_time == pytest.approx(0.1)
        assert chare.current_core == rt.mapping[chare.key]
    assert sum(c.migrations for c in rt.chares.values()) == rt.migration_count

"""Bit-exact parity between the event engine and the fast-path backend.

The fast path (:mod:`repro.sim.fastpath`) is only allowed to exist
because it is *indistinguishable* from the event engine on every result
field — iteration times, migrations, migration costs, task CPU, energy,
final mapping, audit records. These tests enforce that with exact
``==`` comparisons (no tolerances): any float that differs in its last
bit is a bug in the fast path, not an accuracy trade-off.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_scenario
from repro.experiments.sweep import build_scenario, run_point, run_sweep
from repro.experiments.sweep_presets import smoke_spec
from repro.obs.ledger import TimeLedger
from repro.obs.lineage import LineageRecorder
from repro.sim.fastpath import FastpathUnsupported, fastpath_unsupported_reason
from repro.telemetry import Telemetry


def _run_both(params, telemetry=False):
    """Run one param dict on both backends; return the two results."""
    tel_e = Telemetry() if telemetry else None
    tel_f = Telemetry() if telemetry else None
    res_e = run_scenario(build_scenario(params), backend="events", telemetry=tel_e)
    res_f = run_scenario(build_scenario(params), backend="fast", telemetry=tel_f)
    return res_e, res_f, tel_e, tel_f


def _run_both_ledgered(params):
    """Run one param dict on both backends with a ledger attached each."""
    scenario = build_scenario(params)
    led_e = TimeLedger(job="app", core_ids=scenario.app_core_ids)
    led_f = TimeLedger(job="app", core_ids=scenario.app_core_ids)
    res_e = run_scenario(build_scenario(params), backend="events", ledger=led_e)
    res_f = run_scenario(build_scenario(params), backend="fast", ledger=led_f)
    return res_e, res_f, led_e, led_f


def _assert_ledgers_identical(led_e, led_f):
    """Exact (Fraction-level and summary-level) ledger equality."""
    assert led_e.totals_exact() == led_f.totals_exact()
    assert led_e.busy_exact() == led_f.busy_exact()
    assert led_e.summary() == led_f.summary()


def _run_both_lineaged(params):
    """Run one param dict on both backends, each with telemetry + a
    lineage recorder; return results and audit-joined payloads."""
    results, payloads = [], []
    for backend in ("events", "fast"):
        scenario = build_scenario(params)
        telemetry = Telemetry()
        lineage = LineageRecorder(job="app", core_ids=scenario.app_core_ids)
        res = run_scenario(
            scenario, backend=backend, telemetry=telemetry, lineage=lineage
        )
        results.append(res)
        payloads.append(lineage.payload(audit=telemetry.audit.records))
    return results[0], results[1], payloads[0], payloads[1]


def _assert_results_identical(res_e, res_f):
    """Field-by-field exact equality of two ExperimentResults."""
    assert res_e.app == res_f.app  # RunStats incl. iteration_times tuple
    assert res_e.bg == res_f.bg
    assert res_e.energy == res_f.energy
    assert res_e.final_mapping == res_f.final_mapping
    assert res_e.app_time == res_f.app_time
    assert res_e.bg_time == res_f.bg_time


class TestPresetParity:
    @pytest.mark.parametrize(
        "point", smoke_spec().expand(), ids=lambda p: p.label
    )
    def test_smoke_points_bit_identical(self, point):
        res_e, res_f, _, _ = _run_both(point.params)
        _assert_results_identical(res_e, res_f)

    @pytest.mark.parametrize("balancer", ["none", "refine", "greedy", "greedy-aware"])
    def test_other_balancers(self, balancer):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": balancer,
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    @pytest.mark.parametrize("app", ["wave2d", "mol3d"])
    def test_other_apps(self, app):
        params = {
            "app": app,
            "scale": 0.05,
            "iterations": 6,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    def test_more_chares_than_fit_one_core_each(self):
        # tiny app on many cores: some cores get no chares at all
        params = {
            "app": "jacobi2d",
            "scale": 0.02,
            "iterations": 5,
            "cores": 8,
            "bg": False,
            "balancer": "refine-vm",
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    def test_bg_weight_override(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "bg_weight": 0.5,
            "balancer": "refine-vm",
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    def test_point_and_sweep_summaries_match(self):
        spec = smoke_spec()
        for p in spec.expand():
            assert run_point(p.params, backend="events") == run_point(
                p.params, backend="fast"
            )
        se = run_sweep(spec, workers=1, cache=None, backend="events")
        sf = run_sweep(spec, workers=1, cache=None, backend="fast")
        sa = run_sweep(spec, workers=1, cache=None, backend="auto")
        assert se.summaries() == sf.summaries() == sa.summaries()


class TestTelemetryParity:
    def test_audit_records_identical(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 10,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        res_e, res_f, tel_e, tel_f = _run_both(params, telemetry=True)
        _assert_results_identical(res_e, res_f)
        assert len(tel_e.audit.records) > 0
        assert tel_e.audit.records == tel_f.audit.records

    def test_telemetry_does_not_change_results(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        bare = run_scenario(build_scenario(params), backend="fast")
        instrumented = run_scenario(
            build_scenario(params), backend="fast", telemetry=Telemetry()
        )
        _assert_results_identical(bare, instrumented)


class TestLedgerParity:
    """The time-attribution ledger is part of the parity contract."""

    @pytest.mark.parametrize(
        "point", smoke_spec().expand(), ids=lambda p: p.label
    )
    def test_smoke_point_ledgers_identical(self, point):
        res_e, res_f, led_e, led_f = _run_both_ledgered(point.params)
        _assert_results_identical(res_e, res_f)
        _assert_ledgers_identical(led_e, led_f)
        assert led_e.conserved and led_e.residual_exact() == 0

    def test_ledger_does_not_change_results(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        for backend in ("events", "fast"):
            bare = run_scenario(build_scenario(params), backend=backend)
            sc = build_scenario(params)
            ledgered = run_scenario(
                sc,
                backend=backend,
                ledger=TimeLedger(job="app", core_ids=sc.app_core_ids),
            )
            _assert_results_identical(bare, ledgered)


class TestLineageParity:
    """The chare-lineage observatory is part of the parity contract."""

    @pytest.mark.parametrize(
        "point", smoke_spec().expand(), ids=lambda p: p.label
    )
    def test_smoke_point_lineage_identical(self, point):
        res_e, res_f, pay_e, pay_f = _run_both_lineaged(point.params)
        _assert_results_identical(res_e, res_f)
        # graphs, metrics and counterfactual bounds: exact == equality
        assert pay_e == pay_f
        # counterfactual sanity on the smoke preset: every step helps
        for step in pay_e["steps"]:
            assert step["oracle_max_s"] <= step["observed_max_s"]
            assert step["sane"]

    def test_lineage_does_not_change_results(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        for backend in ("events", "fast"):
            bare = run_scenario(build_scenario(params), backend=backend)
            sc = build_scenario(params)
            lineaged = run_scenario(
                sc,
                backend=backend,
                lineage=LineageRecorder(job="app", core_ids=sc.app_core_ids),
            )
            _assert_results_identical(bare, lineaged)


class TestContendedRegimeParity:
    """The analytic contended regimes, pinned to exact ``==``.

    These scenarios exercise the closed-form contention folds: a
    constant-share background job spanning whole inter-LB windows
    (``balancer="none"``: the share count on an interfered core never
    changes mid-run except at background barriers) and piecewise-constant
    share counts whose change points fall between LB steps (every
    balancer; background arrivals/departures at its own barriers). The
    fold must be indistinguishable from event replay on every field.
    """

    @pytest.mark.parametrize("bg_weight", [0.25, 1.0, 2.0])
    def test_constant_share_whole_run(self, bg_weight):
        # no balancer: the proportional share on the interfered cores is
        # piecewise-constant with change points only at background
        # iteration boundaries
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 2,  # every app core is interfered
            "bg": True,
            "bg_weight": bg_weight,
            "balancer": "none",
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    @pytest.mark.parametrize("bg_overlap", [0.5, 1.5, 3.0])
    def test_bg_departure_mid_run(self, bg_overlap):
        # overlap < 1: the background job drains mid-run (share count
        # drops to one; the fold's solo stretch). overlap > 1: it spans
        # the whole app run.
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 10,
            "cores": 4,
            "bg": True,
            "bg_overlap": bg_overlap,
            "balancer": "refine-vm",
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    @pytest.mark.parametrize(
        "balancer", ["none", "refine-vm", "refine", "greedy", "greedy-aware"]
    )
    def test_piecewise_share_all_balancers(self, balancer):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 9,
            "cores": 4,
            "bg": True,
            "bg_weight": 0.7,
            "lb_period": 3,
            "balancer": balancer,
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    @pytest.mark.parametrize("app", ["jacobi2d", "wave2d", "mol3d"])
    def test_piecewise_share_all_apps(self, app):
        params = {
            "app": app,
            "scale": 0.05,
            "iterations": 7,
            "cores": 4,
            "bg": True,
            "bg_weight": 1.5,
            "balancer": "refine-vm",
        }
        res_e, res_f, _, _ = _run_both(params)
        _assert_results_identical(res_e, res_f)

    def test_contended_audit_records_identical(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 10,
            "cores": 2,
            "bg": True,
            "bg_weight": 2.0,
            "balancer": "refine-vm",
        }
        res_e, res_f, tel_e, tel_f = _run_both(params, telemetry=True)
        _assert_results_identical(res_e, res_f)
        assert len(tel_e.audit.records) > 0
        assert tel_e.audit.records == tel_f.audit.records

    def test_contended_ledger_identical(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 10,
            "cores": 2,
            "bg": True,
            "bg_weight": 0.5,
            "balancer": "none",
        }
        res_e, res_f, led_e, led_f = _run_both_ledgered(params)
        _assert_results_identical(res_e, res_f)
        _assert_ledgers_identical(led_e, led_f)
        assert led_e.conserved and led_e.residual_exact() == 0

    def test_contended_lineage_identical(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 10,
            "cores": 2,
            "bg": True,
            "bg_weight": 1.0,
            "balancer": "refine-vm",
        }
        res_e, res_f, pay_e, pay_f = _run_both_lineaged(params)
        _assert_results_identical(res_e, res_f)
        assert pay_e == pay_f


class TestBatchBackendParity:
    """The structure-of-arrays batch backend vs the event engine."""

    def test_single_scenario_batch_bit_identical(self):
        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 8,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        res_e = run_scenario(build_scenario(params), backend="events")
        res_b = run_scenario(build_scenario(params), backend="batch")
        _assert_results_identical(res_e, res_b)

    def test_smoke_sweep_batch_matches_serial(self):
        se = run_sweep(smoke_spec(), workers=1, cache=None, backend="events")
        sb = run_sweep(smoke_spec(), workers=1, cache=None, backend="batch")
        assert se.summaries() == sb.summaries()

    def test_homogeneous_group_split_regroup(self):
        """One shape-homogeneous group executes as a single batch call
        and the per-point results split back out bit-identical to
        serial per-point event execution (order preserved)."""
        from repro.experiments.sweep import SweepSpec
        from repro.sim.batch import batch_groups

        spec = SweepSpec(
            name="bgweight-axis",
            base={
                "app": "jacobi2d",
                "scale": 0.05,
                "iterations": 6,
                "cores": 4,
                "bg": True,
                "balancer": "refine-vm",
            },
            axes={"bg_weight": [0.25, 0.5, 1.0, 1.5, 2.0]},
        )
        points = spec.expand()
        scenarios = [build_scenario(p.params) for p in points]
        groups = batch_groups(scenarios)
        assert len(groups) == 1 and len(groups[0]) == len(points)
        sb = run_sweep(spec, workers=1, cache=None, backend="batch")
        se = run_sweep(spec, workers=1, cache=None, backend="events")
        assert sb.summaries() == se.summaries()
        assert [r.index for r in sb.results] == [r.index for r in se.results]

    def test_varying_epsilon_and_period_one_group(self):
        from repro.experiments.sweep import SweepSpec
        from repro.sim.batch import batch_groups

        spec = SweepSpec(
            name="eps-period-axes",
            base={
                "app": "jacobi2d",
                "scale": 0.05,
                "iterations": 6,
                "cores": 4,
                "bg": True,
                "balancer": "refine-vm",
            },
            axes={"epsilon": [0.02, 0.1], "lb_period": [2, 5]},
        )
        scenarios = [build_scenario(p.params) for p in spec.expand()]
        assert len(batch_groups(scenarios)) == 1
        sb = run_sweep(spec, workers=1, cache=None, backend="batch")
        se = run_sweep(spec, workers=1, cache=None, backend="events")
        assert sb.summaries() == se.summaries()

    def test_heterogeneous_spec_degrades_per_point(self):
        # cores vary: no two points share a shape, so the batch backend
        # degrades to per-point fastpath — results still bit-identical
        from repro.experiments.sweep import SweepSpec
        from repro.sim.batch import batch_groups

        spec = SweepSpec(
            name="cores-axis",
            base={
                "app": "jacobi2d",
                "scale": 0.05,
                "iterations": 5,
                "bg": True,
                "balancer": "refine-vm",
            },
            axes={"cores": [2, 4, 8]},
        )
        scenarios = [build_scenario(p.params) for p in spec.expand()]
        assert all(len(g) == 1 for g in batch_groups(scenarios))
        sb = run_sweep(spec, workers=1, cache=None, backend="batch")
        se = run_sweep(spec, workers=1, cache=None, backend="events")
        assert sb.summaries() == se.summaries()

    def test_batch_extras_route_through_batch_backend(self):
        """Ledger/lineage recompute paths honor backend="batch"."""
        from repro.experiments.sweep import run_point_ledgered, run_point_lineaged

        params = {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 6,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        }
        sum_e, led_e = run_point_ledgered(params, backend="events")
        sum_b, led_b = run_point_ledgered(params, backend="batch")
        assert sum_e == sum_b and led_e == led_b
        sum_e, lin_e = run_point_lineaged(params, backend="events")
        sum_b, lin_b = run_point_lineaged(params, backend="batch")
        assert sum_e == sum_b and lin_e == lin_b

    def test_cached_point_extras_reexecute_on_requested_backend(self, tmp_path):
        """A cache hit lacking extras re-executes through the *requested*
        backend — including batch — not a hardwired events fallback."""
        from repro.experiments.cache import ResultCache

        spec = smoke_spec()
        cache = ResultCache(tmp_path / "cache")
        plain = run_sweep(spec, workers=1, cache=cache, backend="batch")
        assert all(not r.cached for r in plain.results)
        # warm cache, but ledger extras missing: every point re-executes,
        # and it must do so on the batch backend (bit-identical summaries)
        led = run_sweep(spec, workers=1, cache=cache, backend="batch", ledger=True)
        assert all(not r.cached for r in led.results)
        assert plain.summaries() == led.summaries()
        assert all(r.ledger["conserved"] for r in led.results)

    def test_batch_tracing_unsupported(self):
        import dataclasses

        sc = build_scenario(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 2, "cores": 4}
        )
        traced = dataclasses.replace(sc, tracing=True)
        with pytest.raises(FastpathUnsupported):
            run_scenario(traced, backend="batch")


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        params = {"app": "jacobi2d", "scale": 0.05, "iterations": 2, "cores": 4}
        with pytest.raises(ValueError, match="backend"):
            run_scenario(build_scenario(params), backend="nope")
        with pytest.raises(ValueError, match="backend"):
            run_point(params, backend="nope")
        with pytest.raises(ValueError, match="backend"):
            run_sweep(smoke_spec(), workers=1, cache=None, backend="nope")

    def test_tracing_scenario_unsupported(self):
        import dataclasses

        sc = build_scenario(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 2, "cores": 4}
        )
        traced = dataclasses.replace(sc, tracing=True)
        assert fastpath_unsupported_reason(traced) is not None
        with pytest.raises(FastpathUnsupported):
            run_scenario(traced, backend="fast")
        # auto silently falls back to the event engine
        res = run_scenario(traced, backend="auto")
        assert res.app.finished_at > 0.0

    def test_record_intervals_scenario_unsupported(self):
        import dataclasses

        sc = build_scenario(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 2, "cores": 4}
        )
        recorded = dataclasses.replace(sc, record_intervals=True)
        assert fastpath_unsupported_reason(recorded) is not None
        with pytest.raises(FastpathUnsupported):
            run_scenario(recorded, backend="fast")

    def test_supported_scenario_has_no_reason(self):
        sc = build_scenario(
            {"app": "jacobi2d", "scale": 0.05, "iterations": 2, "cores": 4}
        )
        assert fastpath_unsupported_reason(sc) is None


# ----------------------------------------------------------------------
# Hypothesis: random scenarios, exact equality on every field
# ----------------------------------------------------------------------
_scenario_params = st.fixed_dictionaries(
    {
        "app": st.sampled_from(["jacobi2d", "wave2d", "mol3d"]),
        "scale": st.sampled_from([0.02, 0.05, 0.08]),
        "iterations": st.integers(min_value=1, max_value=12),
        "cores": st.sampled_from([2, 4, 6, 8]),
        "balancer": st.sampled_from(
            ["none", "refine-vm", "refine", "greedy", "greedy-aware"]
        ),
        "bg": st.booleans(),
        "lb_period": st.sampled_from([2, 5, 10]),
        "epsilon": st.sampled_from([0.02, 0.05, 0.1]),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)


@settings(max_examples=25, deadline=None)
@given(params=_scenario_params)
def test_random_scenarios_bit_identical(params):
    res_e, res_f, _, _ = _run_both(params)
    _assert_results_identical(res_e, res_f)
    # exact float equality, element by element (tuple == above already
    # implies it, but make NaN-freedom explicit)
    for a, b in zip(res_e.app.iteration_times, res_f.app.iteration_times):
        assert a == b and not math.isnan(a)


@settings(max_examples=15, deadline=None)
@given(params=_scenario_params)
def test_random_scenarios_ledger_conserved_and_identical(params):
    """Conservation is exact (Fraction residual == 0) on both backends,
    and the two backends produce bit-identical ledgers."""
    res_e, res_f, led_e, led_f = _run_both_ledgered(params)
    _assert_results_identical(res_e, res_f)
    _assert_ledgers_identical(led_e, led_f)
    assert led_e.conserved
    assert led_e.residual_exact() == 0
    assert led_f.residual_exact() == 0


@settings(max_examples=15, deadline=None)
@given(params=_scenario_params)
def test_random_scenarios_lineage_identical(params):
    """Both backends produce exactly equal lineage payloads, and the
    oracle bound never exceeds the observed replay (exact mean <= max
    on the effective load — a violation is a library bug)."""
    res_e, res_f, pay_e, pay_f = _run_both_lineaged(params)
    _assert_results_identical(res_e, res_f)
    assert pay_e == pay_f
    for step in pay_e["steps"]:
        assert step["oracle_max_s"] <= step["observed_max_s"]
        assert step["oracle_max_s"] <= step["nolb_max_s"]


# ----------------------------------------------------------------------
# Hypothesis: contended regimes (constant-share and piecewise-constant
# proportional shares — the analytic contention folds), exact equality
# ----------------------------------------------------------------------
_contended_params = st.fixed_dictionaries(
    {
        "app": st.sampled_from(["jacobi2d", "wave2d", "mol3d"]),
        "scale": st.sampled_from([0.02, 0.05, 0.08]),
        "iterations": st.integers(min_value=1, max_value=12),
        "cores": st.sampled_from([2, 4, 6, 8]),
        "balancer": st.sampled_from(
            ["none", "refine-vm", "refine", "greedy", "greedy-aware"]
        ),
        "bg": st.just(True),
        "bg_weight": st.sampled_from([0.25, 0.5, 1.0, 2.0]),
        "bg_overlap": st.sampled_from([0.5, 1.2, 3.0]),
        "lb_period": st.sampled_from([2, 5, 10]),
        "epsilon": st.sampled_from([0.02, 0.05, 0.1]),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)


@settings(max_examples=25, deadline=None)
@given(params=_contended_params)
def test_contended_random_scenarios_bit_identical(params):
    res_e, res_f, _, _ = _run_both(params)
    _assert_results_identical(res_e, res_f)
    for a, b in zip(res_e.app.iteration_times, res_f.app.iteration_times):
        assert a == b and not math.isnan(a)


@settings(max_examples=10, deadline=None)
@given(params=_contended_params)
def test_contended_random_ledger_conserved_and_identical(params):
    res_e, res_f, led_e, led_f = _run_both_ledgered(params)
    _assert_results_identical(res_e, res_f)
    _assert_ledgers_identical(led_e, led_f)
    assert led_e.conserved and led_e.residual_exact() == 0
    assert led_f.residual_exact() == 0


@settings(max_examples=10, deadline=None)
@given(params=_contended_params)
def test_contended_random_lineage_and_audit_identical(params):
    res_e, res_f, pay_e, pay_f = _run_both_lineaged(params)
    _assert_results_identical(res_e, res_f)
    assert pay_e == pay_f


@settings(max_examples=12, deadline=None)
@given(params=_contended_params)
def test_contended_random_batch_backend_bit_identical(params):
    res_e = run_scenario(build_scenario(params), backend="events")
    res_b = run_scenario(build_scenario(params), backend="batch")
    _assert_results_identical(res_e, res_b)

"""Golden regression tests pinning the headline Figure 2/4 numbers.

Three canonical cells (jacobi2d / wave2d / mol3d on 8 cores, fixed seed)
were serialized into ``golden/`` by ``golden/generate.py``. The
simulator is deterministic, so these must reproduce within a tight
tolerance on any machine; a mismatch means the reproduction's behaviour
changed. If the change is intentional, regenerate the files (see
``golden/generate.py``) and review the diff like a result change.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.sweep import run_sweep
from repro.experiments.sweep_presets import (
    fig2_rows_from_sweep,
    fig2_sweep_spec,
    fig4_rows_from_sweep,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("fig2_fig4_*.json"))

#: Relative tolerance for pinned floats. The simulation itself is exact;
#: the slack only absorbs float libm differences across platforms.
RTOL = 1e-9

pytestmark = pytest.mark.skipif(
    not GOLDEN_FILES, reason="no golden files generated"
)


def _result_for(golden):
    spec = fig2_sweep_spec(
        apps=[golden["app"]],
        core_counts=[golden["cores"]],
        scale=golden["scale"],
        iterations=golden["iterations"],
    )
    return run_sweep(spec)


@pytest.fixture(scope="module", params=GOLDEN_FILES, ids=lambda p: p.stem)
def pinned(request):
    golden = json.loads(request.param.read_text())
    return golden, _result_for(golden)


def test_three_canonical_cells_are_pinned():
    assert len(GOLDEN_FILES) == 3


def test_scenario_summaries_match_golden(pinned):
    golden, result = pinned
    for variant, expected in golden["summaries"].items():
        label = f"{golden['app']}/{golden['cores']}/{variant}"
        actual = result[label].to_dict()
        assert set(actual) == set(expected), variant
        for field, want in expected.items():
            got = actual[field]
            if isinstance(want, float):
                assert got == pytest.approx(want, rel=RTOL), (variant, field)
            else:
                assert got == want, (variant, field)


def test_fig2_penalty_row_matches_golden(pinned):
    golden, result = pinned
    (row,) = fig2_rows_from_sweep(result)
    want = golden["fig2_row"]
    assert row[0] == want[0] and row[1] == want[1]
    assert list(row[2:]) == pytest.approx(want[2:], rel=1e-6)


def test_fig4_energy_row_matches_golden(pinned):
    golden, result = pinned
    (row,) = fig4_rows_from_sweep(result)
    want = golden["fig4_row"]
    assert row[0] == want[0] and row[1] == want[1]
    assert list(row[2:]) == pytest.approx(want[2:], rel=1e-6)


def test_lb_still_beats_nolb_in_every_pinned_cell(pinned):
    """The paper's directional claim holds in the pinned cells: the
    interference-aware balancer cuts the timing penalty."""
    golden, _ = pinned
    _, _, nolb, lb, _, _ = golden["fig2_row"]
    assert lb < nolb

"""The ``"schema": 1`` progress-event stream contract.

Round-trips every event type a real smoke sweep emits through the
parser, and pins the forward-compatibility rule: consumers validate the
envelope only, so unknown fields and unknown event types must parse.
"""

import json

import pytest

from repro.experiments.progress import (
    PROGRESS_SCHEMA,
    EventLog,
    parse_progress_line,
    read_progress_jsonl,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.obs.registry import RunRegistry


@pytest.fixture(scope="module")
def smoke_stream(tmp_path_factory):
    """Progress JSONL from one real (tiny) registered sweep."""
    tmp = tmp_path_factory.mktemp("progress")
    spec = SweepSpec(
        name="tiny",
        base={"app": "jacobi2d", "scale": 0.05, "iterations": 5, "bg": True},
        axes={"balancer": ["none", "refine-vm"]},
    )
    path = tmp / "events.jsonl"
    with open(path, "w") as fh:
        run_sweep(
            spec,
            log=EventLog(stream=fh),
            registry=RunRegistry(tmp / "registry"),
        )
    return path


def test_every_emitted_event_round_trips(smoke_stream):
    raw_lines = smoke_stream.read_text().splitlines()
    events = [parse_progress_line(line) for line in raw_lines]
    assert all(e is not None for e in events)
    assert all(e["schema"] == PROGRESS_SCHEMA for e in events)

    by_type = {}
    for e in events:
        by_type.setdefault(e["event"], []).append(e)
    assert set(by_type) == {
        "sweep_start", "point_start", "point_done", "sweep_done",
        "run_registered",
    }
    assert len(by_type["point_start"]) == len(by_type["point_done"]) == 2
    # the reader agrees with line-by-line parsing
    assert read_progress_jsonl(smoke_stream) == events
    # t offsets are monotonic within the stream
    ts = [e["t"] for e in events]
    assert ts == sorted(ts)
    # the registered run id round-trips
    (reg,) = by_type["run_registered"]
    assert isinstance(reg["run_id"], str) and "-sweep-" in reg["run_id"]


def test_event_field_vocabulary(smoke_stream):
    events = read_progress_jsonl(smoke_stream)
    start = next(e for e in events if e["event"] == "sweep_start")
    assert {"spec", "points", "workers", "cached"} <= set(start)
    done = next(e for e in events if e["event"] == "point_done")
    assert {"label", "key", "cached", "wall_s", "worker"} <= set(done)
    final = next(e for e in events if e["event"] == "sweep_done")
    assert {"points", "executed", "cache_hits", "hit_rate", "elapsed_s"} <= set(final)


def test_unknown_fields_and_event_types_are_accepted():
    # a future event type with never-seen fields still parses
    line = json.dumps({
        "schema": PROGRESS_SCHEMA, "event": "quantum_checkpoint",
        "t": 1.0, "entanglement": {"pairs": 3}, "color": "octarine",
    })
    record = parse_progress_line(line)
    assert record["event"] == "quantum_checkpoint"
    assert record["color"] == "octarine"
    # known event with an extra field: same story
    line = json.dumps({
        "schema": PROGRESS_SCHEMA, "event": "point_done", "t": 2.0,
        "label": "a", "key": "k", "cached": False, "wall_s": 0.1,
        "worker": "main", "carbon_footprint_g": 0.002,
    })
    assert parse_progress_line(line)["carbon_footprint_g"] == 0.002


def test_envelope_violations_raise():
    assert parse_progress_line("") is None
    assert parse_progress_line("   \n") is None
    with pytest.raises(ValueError, match="not valid JSON"):
        parse_progress_line("{nope")
    with pytest.raises(ValueError, match="not a JSON object"):
        parse_progress_line("[1, 2]")
    with pytest.raises(ValueError, match="no string 'event'"):
        parse_progress_line(json.dumps({"schema": PROGRESS_SCHEMA, "t": 0.0}))
    with pytest.raises(ValueError, match="unsupported progress schema"):
        parse_progress_line(json.dumps({"schema": 99, "event": "sweep_start"}))
    with pytest.raises(ValueError, match="unsupported progress schema"):
        parse_progress_line(json.dumps({"event": "sweep_start"}))


def test_reader_tolerates_truncated_final_line(tmp_path):
    path = tmp_path / "events.jsonl"
    good = json.dumps({"schema": PROGRESS_SCHEMA, "event": "sweep_start", "t": 0.0})
    path.write_text(good + "\n" + '{"schema": 1, "event": "point_')
    events = read_progress_jsonl(path)
    assert len(events) == 1 and events[0]["event"] == "sweep_start"

    # ... but a malformed line mid-file means the file is not a log
    path.write_text('{"broken\n' + good + "\n")
    with pytest.raises(ValueError, match=":1:"):
        read_progress_jsonl(path)


def test_on_event_hook_sees_every_record():
    seen = []
    log = EventLog(on_event=seen.append)
    log.emit("sweep_start", spec="x", points=0, workers=1, cached=0)
    log.emit("sweep_done", points=0)
    assert [e["event"] for e in seen] == ["sweep_start", "sweep_done"]
    assert seen == log.events  # the hook sees the exact records

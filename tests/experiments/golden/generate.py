"""Regenerate the golden sweep summaries pinned by ``test_golden.py``.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/experiments/golden/generate.py

Each golden file pins one canonical Figure 2/4 cell (app on 8 cores at
scale 0.5, 50 iterations, seed 0): the five per-variant scenario
summaries plus the derived penalty and energy rows. The simulator is
deterministic, so any diff here is a real behaviour change — review it
like one.
"""

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: The canonical cells: cheap enough for CI, rich enough to exercise the
#: balancer (mol3d also covers internal imbalance + bg weight 4).
CELLS = (("jacobi2d", 8), ("wave2d", 8), ("mol3d", 8))
SCALE = 0.5
ITERATIONS = 50


def generate():
    from repro.experiments.sweep import run_sweep
    from repro.experiments.sweep_presets import (
        fig2_rows_from_sweep,
        fig2_sweep_spec,
        fig4_rows_from_sweep,
    )

    for app, cores in CELLS:
        spec = fig2_sweep_spec(
            apps=[app], core_counts=[cores], scale=SCALE, iterations=ITERATIONS
        )
        result = run_sweep(spec)
        golden = {
            "app": app,
            "cores": cores,
            "scale": SCALE,
            "iterations": ITERATIONS,
            "summaries": {
                r.label.split("/")[-1]: r.summary.to_dict()
                for r in result.results
            },
            "fig2_row": list(fig2_rows_from_sweep(result)[0]),
            "fig4_row": list(fig4_rows_from_sweep(result)[0]),
        }
        path = GOLDEN_DIR / f"fig2_fig4_{app}_{cores}.json"
        path.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    sys.exit(generate())

"""Unit tests for scenarios, the runner, penalties and tables."""

import pytest

from repro.apps import SyntheticApp, Wave2D
from repro.cluster import NetworkModel
from repro.core import NoLB, RefineVMInterferenceLB
from repro.experiments import (
    BackgroundSpec,
    ExperimentResult,
    Scenario,
    format_table,
    percent_increase,
    run_scenario,
)


def test_percent_increase():
    assert percent_increase(2.0, 1.0) == pytest.approx(100.0)
    assert percent_increase(1.0, 1.0) == 0.0
    assert percent_increase(0.5, 1.0) == -50.0
    with pytest.raises(ValueError):
        percent_increase(1.0, 0.0)


def test_scenario_validation_and_shape():
    app = SyntheticApp([0.01] * 8)
    sc = Scenario(app=app, num_cores=6, iterations=3)
    assert sc.app_core_ids == (0, 1, 2, 3, 4, 5)
    assert sc.num_nodes == 2  # 6 cores over 4-core nodes
    with pytest.raises(ValueError):
        Scenario(app=app, num_cores=0, iterations=1)
    with pytest.raises(ValueError):
        Scenario(app=app, num_cores=1, iterations=0)


def test_background_spec_validation():
    bg = Wave2D.background(grid_size=64)
    with pytest.raises(ValueError):
        BackgroundSpec(model=bg, core_ids=(), iterations=5)
    with pytest.raises(ValueError):
        BackgroundSpec(model=bg, core_ids=(0,), iterations=0)
    with pytest.raises(ValueError):
        BackgroundSpec(model=bg, core_ids=(0,), iterations=1, weight=0.0)
    with pytest.raises(ValueError):
        BackgroundSpec(model=bg, core_ids=(0,), iterations=1, start=-1.0)


def test_nodes_cover_background_cores():
    app = SyntheticApp([0.01] * 8)
    bg = BackgroundSpec(
        model=SyntheticApp([0.01]), core_ids=(7,), iterations=2
    )
    sc = Scenario(app=app, num_cores=2, iterations=2, bg=bg)
    assert sc.num_nodes == 2  # bg on core 7 forces a second node


def test_run_scenario_without_background():
    app = SyntheticApp([0.05] * 8, comm_bytes_per_core=0.0)
    sc = Scenario(
        app=app, num_cores=4, iterations=5, net=NetworkModel.zero()
    )
    res = run_scenario(sc)
    assert isinstance(res, ExperimentResult)
    assert res.bg is None and res.bg_time is None
    # 8 tasks x 0.05 over 4 cores = 0.1 s per iteration
    assert res.app_time == pytest.approx(0.5)
    assert res.energy.time == pytest.approx(0.5)
    assert res.avg_power_w > 40.0


def test_run_scenario_with_background_measures_both():
    app = SyntheticApp([0.05] * 8)
    bg = BackgroundSpec(
        model=SyntheticApp([0.05, 0.05]), core_ids=(0, 1), iterations=10
    )
    sc = Scenario(
        app=app, num_cores=4, iterations=5, bg=bg, net=NetworkModel.zero()
    )
    res = run_scenario(sc)
    assert res.bg is not None
    assert res.app_time > 0.5  # slower than isolated
    assert res.bg_time > 0.0


def test_energy_window_ends_at_app_completion():
    app = SyntheticApp([0.05] * 4)
    # bg runs far longer than the app
    bg = BackgroundSpec(
        model=SyntheticApp([0.05]), core_ids=(0,), iterations=100
    )
    sc = Scenario(
        app=app, num_cores=4, iterations=2, bg=bg, net=NetworkModel.zero()
    )
    res = run_scenario(sc)
    assert res.energy.time == pytest.approx(res.app_time)


def test_lb_scenario_beats_nolb_under_interference():
    app = SyntheticApp([0.02] * 32, state_bytes=256.0)
    bg = BackgroundSpec(
        model=SyntheticApp([0.02, 0.02]), core_ids=(0, 1), iterations=400
    )
    common = dict(app=app, num_cores=8, iterations=30, bg=bg, net=NetworkModel.zero())
    t_nolb = run_scenario(Scenario(**common)).app_time
    t_lb = run_scenario(
        Scenario(**common, balancer=RefineVMInterferenceLB(0.05))
    ).app_time
    assert t_lb < t_nolb * 0.8


def test_deadlock_detection_is_not_triggered_by_clean_runs():
    # sanity: normal scenarios always drain
    app = SyntheticApp([0.01])
    res = run_scenario(
        Scenario(app=app, num_cores=1, iterations=1, net=NetworkModel.zero())
    )
    assert res.app_time > 0


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.234), ("b", 10.0)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.2" in text and "10.0" in text
        # all rows same width
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

"""Result-cache provenance stamps: git sha, seed, schema, fingerprint."""

import json

from repro.experiments.cache import (
    CACHE_FORMAT,
    ResultCache,
    code_fingerprint,
    point_key,
)


def _params(seed=42):
    return {"app": "jacobi2d", "cores": 4, "seed": seed}


def test_put_stamps_provenance(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
    cache = ResultCache(tmp_path)
    key = point_key(_params())
    cache.put(key, _params(), {"app_time": 1.0})

    prov = cache.get_provenance(key)
    assert prov == {
        "schema": CACHE_FORMAT,
        "git_sha": "feedbeef",
        "seed": 42,
        "code_fingerprint": code_fingerprint()[:16],
    }
    # the stamp is on disk, inside the entry itself
    (entry_file,) = tmp_path.glob("*/*.json")
    assert json.loads(entry_file.read_text())["provenance"] == prov


def test_provenance_never_affects_hits(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    key = point_key(_params())
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
    cache.put(key, _params(), {"app_time": 1.0})
    # a different sha at read time still hits: provenance is informational
    monkeypatch.setenv("REPRO_GIT_SHA", "0ddba11")
    assert cache.get(key) == {"app_time": 1.0}
    assert cache.get_provenance(key)["git_sha"] == "feedbeef"


def test_pre_stamp_entries_read_as_none(tmp_path):
    cache = ResultCache(tmp_path)
    key = point_key(_params())
    cache.put(key, _params(), {"app_time": 1.0})
    # simulate an entry written before provenance existed
    (entry_file,) = tmp_path.glob("*/*.json")
    entry = json.loads(entry_file.read_text())
    del entry["provenance"]
    entry_file.write_text(json.dumps(entry))
    assert cache.get_provenance(key) is None
    assert cache.get(key) == {"app_time": 1.0}  # still a valid hit
    assert cache.get_provenance("0" * 64) is None  # missing entry


def test_seed_absent_from_params_is_stored_as_null(tmp_path):
    cache = ResultCache(tmp_path)
    params = {"app": "jacobi2d", "cores": 4}
    key = point_key(params)
    cache.put(key, params, {"app_time": 1.0})
    assert cache.get_provenance(key)["seed"] is None

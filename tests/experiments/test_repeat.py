"""Tests for the repeated-run (averaging) methodology."""

import pytest

from repro.experiments import RunStatistics, repeat_case, summarize
from repro.experiments.figures import paper_app


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.min == 1.0 and s.max == 3.0
        assert s.n == 3

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSeededVariation:
    def test_different_seeds_produce_different_work(self):
        a = paper_app("jacobi2d", 0.1, seed=0).build_array(2)
        b = paper_app("jacobi2d", 0.1, seed=1).build_array(2)
        assert [c.work(5) for c in a] != [c.work(5) for c in b]

    def test_same_seed_is_reproducible(self):
        a = paper_app("wave2d", 0.1, seed=3).build_array(2)
        b = paper_app("wave2d", 0.1, seed=3).build_array(2)
        assert [c.work(5) for c in a] == [c.work(5) for c in b]

    def test_mol3d_seed_changes_density(self):
        a = paper_app("mol3d", 0.1, seed=0).build_array(2)
        b = paper_app("mol3d", 0.1, seed=1).build_array(2)
        assert [c.particles for c in a] != [c.particles for c in b]


class TestRepeatCase:
    @pytest.fixture(scope="class")
    def repeated(self):
        return repeat_case(
            "jacobi2d", 8, seeds=(0, 1), scale=0.25, iterations=30
        )

    def test_all_metrics_present(self, repeated):
        expected = {
            "penalty_nolb",
            "penalty_lb",
            "bg_penalty_nolb",
            "bg_penalty_lb",
            "power_nolb_w",
            "power_lb_w",
            "energy_overhead_nolb",
            "energy_overhead_lb",
        }
        assert set(repeated.metrics) == expected
        for s in repeated.metrics.values():
            assert isinstance(s, RunStatistics)
            assert s.n == 2

    def test_means_within_extremes(self, repeated):
        for s in repeated.metrics.values():
            assert s.min <= s.mean <= s.max

    def test_text_table(self, repeated):
        text = repeated.text()
        assert "averages over 2 runs" in text
        assert "penalty_nolb" in text

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat_case("jacobi2d", 8, seeds=())

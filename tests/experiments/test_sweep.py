"""Unit tests for the sweep engine: specs, cache, progress, execution."""

import json

import pytest

from repro.experiments.cache import (
    CACHE_FORMAT,
    ResultCache,
    code_fingerprint,
    point_key,
)
from repro.experiments.progress import PROGRESS_SCHEMA, EventLog
from repro.experiments.sweep import (
    PARAM_DEFAULTS,
    ScenarioSummary,
    SweepSpec,
    build_scenario,
    normalize_params,
    run_point,
    run_sweep,
)

#: Cheap scenario base every test here sweeps around (sub-second runs).
TINY = {"app": "jacobi2d", "scale": 0.05, "iterations": 5, "cores": 4}


# ---------------------------------------------------------------------------
# parameter normalisation
# ---------------------------------------------------------------------------


class TestNormalizeParams:
    def test_defaults_are_filled_and_sorted(self):
        p = normalize_params({})
        assert set(p) == set(PARAM_DEFAULTS)
        assert list(p) == sorted(p)

    def test_explicit_defaults_hash_like_implicit(self):
        implicit = normalize_params({"app": "wave2d"})
        explicit = normalize_params({"app": "wave2d", "cores": 8, "epsilon": 0.05})
        assert point_key(implicit) == point_key(explicit)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario parameter"):
            normalize_params({"grid": 64})

    def test_unknown_app_and_balancer_rejected(self):
        with pytest.raises(ValueError, match="unknown app"):
            normalize_params({"app": "linpack"})
        with pytest.raises(ValueError, match="unknown balancer"):
            normalize_params({"balancer": "magic"})

    def test_none_balancer_aliases_to_none_string(self):
        assert normalize_params({"balancer": None})["balancer"] == "none"

    def test_auto_seed_is_deterministic_and_content_dependent(self):
        a = normalize_params({**TINY, "seed": "auto"})
        b = normalize_params({**TINY, "seed": "auto"})
        c = normalize_params({**TINY, "cores": 8, "seed": "auto"})
        assert a["seed"] == b["seed"]
        assert a["seed"] != c["seed"]


# ---------------------------------------------------------------------------
# spec expansion
# ---------------------------------------------------------------------------


class TestSweepSpec:
    def test_cartesian_expansion_order(self):
        spec = SweepSpec(
            name="s",
            base=TINY,
            axes={"cores": [4, 8], "balancer": ["none", "refine-vm"]},
        )
        labels = [p.label for p in spec.expand()]
        assert labels == [
            "cores=4,balancer=none",
            "cores=4,balancer=refine-vm",
            "cores=8,balancer=none",
            "cores=8,balancer=refine-vm",
        ]

    def test_explicit_points_and_labels(self):
        spec = SweepSpec(
            name="s",
            base=TINY,
            points=({"label": "a", "cores": 4}, {"cores": 8}),
        )
        points = spec.expand()
        assert [p.label for p in points] == ["a", "cores=8"]
        assert points[0].params["cores"] == 4

    def test_bare_base_is_one_point(self):
        assert len(SweepSpec(name="s", base=TINY).expand()) == 1

    def test_duplicate_labels_are_disambiguated(self):
        spec = SweepSpec(
            name="s", base=TINY, points=({"label": "x"}, {"label": "x"})
        )
        assert [p.label for p in spec.expand()] == ["x", "x#1"]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            SweepSpec(name="s", axes={"gridsize": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            SweepSpec(name="s", axes={"cores": []})

    def test_json_round_trip(self, tmp_path):
        spec = SweepSpec(
            name="rt", base=TINY, axes={"cores": [4, 8]}, points=({"seed": 1},)
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = SweepSpec.from_file(path)
        assert loaded == spec

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="needs a 'name'"):
            SweepSpec.from_dict({})
        with pytest.raises(ValueError, match="unknown sweep spec key"):
            SweepSpec.from_dict({"name": "s", "grid": {}})


# ---------------------------------------------------------------------------
# scenario building
# ---------------------------------------------------------------------------


class TestBuildScenario:
    def test_balancer_selection(self):
        from repro.core import GreedyLB, RefineLB, RefineVMInterferenceLB

        assert build_scenario({**TINY}).balancer is None
        sc = build_scenario({**TINY, "balancer": "refine-vm", "epsilon": 0.1})
        assert isinstance(sc.balancer, RefineVMInterferenceLB)
        assert sc.balancer.epsilon == 0.1
        assert isinstance(
            build_scenario({**TINY, "balancer": "refine"}).balancer, RefineLB
        )
        aware = build_scenario({**TINY, "balancer": "greedy-aware"}).balancer
        assert isinstance(aware, GreedyLB) and aware.aware

    def test_background_spec_sized_to_outlast_app(self):
        sc = build_scenario({**TINY, "bg": True})
        assert sc.bg is not None
        assert sc.bg.core_ids == (0, 1)
        assert sc.bg.iterations >= 1

    def test_fresh_objects_per_call(self):
        params = {**TINY, "balancer": "refine-vm"}
        a, b = build_scenario(params), build_scenario(params)
        assert a.balancer is not b.balancer
        assert a.app is not b.app


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        params = normalize_params(TINY)
        key = point_key(params)
        assert cache.get(key) is None
        summary = run_point(params)
        cache.put(key, params, summary.to_dict())
        assert len(cache) == 1
        assert ScenarioSummary.from_dict(cache.get(key)) == summary

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(normalize_params(TINY))
        cache.put(key, {}, {"bogus": 1})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_wrong_key_or_format_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(normalize_params(TINY))
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"format": CACHE_FORMAT + 1, "key": key, "summary": {}})
        )
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {}, {"x": 1})
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_key_depends_on_params_and_code(self):
        a = point_key(normalize_params(TINY))
        b = point_key(normalize_params({**TINY, "cores": 8}))
        assert a != b
        assert point_key(normalize_params(TINY), fingerprint="deadbeef") != a

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        int(fp, 16)
        assert len(fp) == 64


# ---------------------------------------------------------------------------
# execution + metrics + events
# ---------------------------------------------------------------------------


def tiny_spec(**base_overrides):
    return SweepSpec(
        name="tiny",
        base={**TINY, **base_overrides},
        axes={"cores": [2, 4], "balancer": ["none", "refine-vm"]},
    )


class TestRunSweep:
    def test_cold_run_executes_everything(self, tmp_path):
        res = run_sweep(tiny_spec(), cache=ResultCache(tmp_path))
        assert res.metrics.points == 4
        assert res.metrics.executed == 4
        assert res.metrics.cache_hits == 0
        assert res.metrics.hit_rate == 0.0
        assert all(not r.cached and r.wall_s > 0 for r in res.results)

    def test_second_run_is_pure_cache_hit_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(tiny_spec(), cache=cache)
        warm = run_sweep(tiny_spec(), cache=cache)
        assert warm.metrics.hit_rate == 1.0
        assert warm.metrics.executed == 0
        assert warm.summaries() == cold.summaries()
        # a warm run must be drastically cheaper than the cold one
        assert warm.metrics.elapsed_s < cold.metrics.elapsed_s * 0.5

    def test_no_cache_always_executes(self):
        res = run_sweep(tiny_spec())
        again = run_sweep(tiny_spec())
        assert res.metrics.executed == again.metrics.executed == 4
        assert res.summaries() == again.summaries()

    def test_results_keep_spec_order(self, tmp_path):
        spec = tiny_spec()
        res = run_sweep(spec, cache=ResultCache(tmp_path))
        assert [r.label for r in res.results] == [p.label for p in spec.expand()]
        assert [r.index for r in res.results] == [0, 1, 2, 3]

    def test_event_stream_structure(self):
        log = EventLog()
        run_sweep(tiny_spec(), log=log)
        assert all(e["schema"] == PROGRESS_SCHEMA for e in log.events)
        assert [e["event"] for e in log.events[:1]] == ["sweep_start"]
        assert log.events[-1]["event"] == "sweep_done"
        assert len(log.of_type("point_start")) == 4
        done = log.of_type("point_done")
        assert len(done) == 4
        assert all(set(d) >= {"label", "key", "cached", "wall_s", "worker"} for d in done)
        assert log.events[-1]["points"] == 4

    def test_jsonl_mirror_is_parseable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as fh:
            run_sweep(tiny_spec(), log=EventLog(stream=fh))
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert all(e["schema"] == 1 for e in events)
        assert events[0]["event"] == "sweep_start"
        assert events[-1]["event"] == "sweep_done"
        assert events[-1]["hit_rate"] == 0.0

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(tiny_spec(), workers=0)

    def test_getitem_and_missing_label(self):
        res = run_sweep(SweepSpec(name="one", base=TINY))
        assert res["point0"].app_time > 0
        with pytest.raises(KeyError):
            res["nope"]

    def test_text_report_mentions_hits_and_utilization(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(tiny_spec(), cache=cache)
        warm = run_sweep(tiny_spec(), cache=cache)
        text = warm.text()
        assert "cache_hits=4 (100%)" in text
        assert "hit" in text

    def test_zero_miss_parallel_sweep_never_builds_a_pool(
        self, tmp_path, monkeypatch
    ):
        """A fully-cached sweep must not pay process-spawn cost."""
        cache = ResultCache(tmp_path)
        cold = run_sweep(tiny_spec(), cache=cache)

        def explode(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("zero-miss sweep built a process pool")

        monkeypatch.setattr(
            "repro.experiments.sweep.ProcessPoolExecutor", explode
        )
        warm = run_sweep(tiny_spec(), cache=cache, workers=4)
        assert warm.metrics.cache_hits == 4
        assert warm.summaries() == cold.summaries()


class TestSummaryRoundTrip:
    def test_json_round_trip_is_exact(self):
        summary = run_point(normalize_params(TINY))
        blob = json.dumps(summary.to_dict())
        assert ScenarioSummary.from_dict(json.loads(blob)) == summary

    def test_bg_time_present_only_with_background(self):
        assert run_point({**TINY}).bg_time is None
        assert run_point({**TINY, "bg": True}).bg_time > 0

"""Determinism guarantees of the sweep engine and the runner.

The contract: a scenario's summary is a pure function of its parameters.
These tests would catch shared-RNG state, mutable module state leaking
between :func:`run_scenario` calls, or anything order/process-dependent
in the executor — the failure modes that would silently corrupt a
parallel sweep.
"""

from repro.apps import SyntheticApp
from repro.cluster import NetworkModel
from repro.core import RefineVMInterferenceLB
from repro.experiments import BackgroundSpec, Scenario, run_scenario
from repro.experiments.sweep import (
    SweepSpec,
    run_point,
    run_sweep,
    summarize_result,
)

TINY = {"app": "jacobi2d", "scale": 0.05, "iterations": 5}

SPEC = SweepSpec(
    name="determinism",
    base={**TINY, "bg": True, "balancer": "refine-vm"},
    axes={"cores": [4, 8], "seed": [0, 1]},
)


def test_serial_and_four_workers_produce_identical_summaries():
    """The ISSUE's determinism criterion: 1 worker == 4 workers, bit-for-bit."""
    serial = run_sweep(SPEC, workers=1)
    parallel = run_sweep(SPEC, workers=4)
    assert serial.summaries() == parallel.summaries()
    assert [r.label for r in serial.results] == [r.label for r in parallel.results]


def test_back_to_back_runs_of_same_scenario_are_equal():
    """Two consecutive runs in one process see no leaked state."""
    params = {**TINY, "cores": 4, "bg": True, "balancer": "refine-vm"}
    assert run_point(params) == run_point(params)


def test_interleaved_different_scenarios_do_not_contaminate():
    """A run sandwiched between different scenarios matches a fresh run."""
    params_a = {**TINY, "cores": 4, "balancer": "refine-vm", "bg": True}
    params_b = {**TINY, "cores": 8, "seed": 3}
    first = run_point(params_a)
    run_point(params_b)  # unrelated work in between
    run_point({**TINY, "cores": 4, "seed": 7})
    assert run_point(params_a) == first


def test_run_scenario_is_hermetic_with_fresh_balancers():
    """Direct runner calls with equivalent fresh inputs agree exactly.

    Guards the audit result: nothing in the runtime/simulator keeps
    result-affecting module-level state (the global SimProcess pid
    counter only feeds dict keys, never ordering).
    """

    def scenario():
        return Scenario(
            app=SyntheticApp([0.02] * 32, state_bytes=256.0),
            num_cores=8,
            iterations=10,
            balancer=RefineVMInterferenceLB(0.05),
            bg=BackgroundSpec(
                model=SyntheticApp([0.02, 0.02]),
                core_ids=(0, 1),
                iterations=60,
            ),
            net=NetworkModel.zero(),
        )

    first = summarize_result(run_scenario(scenario()))
    second = summarize_result(run_scenario(scenario()))
    assert first == second


def test_seed_actually_varies_results():
    """Distinct seeds give distinct runs (the seeding is really wired in)."""
    a = run_point({**TINY, "cores": 4, "seed": 0})
    b = run_point({**TINY, "cores": 4, "seed": 1})
    assert a != b

"""Tests for the figure generators (reduced-scale runs).

These run the *same code paths* as the full benchmarks at ~1/4 problem
scale and reduced iteration counts, asserting the directional claims the
paper makes. The full-scale numbers live in benchmarks/ and
EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    headline_reductions,
    paper_app,
    paper_app_names,
    run_case,
)
from repro.experiments.figures import run_matrix


@pytest.fixture(scope="module")
def small_case():
    """One moderately sized Figure 2/4 cell, shared across tests."""
    return run_case("jacobi2d", 16, scale=0.5, iterations=100, lb_period=5)


def test_paper_app_registry():
    assert paper_app_names() == ("jacobi2d", "wave2d", "mol3d")
    for name in paper_app_names():
        model = paper_app(name, scale=0.1)
        assert len(model.build_array(4)) > 4  # overdecomposed
    with pytest.raises(ValueError):
        paper_app("linpack")
    with pytest.raises(ValueError):
        paper_app("jacobi2d", scale=0.0)


class TestFig1:
    def test_interference_stretches_iteration(self):
        r = fig1(scale=0.25, iterations=10, start_after=4)
        # fair CPU sharing: the interfered iteration is ~2x the clean one
        assert r.stretch_factor == pytest.approx(2.0, rel=0.1)

    def test_only_clean_cores_idle(self):
        r = fig1(scale=0.25, iterations=10, start_after=4)
        clean_rows = r.rendering_interfered.splitlines()[1:4]
        interfered_row = r.rendering_interfered.splitlines()[4]
        for row in clean_rows:
            assert "." in row  # idle at the barrier
        assert "." not in interfered_row.split("|")[1]

    def test_iteration_times_step_up_when_bg_starts(self):
        r = fig1(scale=0.25, iterations=10, start_after=4)
        before = r.iteration_times[2]
        after = r.iteration_times[-2]
        assert after > 1.7 * before

    def test_text_contains_both_panels(self):
        r = fig1(scale=0.25, iterations=10)
        assert "(a) no BG task" in r.text()
        assert "(b) BG task" in r.text()


class TestFig2AndFig4:
    def test_lb_reduces_timing_penalty(self, small_case):
        assert small_case.penalty_lb < small_case.penalty_nolb

    def test_nolb_penalty_reflects_fair_sharing(self, small_case):
        # fair 1:1 sharing doubles the interfered cores' compute; the
        # (unstretched) communication share dilutes it somewhat
        assert 50.0 < small_case.penalty_nolb < 130.0

    def test_bg_job_benefits_from_lb_too(self, small_case):
        assert small_case.bg_penalty_lb < small_case.bg_penalty_nolb

    def test_lb_draws_more_power_but_less_energy_overhead(self, small_case):
        assert small_case.power_lb_w > small_case.power_nolb_w
        assert small_case.energy_overhead_lb < small_case.energy_overhead_nolb

    def test_penalty_decreases_with_cores(self):
        c8 = run_case("jacobi2d", 8, scale=0.5, iterations=100)
        c16 = run_case("jacobi2d", 16, scale=0.5, iterations=100)
        assert c16.penalty_lb < c8.penalty_lb

    def test_mol3d_bias_inflates_nolb_penalty(self):
        mol = run_case("mol3d", 8, scale=0.5, iterations=40)
        jac = run_case("jacobi2d", 8, scale=0.5, iterations=40)
        # the OS preference to the BG job (weight 4) hits Mol3D much harder
        assert mol.penalty_nolb > 1.5 * jac.penalty_nolb
        # and shields the BG job itself
        assert mol.bg_penalty_nolb < jac.bg_penalty_nolb

    def test_fig2_fig4_share_matrix(self):
        matrix = run_matrix(
            apps=["jacobi2d"], core_counts=(8,), scale=0.25, iterations=30
        )
        f2 = fig2(matrix=matrix)
        f4 = fig4(matrix=matrix)
        assert f2.matrix is matrix and f4.matrix is matrix
        assert len(f2.rows) == 1 and len(f4.rows) == 1
        assert "Figure 2" in f2.text()
        assert "Figure 4" in f4.text()

    def test_headline_claim_on_small_matrix(self, small_case):
        matrix = {("jacobi2d", 16): small_case}
        rows = headline_reductions(matrix)
        assert len(rows) == 1
        assert rows[0].meets_claim  # >= 5% reduction in both metrics

    def test_headline_zero_baseline_does_not_crash(self):
        # tiny --scale runs can round the noLB penalty to exactly zero;
        # the reduction is then 0% (nothing to reduce), never a crash
        from repro.experiments.figures import _reduction_percent

        assert _reduction_percent(0.0, 0.0) == 0.0
        assert _reduction_percent(3.0, 0.0) == 0.0
        assert _reduction_percent(5.0, 10.0) == 50.0


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3(scale=0.25, lb_period=4)

    def test_five_phases(self, result):
        assert len(result.phase_names) == 5
        assert len(result.renderings) == 5

    def test_rebalancing_recovers_iteration_time(self, result):
        a, b, c, d, e = result.phase_mean_iteration
        assert b < 0.85 * a  # balancing while BG on core1 helps
        assert e < 0.9 * d  # and again when BG moved to core3
        assert c < b  # interference-free phase is fastest

    def test_objects_drain_and_return(self, result):
        o1 = result.phase_objects_core1
        o3 = result.phase_objects_core3
        assert o1[1] < o1[0]  # drained while interfered
        assert o1[2] > o1[1]  # returned once the hog left
        assert o3[4] < o3[3]  # drained when the hog moved to core3

    def test_text_rendering(self, result):
        text = result.text()
        assert "Figure 3" in text
        for name in result.phase_names:
            assert name in text

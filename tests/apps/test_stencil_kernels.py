"""Numerical validation of the stencil kernels."""

import numpy as np
import pytest

from repro.apps.stencil_kernels import (
    jacobi_residual,
    jacobi_step,
    wave_energy,
    wave_step,
)


def test_jacobi_converges_to_laplace_solution():
    n = 17
    grid = np.zeros((n, n))
    grid[0, :] = 1.0  # hot top edge, Dirichlet
    out = np.empty_like(grid)
    res0 = jacobi_residual(grid)
    for _ in range(2000):
        jacobi_step(grid, out)
        grid, out = out, grid
    assert jacobi_residual(grid) < 1e-6 < res0
    # harmonic function: interior values strictly between boundary extremes
    assert grid[1:-1, 1:-1].max() < 1.0
    assert grid[1:-1, 1:-1].min() >= 0.0


def test_jacobi_preserves_boundary():
    grid = np.zeros((5, 5))
    grid[0, :] = 3.0
    grid[:, -1] = 7.0
    out = np.empty_like(grid)
    jacobi_step(grid, out)
    assert np.all(out[0, :-1] == 3.0)  # corner (0,-1) was overwritten to 7
    assert np.all(out[1:, -1] == 7.0)


def test_jacobi_uniform_field_is_fixed_point():
    grid = np.full((8, 8), 2.5)
    out = np.empty_like(grid)
    jacobi_step(grid, out)
    np.testing.assert_allclose(out, grid)


def test_jacobi_rejects_aliasing_and_bad_shapes():
    grid = np.zeros((5, 5))
    with pytest.raises(ValueError):
        jacobi_step(grid, grid)
    with pytest.raises(ValueError):
        jacobi_step(grid, np.zeros((4, 5)))
    with pytest.raises(ValueError):
        jacobi_step(np.zeros((2, 2)), np.zeros((2, 2)))


def test_wave_step_preserves_zero_field():
    u0 = np.zeros((10, 10))
    u1 = np.zeros((10, 10))
    u2 = wave_step(u0, u1)
    assert np.all(u2 == 0.0)


def test_wave_pulse_propagates_and_stays_stable():
    n = 33
    u_prev = np.zeros((n, n))
    u_curr = np.zeros((n, n))
    u_curr[n // 2, n // 2] = 1.0
    e0 = wave_energy(u_prev, u_curr)
    for _ in range(200):
        u_next = wave_step(u_prev, u_curr, courant2=0.25)
        u_prev, u_curr = u_curr, u_next
    e = wave_energy(u_prev, u_curr)
    # CFL-stable leapfrog: energy bounded (no blow-up)
    assert np.isfinite(u_curr).all()
    assert e < 10.0 * e0
    # the pulse actually moved off the centre cell
    assert abs(u_curr[n // 2, n // 2]) < 1.0


def test_wave_cfl_validation():
    u = np.zeros((5, 5))
    with pytest.raises(ValueError):
        wave_step(u, u, courant2=0.9)
    with pytest.raises(ValueError):
        wave_step(u, np.zeros((4, 5)))

"""Unit tests for the AMR2D moving-front application."""

import pytest

from repro.apps import AMR2D
from repro.apps.amr import AMRStripChare
from repro.cluster import Cluster, NetworkModel
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.sim import SimulationEngine


def test_front_inflates_cost_by_refinement_factor():
    app = AMR2D(grid_size=512, odf=4, refinement=8.0, front_speed=0.0)
    arr = app.build_array(4)
    works = [c.work(0) for c in arr]
    assert max(works) == pytest.approx(8.0 * min(works))


def test_front_moves_over_time():
    app = AMR2D(grid_size=512, odf=4, refinement=4.0, front_speed=0.5)
    arr = app.build_array(4)
    hot_at_0 = {c.index for c in arr if c.in_front(0)}
    hot_later = {c.index for c in arr if c.in_front(40)}
    assert hot_at_0 != hot_later


def test_front_wraps_periodically():
    app = AMR2D(grid_size=512, odf=4, refinement=4.0, front_speed=1.0)
    arr = app.build_array(4)
    n = len(arr)
    hot_at_0 = {c.index for c in arr if c.in_front(0)}
    hot_at_period = {c.index for c in arr if c.in_front(n)}
    assert hot_at_0 == hot_at_period


def test_total_work_is_iteration_independent_in_aggregate():
    """The front covers a constant strip count, so total work is stable."""
    app = AMR2D(grid_size=1024, odf=8, refinement=8.0, front_speed=0.3)
    arr = app.build_array(4)
    totals = [sum(c.work(it) for c in arr) for it in range(0, 40, 5)]
    assert max(totals) / min(totals) < 1.2


def test_validation():
    with pytest.raises(ValueError):
        AMR2D(front_width_frac=1.5)
    with pytest.raises(ValueError):
        AMR2D(refinement=0.0)
    with pytest.raises(ValueError):
        AMRStripChare(0, 4, 4, num_strips=8, refinement=0.0, front_width=1, front_speed=0.0)
    app = AMR2D(grid_size=16, odf=8)
    with pytest.raises(ValueError):
        app.build_array(4)  # 32 strips from 16 rows


def test_slow_front_is_balanceable():
    """In the persistence regime, the LB tracks the front and wins."""

    def run(balancer):
        eng = SimulationEngine()
        cl = Cluster(eng, num_nodes=1, cores_per_node=4)
        app = AMR2D(
            grid_size=512, odf=8, refinement=8.0,
            front_speed=0.05, front_width_frac=0.2,
        )
        rt = app.instantiate(
            eng, cl, [0, 1, 2, 3],
            net=NetworkModel.zero(),
            balancer=balancer,
            policy=LBPolicy(period_iterations=5, decision_overhead_s=0.0),
        )
        rt.start(iterations=80)
        eng.run()
        return rt.finished_at

    nolb = run(None)
    lb = run(RefineVMInterferenceLB(0.05))
    assert lb < 0.85 * nolb


def test_comm_graph_available():
    app = AMR2D(grid_size=512, odf=2)
    g = app.comm_graph(4)
    assert g.num_edges == 7

"""Unit tests for the application models."""

import pytest

from repro.apps import Jacobi2D, Mol3D, SyntheticApp, Wave2D
from repro.apps.stencil import StencilStripChare, build_strip_array
from repro.apps.stencil_kernels import JACOBI_FLOPS_PER_CELL, WAVE_FLOPS_PER_CELL
from repro.cluster import Cluster, NetworkModel
from repro.sim import SimulationEngine


class TestStencilStrip:
    def test_work_matches_flop_model(self):
        c = StencilStripChare(
            0, 16, 4096, flops_per_cell=6.0, core_speed=1e9, jitter_amp=0.0
        )
        assert c.work(0) == pytest.approx(16 * 4096 * 6.0 / 1e9)

    def test_jitter_is_small_and_deterministic(self):
        c = StencilStripChare(
            3, 16, 512, flops_per_cell=6.0, jitter_amp=0.01
        )
        base = 16 * 512 * 6.0 / StencilStripChare(0, 16, 512, flops_per_cell=6.0).core_speed
        for it in range(10):
            w = c.work(it)
            assert abs(w - base) <= 0.011 * base
            assert w == c.work(it)  # deterministic

    def test_state_bytes_counts_fields(self):
        c2 = StencilStripChare(0, 10, 10, flops_per_cell=1.0, fields=2)
        c3 = StencilStripChare(0, 10, 10, flops_per_cell=1.0, fields=3)
        assert c3.state_bytes == pytest.approx(1.5 * c2.state_bytes)

    def test_build_strip_array_covers_grid(self):
        arr = build_strip_array("s", 100, 7, flops_per_cell=1.0)
        assert sum(c.rows for c in arr) == 100
        rows = [c.rows for c in arr]
        assert max(rows) - min(rows) <= 1

    def test_too_many_strips_rejected(self):
        with pytest.raises(ValueError):
            build_strip_array("s", 4, 8, flops_per_cell=1.0)

    def test_execute_runs_real_kernel(self):
        c = StencilStripChare(0, 8, 8, flops_per_cell=6.0)
        c.execute(0)
        c.execute(1)
        assert c._grid is not None
        # heat from the fixed hot ghost row has started diffusing in
        assert c._grid[1, 1:-1].max() > 0.0


class TestStencilApps:
    @pytest.mark.parametrize("model_cls,flops", [
        (Jacobi2D, JACOBI_FLOPS_PER_CELL),
        (Wave2D, WAVE_FLOPS_PER_CELL),
    ])
    def test_total_work_independent_of_cores(self, model_cls, flops):
        app = model_cls(grid_size=512, odf=4, jitter_amp=0.0)
        for cores in (2, 4):
            arr = app.build_array(cores)
            assert len(arr) == 4 * cores
            total = sum(c.work(0) for c in arr)
            assert total == pytest.approx(512 * 512 * flops / 1e9)

    def test_comm_bytes_is_two_halo_rows(self):
        app = Jacobi2D(grid_size=1024)
        assert app.comm_bytes(8) == 2 * 1024 * 8

    def test_instantiate_builds_runnable_runtime(self):
        eng = SimulationEngine()
        cl = Cluster(eng, num_nodes=1, cores_per_node=2)
        app = Jacobi2D(grid_size=256, odf=2, jitter_amp=0.0)
        rt = app.instantiate(eng, cl, [0, 1], net=NetworkModel.zero())
        rt.start(iterations=3)
        eng.run()
        assert rt.done
        expected_iter = 256 * 256 * JACOBI_FLOPS_PER_CELL / 1e9 / 2
        assert rt.stats.iteration_times[0] == pytest.approx(expected_iter, rel=0.01)

    def test_background_instance_has_one_chare_per_core(self):
        bg = Wave2D.background()
        arr = bg.build_array(2)
        assert len(arr) == 2


class TestMol3D:
    def test_cell_count_and_particle_conservation(self):
        app = Mol3D(total_particles=10_000, odf=4, seed=7)
        arr = app.build_array(8)
        assert len(arr) == 32
        assert sum(c.particles for c in arr) == 10_000

    def test_density_clustering_creates_internal_imbalance(self):
        app = Mol3D(total_particles=20_000, odf=8, density_cv=0.4, seed=3)
        arr = app.build_array(4)
        works = [c.work(0) for c in arr]
        assert max(works) > 1.5 * min(works)

    def test_uniform_density_is_nearly_balanced(self):
        app = Mol3D(total_particles=32_000, odf=4, density_cv=0.0, drift_amp=0.0)
        arr = app.build_array(4)
        works = [c.work(0) for c in arr]
        assert max(works) < 1.02 * min(works)

    def test_load_drift_is_slow_and_bounded(self):
        app = Mol3D(total_particles=8_000, odf=2, drift_amp=0.05, drift_period=100)
        c = app.build_array(2)[0]
        w0 = c.work(0)
        # consecutive iterations differ by far less than the amplitude
        assert abs(c.work(1) - w0) / w0 < 0.02
        # but over half a period the drift is visible
        assert any(abs(c.work(i) - w0) / w0 > 0.01 for i in range(100))

    def test_seed_reproducibility(self):
        a = Mol3D(seed=5).build_array(2)
        b = Mol3D(seed=5).build_array(2)
        assert [c.particles for c in a] == [c.particles for c in b]

    def test_execute_runs_md_kernel(self):
        app = Mol3D(total_particles=200, odf=1)
        c = app.build_array(2)[0]
        c.execute(0)
        c.execute(1)
        assert c._positions is not None


class TestSyntheticApp:
    def test_sequence_works(self):
        app = SyntheticApp([1.0, 2.0, 3.0])
        arr = app.build_array(1)
        assert [c.work(0) for c in arr] == [1.0, 2.0, 3.0]

    def test_callable_works(self):
        app = SyntheticApp(lambda i, it: float(i + it), num_chares=3)
        arr = app.build_array(1)
        assert arr[2].work(5) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticApp([])
        with pytest.raises(ValueError):
            SyntheticApp(lambda i, it: 1.0)  # no num_chares
        with pytest.raises(ValueError):
            SyntheticApp([1.0], num_chares=5)
        with pytest.raises(ValueError):
            SyntheticApp([-1.0])

"""Numerical validation of the MD kernels."""

import numpy as np
import pytest

from repro.apps.md_kernels import lj_forces, lj_potential, velocity_verlet


def test_forces_obey_newtons_third_law():
    rng = np.random.default_rng(0)
    pos = rng.uniform(0, 5, (8, 3))
    f = lj_forces(pos)
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-9)


def test_two_particles_at_minimum_have_zero_force():
    r_min = 2.0 ** (1.0 / 6.0)  # LJ potential minimum
    pos = np.array([[0.0, 0.0, 0.0], [r_min, 0.0, 0.0]])
    f = lj_forces(pos)
    np.testing.assert_allclose(f, 0.0, atol=1e-12)


def test_close_particles_repel():
    pos = np.array([[0.0, 0.0, 0.0], [0.9, 0.0, 0.0]])
    f = lj_forces(pos)
    assert f[0, 0] < 0.0  # pushed apart
    assert f[1, 0] > 0.0


def test_far_particles_attract():
    pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
    f = lj_forces(pos)
    assert f[0, 0] > 0.0  # pulled together
    assert f[1, 0] < 0.0


def test_potential_minimum_value():
    r_min = 2.0 ** (1.0 / 6.0)
    pos = np.array([[0.0, 0.0, 0.0], [r_min, 0.0, 0.0]])
    assert lj_potential(pos) == pytest.approx(-1.0)


def test_single_particle_edge_cases():
    pos = np.zeros((1, 3))
    assert np.all(lj_forces(pos) == 0.0)
    assert lj_potential(pos) == 0.0


def test_verlet_conserves_energy_short_term():
    rng = np.random.default_rng(1)
    n = 6
    # well-separated lattice, small dt
    pos = np.array(
        [[i * 1.5, j * 1.5, 0.0] for i in range(3) for j in range(2)], dtype=float
    )
    vel = rng.normal(0, 0.05, (n, 3))
    def energy(p, v):
        return lj_potential(p) + 0.5 * np.sum(v * v)

    e0 = energy(pos, vel)
    for _ in range(100):
        pos, vel = velocity_verlet(pos, vel, dt=1e-3)
    drift = abs(energy(pos, vel) - e0) / max(abs(e0), 1e-12)
    assert drift < 1e-3


def test_verlet_validation():
    pos = np.zeros((2, 3))
    vel = np.zeros((2, 3))
    with pytest.raises(ValueError):
        velocity_verlet(pos, vel, dt=0.0)
    with pytest.raises(ValueError):
        lj_forces(np.zeros((3, 2)))

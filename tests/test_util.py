"""Unit tests for the util helpers (validation, RNG, logging)."""

import logging
import math

import numpy as np
import pytest

from repro.util import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
    get_logger,
    resolve_rng,
)


class TestValidation:
    def test_check_type_passthrough_and_error(self):
        assert check_type("x", 5, int) == 5
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "no", int)
        with pytest.raises(TypeError, match="int or float"):
            check_type("x", "no", (int, float))

    def test_check_finite(self):
        assert check_finite("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_finite("x", math.nan)
        with pytest.raises(ValueError):
            check_finite("x", math.inf)
        with pytest.raises(TypeError):
            check_finite("x", "1.0")
        with pytest.raises(TypeError):
            check_finite("x", True)  # bools are not numbers here

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_positive(self):
        assert check_positive("x", 1e-9) == 1e-9
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        check_in_range("x", 0, 0, 10)
        check_in_range("x", 10, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", -1, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 10, low_inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 10, 0, 10, high_inclusive=False)
        # open-ended sides
        check_in_range("x", 1e9, low=0)
        check_in_range("x", -1e9, high=0)


class TestRng:
    def test_none_is_deterministic_default(self):
        a = resolve_rng(None).random(3)
        b = resolve_rng(None).random(3)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        a = resolve_rng(7).random(3)
        b = resolve_rng(7).random(3)
        c = resolve_rng(8).random(3)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert resolve_rng(g) is g

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestLogger:
    def test_namespacing(self):
        assert get_logger("sim.engine").name == "repro.sim.engine"
        assert get_logger("repro.core").name == "repro.core"

    def test_null_handler_attached(self):
        logger = get_logger("test.nullhandler")
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )

"""Tests for the command-line interface (tiny scales)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_fig1_command(capsys):
    assert main(["fig1", "--scale", "0.1", "--iterations", "8"]) == 0
    out = capsys.readouterr().out
    assert "(a) no BG task" in out
    assert "core   3" in out


def test_fig3_command(capsys):
    assert main(["fig3", "--scale", "0.1", "--lb-period", "3"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_fig2_command_with_filters(capsys):
    rc = main(
        [
            "fig2",
            "--scale", "0.2",
            "--iterations", "20",
            "--cores", "8",
            "--apps", "jacobi2d",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "jacobi2d" in out
    assert "mol3d" not in out


def test_fig4_command(capsys):
    rc = main(
        ["fig4", "--scale", "0.2", "--iterations", "20", "--cores", "8",
         "--apps", "wave2d"]
    )
    assert rc == 0
    assert "Figure 4" in capsys.readouterr().out


def test_demo_command(capsys):
    rc = main(["demo", "--scale", "0.2", "--iterations", "20", "--cores", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "interfered, noLB" in out
    assert "interfered, LB" in out


def test_output_directory(tmp_path, capsys):
    rc = main(
        ["fig1", "--scale", "0.1", "--iterations", "8", "--output", str(tmp_path)]
    )
    assert rc == 0
    assert (tmp_path / "fig1.txt").exists()
    assert "(a) no BG task" in (tmp_path / "fig1.txt").read_text()


def test_headline_exit_code_reflects_claim(capsys):
    # a healthy configuration meets the claim -> exit 0
    rc = main(
        ["headline", "--scale", "0.5", "--iterations", "60", "--cores", "16",
         "--apps", "mol3d"]
    )
    assert rc == 0


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["demo", "--app", "linpack"])


def test_sweep_requires_spec_or_preset():
    with pytest.raises(SystemExit):
        main(["sweep"])


def test_sweep_smoke_preset_with_cache_and_jsonl(tmp_path, capsys):
    import json

    cache_dir = tmp_path / "cache"
    jsonl = tmp_path / "events.jsonl"
    args = [
        "sweep", "--preset", "smoke",
        "--cache-dir", str(cache_dir),
        "--jsonl", str(jsonl),
        "--output", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "sweep smoke — 4 scenarios" in out
    assert "cache_hits=0" in out
    assert (tmp_path / "sweep_smoke.txt").exists()
    events = [json.loads(l) for l in jsonl.read_text().splitlines()]
    assert events[0]["event"] == "sweep_start"
    assert events[-2]["event"] == "sweep_done"
    assert events[-1]["event"] == "run_registered"  # registry ingest is on

    # second run: pure cache hit
    assert main(args) == 0
    assert "cache_hits=4 (100%)" in capsys.readouterr().out


def test_sweep_from_spec_file_with_workers(tmp_path, capsys):
    import json

    spec = {
        "name": "filespec",
        "base": {"app": "jacobi2d", "scale": 0.05, "iterations": 5},
        "axes": {"cores": [2, 4]},
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    rc = main(
        ["sweep", "--spec", str(path), "--workers", "2", "--no-cache"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep filespec — 2 scenarios" in out
    assert "workers=2" in out


def test_sweep_bad_spec_is_a_clean_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "base": {"frobnicate": 3}}')
    assert main(["sweep", "--spec", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "repro sweep: error:" in err
    assert "frobnicate" in err

    assert main(["sweep", "--spec", str(tmp_path / "nope.json")]) == 2
    assert "repro sweep: error:" in capsys.readouterr().err

    assert main(["sweep", "--preset", "smoke", "--workers", "0"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err


def test_sweep_instrumentation_flags_are_mutually_exclusive(tmp_path, capsys):
    assert main(["sweep", "--preset", "smoke", "--lineage", "--ledger"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert main(["sweep", "--preset", "smoke", "--lineage",
                 "--audit", str(tmp_path / "audit")]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_sweep_fig2_preset_emits_penalty_and_energy_tables(capsys):
    rc = main(
        ["sweep", "--preset", "fig2", "--apps", "jacobi2d", "--cores", "4",
         "--scale", "0.05", "--iterations", "5", "--no-cache"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2 — timing penalty vs. interference (percent, via sweep)" in out
    assert "Figure 4 — power draw and energy overhead (via sweep)" in out


def test_sweep_audit_then_inspect(tmp_path, capsys):
    audit_dir = tmp_path / "audit"
    rc = main(
        ["sweep", "--preset", "smoke", "--no-cache", "--audit", str(audit_dir)]
    )
    assert rc == 0
    capsys.readouterr()
    jsonls = sorted(audit_dir.glob("*.jsonl"))
    traces = sorted(audit_dir.glob("*.trace.json"))
    assert len(jsonls) == len(traces) == 4

    assert main(["inspect", str(audit_dir)]) == 0
    out = capsys.readouterr().out
    assert "LB steps across 4 source(s)" in out
    assert "Eq. 2 estimation error" in out
    assert "Candidate decisions by reason" in out

    assert main(["inspect", str(audit_dir), "--json", "--top", "2"]) == 0
    import json

    report = json.loads(capsys.readouterr().out)
    assert len(report["combined"]["top_migrations"]) <= 2
    assert report["combined"]["lb_steps"] > 0


def test_inspect_errors_are_clean(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "missing")]) == 2
    assert "repro inspect: error:" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text("{broken\n")
    assert main(["inspect", str(bad)]) == 2
    assert "repro inspect: error:" in capsys.readouterr().err

    assert main(["inspect", str(tmp_path), "--top", "-1"]) == 2
    assert "--top must be >= 0" in capsys.readouterr().err


def test_log_level_flag_configures_root_logger(capsys):
    import logging

    root = logging.getLogger()
    before = root.level
    try:
        assert main(["--log-level", "warning", "demo", "--scale", "0.05"]) == 0
        assert root.level == logging.WARNING
    finally:
        root.setLevel(before)


_FAST_BENCH = ["bench", "--suite", "micro", "--repeats", "1", "--warmup", "0",
               "--filter", "net.message_time"]


def test_bench_writes_schema_versioned_trajectory_entry(tmp_path, capsys,
                                                        monkeypatch):
    import json

    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
    traj = tmp_path / "traj"
    rc = main(_FAST_BENCH + ["--trajectory-dir", str(traj),
                             "--output", str(tmp_path)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "repro bench — 1 metrics" in captured.out
    assert "net.message_time_per_s" in captured.out
    entry = traj / "BENCH_feedbeef.json"
    assert entry.exists()
    data = json.loads(entry.read_text())
    assert data["schema"] == 1 and data["kind"] == "repro-bench"
    assert data["env"]["git_sha"] == "feedbeef"
    assert (tmp_path / "bench.txt").exists()


def test_bench_no_save_leaves_no_trajectory(tmp_path, capsys):
    traj = tmp_path / "traj"
    assert main(_FAST_BENCH + ["--trajectory-dir", str(traj),
                               "--no-save"]) == 0
    assert not traj.exists()


def test_bench_compare_passes_unchanged_and_fails_on_slowdown(tmp_path,
                                                              capsys):
    import json

    traj = tmp_path / "traj"
    assert main(_FAST_BENCH + ["--trajectory-dir", str(traj)]) == 0
    (baseline,) = traj.glob("BENCH_*.json")
    capsys.readouterr()

    # replaying the identical result against itself must pass
    rc = main(["bench", "--replay", str(baseline),
               "--compare", str(baseline)])
    assert rc == 0
    assert "PASS — no regressions" in capsys.readouterr().out

    # an injected 2x slowdown must fail with exit code 1
    slow = json.loads(baseline.read_text())
    for m in slow["metrics"].values():
        m["median"] /= 2.0
        m["samples"] = [s / 2.0 for s in m["samples"]]
    slow_path = tmp_path / "slow.json"
    slow_path.write_text(json.dumps(slow))
    rc = main(["bench", "--replay", str(slow_path),
               "--compare", str(baseline)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "FAIL" in out


def test_bench_compare_json_report(tmp_path, capsys):
    import json

    traj = tmp_path / "traj"
    assert main(_FAST_BENCH + ["--trajectory-dir", str(traj), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "result" in payload and "comparison" not in payload
    (baseline,) = traj.glob("BENCH_*.json")
    assert main(["bench", "--replay", str(baseline),
                 "--compare", str(baseline), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["comparison"]["ok"] is True


def test_bench_usage_errors_are_clean(tmp_path, capsys):
    assert main(["bench", "--replay", "x.json"]) == 2
    assert "--replay requires --compare" in capsys.readouterr().err

    assert main(_FAST_BENCH + ["--no-save",
                               "--compare", str(tmp_path / "nope.json")]) == 2
    assert "repro bench: error:" in capsys.readouterr().err

    assert main(["bench", "--no-save", "--filter", "no-such-metric"]) == 2
    assert "no benchmarks match" in capsys.readouterr().err


def test_bench_profile_writes_phase_profile_and_trace(tmp_path, capsys):
    import json

    rc = main(_FAST_BENCH + ["--no-save", "--profile", str(tmp_path / "prof")])
    assert rc == 0
    profile = json.loads((tmp_path / "prof" / "profile.json").read_text())
    assert "engine.run" in profile["phases"]
    assert profile["intervals"], "profiled run records intervals"
    events = json.loads((tmp_path / "prof" / "profile.trace.json").read_text())
    assert any(e.get("cat") == "profile" for e in events)
    assert any(e.get("ph") == "C" for e in events)


# ---------------------------------------------------------------------------
# observability: registry, watch, report, anomaly gate
# ---------------------------------------------------------------------------


def _registry_args(tmp_path):
    return ["--registry", str(tmp_path / "registry")]


def test_sweep_registers_run_then_runs_list_shows_it(tmp_path, capsys,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
    rc = main(["sweep", "--preset", "smoke", "--no-cache",
               "--registry", str(tmp_path / "registry")])
    assert rc == 0
    err = capsys.readouterr().err
    assert "[registered as run " in err

    assert main(["runs"] + _registry_args(tmp_path) + ["list"]) == 0
    out = capsys.readouterr().out
    assert "1 registered run(s)" in out
    assert "sweep" in out and "smoke" in out
    assert "feedbeef" in out  # git sha in the listing

    # the full record carries per-point seeds and metrics
    assert main(["runs"] + _registry_args(tmp_path) + ["show", "latest"]) == 0
    import json

    record = json.loads(capsys.readouterr().out)
    assert record["git_sha"] == "feedbeef"
    assert len(record["points"]) == 4
    assert all("seed" in p for p in record["points"])
    assert all("app_time" in p["summary"] for p in record["points"])
    assert record["metrics"]["points"] == 4


def test_sweep_no_registry_skips_ingest(tmp_path, capsys):
    rc = main(["sweep", "--preset", "smoke", "--no-cache", "--no-registry",
               "--registry", str(tmp_path / "registry")])
    assert rc == 0
    assert "[registered as run" not in capsys.readouterr().err
    assert main(["runs"] + _registry_args(tmp_path) + ["list"]) == 0
    assert "is empty" in capsys.readouterr().out


def test_sweep_live_renders_final_frame_to_stderr(tmp_path, capsys):
    rc = main(["sweep", "--preset", "smoke", "--no-cache", "--live",
               "--registry", str(tmp_path / "registry")])
    assert rc == 0
    err = capsys.readouterr().err
    assert "sweep smoke — 4/4 points" in err
    assert "done: executed=4" in err


def test_watch_replays_a_jsonl_progress_file(tmp_path, capsys):
    jsonl = tmp_path / "events.jsonl"
    rc = main(["sweep", "--preset", "smoke", "--no-cache", "--no-registry",
               "--jsonl", str(jsonl)])
    assert rc == 0
    capsys.readouterr()
    assert main(["watch", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "sweep smoke — 4/4 points" in out
    assert "100.0%" in out

    assert main(["watch", str(tmp_path / "nope.jsonl")]) == 1
    assert "no progress file" in capsys.readouterr().err

    assert main(["watch", str(jsonl), "--interval", "0"]) == 2
    assert "--interval must be > 0" in capsys.readouterr().err


def test_runs_check_flags_injected_outlier_with_nonzero_exit(tmp_path, capsys,
                                                             monkeypatch):
    """Acceptance: a 3x penalty outlier in a registry fixture makes
    ``repro runs check`` exit non-zero with an error finding."""
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
    from repro.obs.registry import RunRegistry
    from tests.obs.conftest import PAIRED_POINTS, build_run

    registry = RunRegistry(tmp_path / "registry")
    for i in range(2):
        spec, result = build_run("smoke", PAIRED_POINTS)
        registry.ingest_sweep(spec, result,
                              created_utc=f"2026-08-06T1{i}:00:00Z")
    outlier = [dict(p) for p in PAIRED_POINTS]
    outlier[1] = {**outlier[1], "app_time": 4.5}
    spec, result = build_run("smoke", outlier)
    registry.ingest_sweep(spec, result, created_utc="2026-08-06T12:00:00Z")

    rc = main(["runs"] + _registry_args(tmp_path) + ["check", "latest"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "ERROR" in out and "penalty-outlier" in out
    assert "3.00x" in out

    # json mode carries the same findings
    rc = main(["runs"] + _registry_args(tmp_path) + ["check", "latest",
                                                     "--json"])
    assert rc == 1
    import json

    findings = json.loads(capsys.readouterr().out)
    assert any(f["rule"] == "penalty-outlier" and f["severity"] == "error"
               for f in findings)

    # the earlier runs are clean (warnings at most -> exit 0)
    first = registry.list()[0]["run_id"]
    assert main(["runs"] + _registry_args(tmp_path) + ["check", first]) == 0


def test_runs_check_clean_run_exits_zero(tmp_path, capsys):
    assert main(["sweep", "--preset", "smoke", "--no-cache",
                 "--registry", str(tmp_path / "registry")]) == 0
    capsys.readouterr()
    rc = main(["runs"] + _registry_args(tmp_path) + ["check"])
    assert rc == 0  # smoke lb-no-benefit findings are warnings, never errors
    out = capsys.readouterr().out
    assert "0 error(s)" in out or "no findings" in out


def test_runs_diff_between_two_registered_sweeps(tmp_path, capsys):
    for _ in range(2):
        assert main(["sweep", "--preset", "smoke", "--no-cache",
                     "--registry", str(tmp_path / "registry")]) == 0
    capsys.readouterr()
    runs_prefix = ["runs"] + _registry_args(tmp_path)
    # deterministic engine: identical params -> identical summaries
    import json

    assert main(runs_prefix + ["diff", "--json", "latest:smoke", "latest"]) == 0
    diff = json.loads(capsys.readouterr().out)
    assert diff["only_a"] == diff["only_b"] == []
    assert main(runs_prefix + ["diff", "latest:smoke", "latest"]) == 0
    assert "identical point(s)" in capsys.readouterr().out

    assert main(runs_prefix + ["diff", "latest", "zzz"]) == 2
    assert "repro runs: error:" in capsys.readouterr().err


def test_runs_errors_are_clean(tmp_path, capsys):
    runs_prefix = ["runs"] + _registry_args(tmp_path)
    assert main(runs_prefix + ["show", "latest"]) == 2
    assert "repro runs: error:" in capsys.readouterr().err
    assert main(runs_prefix + ["check", "latest"]) == 2
    assert "repro runs: error:" in capsys.readouterr().err


def test_report_cli_writes_self_contained_html(tmp_path, capsys):
    assert main(["sweep", "--preset", "smoke", "--no-cache",
                 "--registry", str(tmp_path / "registry")]) == 0
    capsys.readouterr()
    out_file = tmp_path / "report.html"
    rc = main(["report", "--registry", str(tmp_path / "registry"),
               "--trajectory-dir", str(tmp_path / "no-traj"),
               "--output", str(out_file)])
    assert rc == 0
    assert "report written to" in capsys.readouterr().out
    html = out_file.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html and "https://" not in html
    assert "smoke" in html


def test_inspect_empty_dir_is_a_clean_one_line_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["inspect", str(empty)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro inspect: error:")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


# ---------------------------------------------------------------------------
# fabric: the distributed driver from the command line
# ---------------------------------------------------------------------------


def test_fabric_run_smoke_with_injected_kill_matches_serial(tmp_path, capsys):
    import json

    # serial reference first, through the shared cache-free path
    assert main(["sweep", "--preset", "smoke", "--no-cache",
                 "--no-registry"]) == 0
    serial_out = capsys.readouterr().out

    jsonl = tmp_path / "progress.jsonl"
    rc = main([
        "fabric", "run", "--preset", "smoke",
        "--workers", "2",
        "--dir", str(tmp_path / "job"),
        "--cache-dir", str(tmp_path / "cache"),
        "--shard-size", "1",
        "--fault", "kill:w0:0:1",
        "--lease-timeout", "2",
        "--jsonl", str(jsonl),
        "--registry", str(tmp_path / "registry"),
    ])
    assert rc == 0
    fabric_out = capsys.readouterr().out
    # identical per-point summaries: the table rows (minus the run-time
    # column) must match the serial run line for line
    def rows(text):
        return [
            line.rsplit(None, 1)[0]
            for line in text.splitlines()
            if line.startswith("cores=")
        ]

    assert rows(fabric_out) == rows(serial_out)

    events = [json.loads(l) for l in jsonl.read_text().splitlines()]
    kinds = [e["event"] for e in events]
    assert kinds[0] == "sweep_start"
    assert events[0]["driver"] == "fabric"
    assert "worker_dead" in kinds
    assert "sweep_done" in kinds
    assert "run_registered" in kinds


def test_fabric_run_rejects_bad_fault_spec(tmp_path, capsys):
    rc = main([
        "fabric", "run", "--preset", "smoke",
        "--dir", str(tmp_path / "job"),
        "--fault", "explode:w0:0",
        "--no-cache", "--no-registry",
    ])
    assert rc == 2
    assert "repro fabric run: error:" in capsys.readouterr().err


def test_fabric_worker_without_job_is_a_clean_error(tmp_path, capsys):
    assert main(["fabric", "worker", str(tmp_path / "nope")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro fabric worker: error:")
    assert "Traceback" not in err


def test_fabric_trace_and_status_over_a_job_directory(tmp_path, capsys):
    import json

    from tests.obs.test_fabtrace import _kill_drill_job

    job = _kill_drill_job(tmp_path / "job")

    assert main(["fabric", "status", str(job)]) == 0
    out = capsys.readouterr().out
    assert "fabric status: drill" in out and "2/2 done" in out

    perfetto = tmp_path / "drill.trace.json"
    assert main(["fabric", "trace", str(job),
                 "--perfetto", str(perfetto)]) == 0
    captured = capsys.readouterr()
    assert "fabric trace: drill" in captured.out
    assert "steals=1" in captured.out
    assert "critical path" in captured.out
    assert "perfetto trace:" in captured.err
    assert isinstance(json.load(open(perfetto)), list)

    assert main(["fabric", "trace", str(job), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["health"]["steals"] == 1 and data["problems"] == []

    assert main(["fabric", "status", str(job), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["done"] == 2


def test_fabric_trace_problems_exit_nonzero(tmp_path, capsys):
    from repro.experiments.fabric.transport import FileTransport
    from tests.obs.test_fabtrace import _kill_drill_job

    job = _kill_drill_job(tmp_path / "job")
    # a result committed by a worker no stream ever narrated: the
    # causality validation must fail loudly, not render politely
    FileTransport(job).submit_result("s0001", "ghost", [])
    assert main(["fabric", "trace", str(job)]) == 1
    assert "PROBLEMS" in capsys.readouterr().out


def test_fabric_trace_and_status_errors_are_clean(tmp_path, capsys):
    for sub in ("trace", "status"):
        assert main(["fabric", sub, str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"repro fabric {sub}: error:")
        assert "Traceback" not in err


def test_fabric_run_no_trace_leaves_no_recorder_artifacts(tmp_path, capsys):
    rc = main([
        "fabric", "run", "--preset", "smoke",
        "--workers", "1", "--shards", "1",
        "--dir", str(tmp_path / "job"),
        "--cache-dir", str(tmp_path / "cache"),
        "--no-registry", "--no-trace",
    ])
    assert rc == 0
    capsys.readouterr()
    assert not (tmp_path / "job" / "coordinator.jsonl").exists()
    events = list((tmp_path / "job" / "events").glob("*.jsonl"))
    assert events and all('"t_wall"' not in p.read_text() for p in events)


def test_runs_show_surfaces_fabric_counts_on_stderr(tmp_path, capsys):
    from repro.obs.registry import RunRegistry
    from tests.obs.conftest import PAIRED_POINTS, build_run

    registry = RunRegistry(tmp_path / "registry")
    spec, result = build_run("drill", PAIRED_POINTS)
    registry.ingest_sweep(
        spec, result, created_utc="2026-08-06T10:00:00Z",
        extra={"fabric": {"fabric_dir": "/jobs/d", "workers_seen": ["w0", "w1"],
                          "shards": 4, "steals": 1, "respawns": 2,
                          "worker_deaths": 1}},
    )
    import json

    assert main(["runs"] + _registry_args(tmp_path) + ["show", "latest"]) == 0
    captured = capsys.readouterr()
    record = json.loads(captured.out)  # stdout is still pure JSON
    assert record["fabric"]["steals"] == 1
    assert "[fabric: 2 worker(s), 4 shard(s), 1 steal(s)" in captured.err


def test_watch_replay_asserts_completion(tmp_path, capsys):
    jsonl = tmp_path / "progress.jsonl"
    assert main(["sweep", "--preset", "smoke", "--no-cache", "--no-registry",
                 "--jsonl", str(jsonl)]) == 0
    capsys.readouterr()
    assert main(["watch", str(jsonl), "--replay"]) == 0
    assert "4/4 points" in capsys.readouterr().out

    # strip the sweep_done tail: --replay must now fail
    lines = jsonl.read_text().splitlines()
    truncated = [l for l in lines if '"sweep_done"' not in l]
    jsonl.write_text("\n".join(truncated) + "\n")
    assert main(["watch", str(jsonl), "--replay"]) == 1
    assert "no sweep_done" in capsys.readouterr().err


def test_watch_replay_incompatible_with_follow(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    path.write_text("")
    assert main(["watch", str(path), "--replay", "--follow"]) == 2
    assert "incompatible" in capsys.readouterr().err

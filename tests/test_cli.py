"""Tests for the command-line interface (tiny scales)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_fig1_command(capsys):
    assert main(["fig1", "--scale", "0.1", "--iterations", "8"]) == 0
    out = capsys.readouterr().out
    assert "(a) no BG task" in out
    assert "core   3" in out


def test_fig3_command(capsys):
    assert main(["fig3", "--scale", "0.1", "--lb-period", "3"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_fig2_command_with_filters(capsys):
    rc = main(
        [
            "fig2",
            "--scale", "0.2",
            "--iterations", "20",
            "--cores", "8",
            "--apps", "jacobi2d",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "jacobi2d" in out
    assert "mol3d" not in out


def test_fig4_command(capsys):
    rc = main(
        ["fig4", "--scale", "0.2", "--iterations", "20", "--cores", "8",
         "--apps", "wave2d"]
    )
    assert rc == 0
    assert "Figure 4" in capsys.readouterr().out


def test_demo_command(capsys):
    rc = main(["demo", "--scale", "0.2", "--iterations", "20", "--cores", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "interfered, noLB" in out
    assert "interfered, LB" in out


def test_output_directory(tmp_path, capsys):
    rc = main(
        ["fig1", "--scale", "0.1", "--iterations", "8", "--output", str(tmp_path)]
    )
    assert rc == 0
    assert (tmp_path / "fig1.txt").exists()
    assert "(a) no BG task" in (tmp_path / "fig1.txt").read_text()


def test_headline_exit_code_reflects_claim(capsys):
    # a healthy configuration meets the claim -> exit 0
    rc = main(
        ["headline", "--scale", "0.5", "--iterations", "60", "--cores", "16",
         "--apps", "mol3d"]
    )
    assert rc == 0


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["demo", "--app", "linpack"])

"""Public API surface tests.

Guards the top-level exports users depend on: everything in
``repro.__all__`` must be importable, and the README's quickstart snippet
must keep working verbatim.
"""

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version_string():
    assert isinstance(repro.__version__, str)
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_readme_quickstart_snippet():
    """The exact flow from README.md, at reduced size."""
    from repro import (
        BackgroundSpec,
        Jacobi2D,
        LBPolicy,
        RefineVMInterferenceLB,
        Scenario,
        Wave2D,
        run_scenario,
    )

    app = Jacobi2D(grid_size=512)
    noisy_neighbour = BackgroundSpec(
        model=Wave2D.background(grid_size=181), core_ids=(0, 1), iterations=50
    )
    result = run_scenario(
        Scenario(
            app=app,
            num_cores=8,
            iterations=20,
            bg=noisy_neighbour,
            balancer=RefineVMInterferenceLB(epsilon=0.05),
            policy=LBPolicy(period_iterations=5),
        )
    )
    assert result.app_time > 0
    assert result.avg_power_w > 0
    assert result.app.total_migrations >= 0


def test_balancer_family_all_constructible():
    from repro import (
        GreedyLB,
        MigrationCostAwareLB,
        NetworkModel,
        NoLB,
        RefineLB,
        RefineVMInterferenceLB,
    )
    from repro.core import AdaptiveLBPolicy, CommAwareRefineLB, HierarchicalLB

    strategies = [
        NoLB(),
        RefineLB(),
        GreedyLB(),
        GreedyLB(aware=True),
        RefineVMInterferenceLB(),
        CommAwareRefineLB(),
        MigrationCostAwareLB(RefineVMInterferenceLB(), NetworkModel.native()),
        HierarchicalLB.by_node(4),
    ]
    names = [s.name for s in strategies]
    assert len(set(names)) == len(names)  # distinct, identifying names
    AdaptiveLBPolicy()  # constructible with defaults


def test_subpackages_importable():
    import repro.ampi
    import repro.apps
    import repro.cli
    import repro.cluster
    import repro.core
    import repro.experiments
    import repro.power
    import repro.projections
    import repro.runtime
    import repro.sim
    import repro.util

"""Unit tests for reductions."""

import pytest

from repro.cluster import NetworkModel
from repro.runtime import REDUCERS, Reduction


def test_sum_reduction_delivers_to_client():
    out = []
    red = Reduction([("a", 0), ("a", 1)], REDUCERS["sum"], client=out.append)
    red.contribute(("a", 0), 2.0)
    assert not red.complete
    assert red.pending == 1
    red.contribute(("a", 1), 3.0)
    assert red.complete
    assert red.result == 5.0
    assert out == [5.0]


def test_reducer_by_name():
    red = Reduction([("a", 0), ("a", 1)], "max")
    red.contribute(("a", 0), 2.0)
    red.contribute(("a", 1), 7.0)
    assert red.result == 7.0


def test_unknown_reducer_name():
    with pytest.raises(ValueError):
        Reduction([("a", 0)], "median")


def test_double_contribution_rejected():
    red = Reduction([("a", 0), ("a", 1)])
    red.contribute(("a", 0), 1.0)
    with pytest.raises(ValueError):
        red.contribute(("a", 0), 1.0)


def test_foreign_contribution_rejected():
    red = Reduction([("a", 0)])
    with pytest.raises(ValueError):
        red.contribute(("b", 5), 1.0)


def test_empty_contributors_rejected():
    with pytest.raises(ValueError):
        Reduction([])


def test_min_and_prod_reducers():
    r = Reduction([("a", 0), ("a", 1), ("a", 2)], "min")
    for i, v in enumerate([3.0, 1.0, 2.0]):
        r.contribute(("a", i), v)
    assert r.result == 1.0
    r = Reduction([("a", 0), ("a", 1)], "prod")
    r.contribute(("a", 0), 3.0)
    r.contribute(("a", 1), 4.0)
    assert r.result == 12.0


def test_tree_latency_scales_logarithmically():
    net = NetworkModel(latency_s=1e-3, bandwidth_Bps=1e9, per_message_overhead_s=0.0)
    assert Reduction.tree_latency(1, net) == 0.0
    t4 = Reduction.tree_latency(4, net)
    t16 = Reduction.tree_latency(16, net)
    assert t16 == pytest.approx(2 * t4)


def test_tree_latency_validation():
    with pytest.raises(ValueError):
        Reduction.tree_latency(0, NetworkModel.native())

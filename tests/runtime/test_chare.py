"""Unit tests for chares and chare arrays."""

import pytest

from repro.runtime import Chare, ChareArray


class UnitChare(Chare):
    def work(self, iteration):
        return 1.0


def test_chare_key_and_defaults():
    c = UnitChare(3, state_bytes=128.0)
    ChareArray("grid", [c])
    assert c.key == ("grid", 3)
    assert c.state_bytes == 128.0
    assert c.current_core is None
    assert c.executions == 0


def test_chare_validation():
    with pytest.raises(ValueError):
        UnitChare(-1)
    with pytest.raises(ValueError):
        UnitChare(0, state_bytes=-5.0)


def test_base_work_is_abstract():
    c = Chare(0)
    with pytest.raises(NotImplementedError):
        c.work(0)


def test_array_sorts_and_indexes():
    chares = [UnitChare(i) for i in (2, 0, 1)]
    arr = ChareArray("a", chares)
    assert [c.index for c in arr] == [0, 1, 2]
    assert arr[1].index == 1
    with pytest.raises(KeyError):
        arr[9]
    assert len(arr) == 3


def test_array_rejects_bad_construction():
    with pytest.raises(ValueError):
        ChareArray("", [UnitChare(0)])
    with pytest.raises(ValueError):
        ChareArray("a", [])
    with pytest.raises(ValueError):
        ChareArray("a", [UnitChare(0), UnitChare(0)])


def test_block_mapping_is_contiguous_and_even():
    arr = ChareArray("a", [UnitChare(i) for i in range(8)])
    mapping = arr.block_mapping([10, 11])
    assert [mapping[("a", i)] for i in range(8)] == [10] * 4 + [11] * 4


def test_block_mapping_uneven_split():
    arr = ChareArray("a", [UnitChare(i) for i in range(5)])
    mapping = arr.block_mapping([0, 1])
    counts = {0: 0, 1: 0}
    for cid in mapping.values():
        counts[cid] += 1
    assert counts == {0: 3, 1: 2}


def test_block_mapping_more_cores_than_chares():
    arr = ChareArray("a", [UnitChare(i) for i in range(2)])
    mapping = arr.block_mapping([0, 1, 2, 3])
    assert set(mapping.values()) == {0, 1}


def test_block_mapping_requires_cores():
    arr = ChareArray("a", [UnitChare(0)])
    with pytest.raises(ValueError):
        arr.block_mapping([])

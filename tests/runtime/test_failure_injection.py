"""Failure injection: broken strategies and work models must fail loudly.

A corrupted object mapping is the worst failure mode of an LB framework
(Charm++ crashes deep in pup code); this suite verifies every class of
invalid balancer decision is caught *at the LB step*, before it touches
the mapping, and that pathological work models cannot poison the
simulator's accounting.
"""

from typing import List

import pytest

from repro.cluster import Cluster, NetworkModel
from repro.core import LBPolicy, LoadBalancer, Migration
from repro.core.database import LBView
from repro.runtime import Chare, ChareArray, Runtime
from repro.sim import SimulationEngine


class FixedChare(Chare):
    def __init__(self, index, cost=0.05):
        super().__init__(index, state_bytes=64.0)
        self.cost = cost

    def work(self, iteration):
        return self.cost


class EvilBalancer(LoadBalancer):
    """Returns whatever migration list it was given."""

    name = "evil"

    def __init__(self, migrations: List[Migration]):
        self.migrations = migrations

    def decide(self, view: LBView) -> List[Migration]:
        return list(self.migrations)


def make_runtime(balancer):
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    rt = Runtime(
        eng,
        cl,
        [0, 1],
        net=NetworkModel.zero(),
        balancer=balancer,
        policy=LBPolicy(period_iterations=1, decision_overhead_s=0.0),
    )
    rt.register_array(ChareArray("g", [FixedChare(i) for i in range(4)]))
    return eng, rt


@pytest.mark.parametrize(
    "migration",
    [
        Migration(chare=("ghost", 9), src=0, dst=1),   # unknown chare
        Migration(chare=("g", 0), src=1, dst=0),       # wrong source
        Migration(chare=("g", 0), src=0, dst=7),       # core outside job
    ],
    ids=["unknown-chare", "wrong-source", "foreign-core"],
)
def test_invalid_migration_rejected_before_applying(migration):
    eng, rt = make_runtime(EvilBalancer([migration]))
    before = dict(rt.mapping)
    rt.start(iterations=3)
    with pytest.raises(ValueError):
        eng.run()
    assert rt.mapping == before  # mapping untouched
    assert rt.migration_count == 0


def test_duplicate_migration_rejected():
    m = Migration(chare=("g", 0), src=0, dst=1)
    eng, rt = make_runtime(EvilBalancer([m, m]))
    rt.start(iterations=3)
    with pytest.raises(ValueError):
        eng.run()


def test_self_migration_unconstructible():
    with pytest.raises(ValueError):
        Migration(chare=("g", 0), src=0, dst=0)


class NegativeWorkChare(Chare):
    def work(self, iteration):
        return -1.0


def test_negative_work_model_rejected():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    rt = Runtime(eng, cl, [0], net=NetworkModel.zero())
    rt.register_array(ChareArray("g", [NegativeWorkChare(0)]))
    rt.start(iterations=1)
    with pytest.raises(ValueError):
        eng.run()


class NaNWorkChare(Chare):
    def work(self, iteration):
        return float("nan")


def test_nan_work_model_rejected():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=1)
    rt = Runtime(eng, cl, [0], net=NetworkModel.zero())
    rt.register_array(ChareArray("g", [NaNWorkChare(0)]))
    rt.start(iterations=1)
    with pytest.raises(ValueError):
        eng.run()


class ThrowingBalancer(LoadBalancer):
    name = "throws"

    def decide(self, view):
        raise RuntimeError("strategy blew up")


def test_strategy_exception_propagates():
    eng, rt = make_runtime(ThrowingBalancer())
    rt.start(iterations=3)
    with pytest.raises(RuntimeError, match="strategy blew up"):
        eng.run()

"""Unit tests for communication graphs and mapping-dependent comm cost."""

import pytest

from repro.apps import Jacobi2D, Mol3D
from repro.cluster import Cluster, NetworkModel
from repro.runtime import Chare, ChareArray, CommGraph, Runtime
from repro.sim import SimulationEngine


class TestCommGraph:
    def test_edges_accumulate_and_are_undirected(self):
        g = CommGraph()
        g.add_edge(("a", 0), ("a", 1), 100.0)
        g.add_edge(("a", 1), ("a", 0), 50.0)
        assert g.num_edges == 1
        assert g.bytes_between(("a", 0), ("a", 1)) == 150.0
        assert g.bytes_between(("a", 1), ("a", 0)) == 150.0

    def test_neighbors(self):
        g = CommGraph.chain("a", 4, 10.0)
        assert g.neighbors(("a", 1)) == {("a", 0): 10.0, ("a", 2): 10.0}
        assert g.neighbors(("a", 9)) == {}

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            CommGraph().add_edge(("a", 0), ("a", 0), 1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommGraph().add_edge(("a", 0), ("a", 1), -1.0)

    def test_chain_and_ring_shapes(self):
        chain = CommGraph.chain("a", 5, 1.0)
        ring = CommGraph.ring("a", 5, 1.0)
        assert chain.num_edges == 4
        assert ring.num_edges == 5
        assert ring.bytes_between(("a", 4), ("a", 0)) == 1.0

    def test_colocated_edges_are_free(self):
        g = CommGraph.chain("a", 4, 100.0)
        mapping = {("a", i): 0 for i in range(4)}
        per_core = g.per_core_external_bytes(mapping)
        assert per_core == {0: 0.0}
        assert g.cut_bytes(mapping) == 0.0

    def test_cross_core_edges_charge_both_sides(self):
        g = CommGraph.chain("a", 2, 100.0)
        mapping = {("a", 0): 0, ("a", 1): 1}
        per_core = g.per_core_external_bytes(mapping)
        assert per_core[0] == 100.0
        assert per_core[1] == 100.0
        assert g.cut_bytes(mapping) == 100.0

    def test_same_node_discount(self):
        g = CommGraph.chain("a", 2, 100.0)
        mapping = {("a", 0): 0, ("a", 1): 1}
        per_core = g.per_core_external_bytes(
            mapping, node_of={0: 0, 1: 0}, local_factor=0.25
        )
        assert per_core[0] == 25.0
        per_core = g.per_core_external_bytes(
            mapping, node_of={0: 0, 1: 1}, local_factor=0.25
        )
        assert per_core[0] == 100.0

    def test_unmapped_endpoint_raises(self):
        g = CommGraph.chain("a", 2, 1.0)
        with pytest.raises(ValueError):
            g.per_core_external_bytes({("a", 0): 0})


class TestAppGraphs:
    def test_jacobi_graph_matches_decomposition(self):
        app = Jacobi2D(grid_size=512, odf=4)
        g = app.comm_graph(4)
        assert g.num_edges == 4 * 4 - 1
        assert g.bytes_between(("jacobi2d", 0), ("jacobi2d", 1)) == 2 * 512 * 8

    def test_mol3d_graph_volumes_track_density(self):
        app = Mol3D(total_particles=8000, odf=4, density_cv=0.5, seed=1)
        g = app.comm_graph(2)
        volumes = [
            g.bytes_between(("mol3d", i), ("mol3d", (i + 1) % 8)) for i in range(8)
        ]
        assert max(volumes) > min(v for v in volumes if v > 0)


class TestRuntimeCommDelay:
    class UnitChare(Chare):
        def __init__(self, index):
            super().__init__(index, state_bytes=0.0)

        def work(self, iteration):
            return 0.01

    def _runtime(self, mapping, graph):
        eng = SimulationEngine()
        cl = Cluster(eng, num_nodes=1, cores_per_node=2)
        net = NetworkModel(latency_s=0.0, bandwidth_Bps=1e6, per_message_overhead_s=0.0)
        rt = Runtime(eng, cl, [0, 1], net=net, comm_graph=graph)
        arr = ChareArray("a", [self.UnitChare(i) for i in range(4)])
        rt.register_array(arr, mapping=mapping)
        return rt

    def test_colocated_mapping_has_no_halo_delay(self):
        graph = CommGraph.chain("a", 4, 1e6)  # 1 MB edges, 1 MB/s net
        # contiguous blocks: only the 1<->2 edge crosses cores
        mapping = {("a", 0): 0, ("a", 1): 0, ("a", 2): 1, ("a", 3): 1}
        rt = self._runtime(mapping, graph)
        contiguous = rt.comm_delay()
        # interleaved: all 3 edges cross
        mapping = {("a", 0): 0, ("a", 1): 1, ("a", 2): 0, ("a", 3): 1}
        rt2 = self._runtime(mapping, graph)
        interleaved = rt2.comm_delay()
        assert interleaved > 2.5 * contiguous

    def test_graph_overrides_flat_comm_bytes(self):
        graph = CommGraph.chain("a", 4, 0.0)
        mapping = {("a", i): i % 2 for i in range(4)}
        rt = self._runtime(mapping, graph)
        # zero-byte edges: only the reduction tree (one 8-byte hop at
        # 1 MB/s) remains — the flat comm_bytes default plays no part
        assert rt.comm_delay() == pytest.approx(8.0 / 1e6)

    def test_lb_database_records_comm_partners(self):
        graph = CommGraph.chain("a", 4, 123.0)
        mapping = {("a", 0): 0, ("a", 1): 0, ("a", 2): 1, ("a", 3): 1}
        rt = self._runtime(mapping, graph)
        rt.start(iterations=1)
        rt.engine.run()
        view = rt.db.build_view(rt.mapping)
        task1 = next(
            t for c in view.cores for t in c.tasks if t.chare == ("a", 1)
        )
        assert dict(task1.comm) == {("a", 0): 123.0, ("a", 2): 123.0}

    def test_use_comm_graph_requires_app_support(self):
        from repro.apps import SyntheticApp

        eng = SimulationEngine()
        cl = Cluster(eng, num_nodes=1, cores_per_node=2)
        app = SyntheticApp([0.01] * 4)
        with pytest.raises(ValueError):
            app.instantiate(eng, cl, [0, 1], use_comm_graph=True)

    def test_stencil_app_runs_with_graph(self):
        eng = SimulationEngine()
        cl = Cluster(eng, num_nodes=1, cores_per_node=4)
        app = Jacobi2D(grid_size=256, odf=2, jitter_amp=0.0)
        rt = app.instantiate(eng, cl, [0, 1, 2, 3], use_comm_graph=True)
        rt.start(iterations=3)
        eng.run()
        assert rt.done

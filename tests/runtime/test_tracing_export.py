"""Round-trip tests: TraceLog -> trace events -> chrome trace file.

Satellite coverage for :mod:`repro.runtime.tracing` +
:mod:`repro.projections.export`: a hand-built trace log must survive the
export pipeline with event ordering and counter-track integrity intact.
"""

import json

import pytest

from repro.perf.profiler import PhaseProfiler
from repro.runtime.tracing import (
    IterationEvent,
    LBStepEvent,
    MigrationEvent,
    TaskEvent,
    TraceLog,
)
from repro.projections.export import (
    audit_counter_events,
    to_trace_events,
    write_chrome_trace,
)

_US = 1e6


def _trace():
    """Two cores, two iterations, one LB step with one migration."""
    log = TraceLog()
    spans = [
        (0, ("grid", 0), 0, 0.0, 0.4),
        (1, ("grid", 1), 0, 0.0, 0.2),
        (0, ("grid", 0), 1, 0.5, 0.9),
        (1, ("grid", 1), 1, 0.5, 0.7),
    ]
    for core, chare, it, start, end in spans:
        log.add_task(TaskEvent(core, chare, it, start, end, end - start))
    log.add_iteration(IterationEvent(0, 0.0, 0.4))
    log.add_iteration(IterationEvent(1, 0.5, 0.9))
    log.add_lb_step(LBStepEvent(0.45, 0, 1, 0.02, 0.3, 0.4))
    log.add_migration(MigrationEvent(0.45, ("grid", 0), 0, 1, 4096.0))
    return log


def _audit_records():
    """Committed audit records shaped like AuditTrail output."""
    return [
        {
            "time": 0.45, "num_migrations": 1,
            "cores": [
                {"core": 0, "load": 0.6, "bg_est": 0.2, "bg_true": 0.2},
                {"core": 1, "load": 0.2, "bg_est": 0.0, "bg_true": 0.0},
            ],
        },
        {
            "time": 0.95, "num_migrations": 0,
            "cores": [
                {"core": 0, "load": 0.4, "bg_est": 0.0, "bg_true": None},
                {"core": 1, "load": 0.4, "bg_est": 0.0, "bg_true": None},
            ],
        },
    ]


class TestToTraceEvents:
    def test_every_trace_record_round_trips_to_an_event(self):
        log = _trace()
        events = to_trace_events(log)
        tasks = [e for e in events if e.get("cat") == "task"]
        migrations = [e for e in events if e.get("cat") == "migration"]
        lb = [e for e in events if e.get("cat") == "lb"]
        assert len(tasks) == len(log.tasks)
        assert len(migrations) == len(log.migrations)
        assert len(lb) == len(log.lb_steps)
        # timestamps/durations are the source spans in microseconds
        for ev, t in zip(tasks, log.tasks):
            assert ev["ts"] == pytest.approx(t.start * _US)
            assert ev["dur"] == pytest.approx((t.end - t.start) * _US)
            assert ev["tid"] == t.core_id
            assert ev["args"]["iteration"] == t.iteration

    def test_event_ordering_is_preserved_per_core(self):
        events = to_trace_events(_trace())
        for cid in (0, 1):
            ts = [e["ts"] for e in events
                  if e.get("cat") == "task" and e["tid"] == cid]
            assert ts == sorted(ts)

    def test_metadata_names_process_and_every_core_thread(self):
        events = to_trace_events(_trace(), job_name="jacobi", pid=3)
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "jacobi"
        assert {e.get("tid") for e in meta[1:]} == {0, 1}
        assert all(e["pid"] == 3 for e in events)

    def test_empty_log_exports_just_process_metadata(self):
        (only,) = to_trace_events(TraceLog())
        assert only["ph"] == "M" and only["name"] == "process_name"


class TestAuditCounterEvents:
    def test_counter_tracks_cover_every_committed_record(self):
        events = audit_counter_events(_audit_records())
        by_name = {}
        for e in events:
            assert e["ph"] == "C" and e["cat"] == "lb-audit"
            by_name.setdefault(e["name"], []).append(e)
        # bg_true is None in the second record, so that series has one
        # sample; the others have one per record
        assert len(by_name["O_p true (s)"]) == 1
        assert len(by_name["per-core load (s)"]) == 2
        assert len(by_name["O_p estimated (s)"]) == 2
        assert len(by_name["migrations (cumulative)"]) == 2

    def test_migration_counter_is_cumulative_and_monotonic(self):
        counts = [
            e["args"]["count"]
            for e in audit_counter_events(_audit_records())
            if e["name"] == "migrations (cumulative)"
        ]
        assert counts == [1, 1]

    def test_uncommitted_records_are_skipped(self):
        records = _audit_records()
        records[0]["time"] = None
        events = audit_counter_events(records)
        assert {e["ts"] for e in events} == {0.95 * _US}


class TestWriteChromeTrace:
    def test_file_round_trip_preserves_all_lanes(self, tmp_path):
        prof = PhaseProfiler(record_intervals=True)
        with prof.phase("engine.run"):
            pass
        path = tmp_path / "out.trace.json"
        n = write_chrome_trace(
            _trace(), str(path),
            audit=_audit_records(), profile=prof,
        )
        events = json.load(open(path))
        assert len(events) == n
        # simulated lanes on pid 1, profiler lane on pid 99
        assert {e["pid"] for e in events} == {1, 99}
        cats = {e.get("cat") for e in events if "cat" in e}
        assert cats == {"task", "migration", "lb", "lb-audit", "profile"}
        profile_spans = [e for e in events if e.get("cat") == "profile"]
        assert [e["name"] for e in profile_spans] == ["engine.run"]

    def test_extra_traces_get_their_own_process_lanes(self, tmp_path):
        path = tmp_path / "multi.trace.json"
        write_chrome_trace(_trace(), str(path), extra=[_trace(), _trace()])
        events = json.load(open(path))
        assert {e["pid"] for e in events} == {1, 2, 3}

    def test_exported_json_is_loadable_and_ordered(self, tmp_path):
        """The viewer contract: valid JSON array, per-track monotonic ts."""
        path = tmp_path / "ordered.trace.json"
        write_chrome_trace(_trace(), str(path), audit=_audit_records())
        events = json.load(open(path))
        assert isinstance(events, list)
        per_track = {}
        for e in events:
            if "ts" in e:
                per_track.setdefault((e["pid"], e.get("tid"), e.get("cat")),
                                     []).append(e["ts"])
        for key, ts in per_track.items():
            assert ts == sorted(ts), key

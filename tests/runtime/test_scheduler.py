"""Unit tests for the per-core message scheduler."""

import pytest

from repro.runtime.messages import ComputeMsg
from repro.runtime.scheduler import CoreScheduler
from repro.sim import SharedCore, SimulationEngine


def make_sched(work=1.0):
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    done, drains = [], []
    sched = CoreScheduler(
        core,
        owner="app",
        weight=1.0,
        work_of=lambda msg: work,
        on_task_done=lambda msg, proc: done.append((msg, proc)),
        on_drain=lambda: drains.append(eng.now),
    )
    return eng, core, sched, done, drains


def test_executes_fifo_one_at_a_time():
    eng, core, sched, done, drains = make_sched(work=1.0)
    for i in range(3):
        sched.enqueue(ComputeMsg(chare=("a", i), iteration=0))
    assert sched.busy
    assert sched.queued == 2
    eng.run()
    assert [msg.chare for msg, _ in done] == [("a", 0), ("a", 1), ("a", 2)]
    # strictly sequential: completions at 1, 2, 3
    assert [p.completed_at for _, p in done] == pytest.approx([1.0, 2.0, 3.0])
    assert drains == [3.0]
    assert sched.tasks_executed == 3


def test_enqueue_while_running_extends_queue():
    eng, core, sched, done, drains = make_sched(work=2.0)
    sched.enqueue(ComputeMsg(chare=("a", 0), iteration=0))
    eng.schedule_after(1.0, sched.enqueue, ComputeMsg(chare=("a", 1), iteration=0))
    eng.run()
    assert len(done) == 2
    assert drains == [4.0]


def test_drain_fires_per_batch():
    eng, core, sched, done, drains = make_sched(work=1.0)
    sched.enqueue(ComputeMsg(chare=("a", 0), iteration=0))
    eng.run()
    sched.enqueue(ComputeMsg(chare=("a", 1), iteration=1))
    eng.run()
    assert drains == [1.0, 2.0]


def test_interference_stretches_wall_not_cpu():
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    done = []
    sched = CoreScheduler(
        core,
        owner="app",
        weight=1.0,
        work_of=lambda msg: 2.0,
        on_task_done=lambda msg, proc: done.append(proc),
        on_drain=lambda: None,
    )
    from repro.sim import SimProcess

    core.dispatch(SimProcess("hog", 100.0, owner="bg"))
    sched.enqueue(ComputeMsg(chare=("a", 0), iteration=0))
    eng.run(until=10.0)
    proc = done[0]
    assert proc.cpu_time == pytest.approx(2.0)  # instrumented CPU time
    assert proc.completed_at == pytest.approx(4.0)  # stretched wall time

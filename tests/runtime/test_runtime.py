"""Unit and integration tests for the Runtime."""

import pytest

from repro.cluster import Cluster, Interferer, NetworkModel
from repro.core import LBPolicy, NoLB, RefineVMInterferenceLB
from repro.runtime import Chare, ChareArray, Runtime
from repro.sim import SimulationEngine


class FixedChare(Chare):
    """Chare with constant per-iteration CPU cost."""

    def __init__(self, index, cost=0.1, state_bytes=1024.0):
        super().__init__(index, state_bytes=state_bytes)
        self.cost = cost

    def work(self, iteration):
        return self.cost


def make_job(num_cores=2, chares_per_core=4, cost=0.1, **kw):
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=max(num_cores, 1))
    rt = Runtime(
        eng,
        cl,
        list(range(num_cores)),
        net=kw.pop("net", NetworkModel.zero()),
        **kw,
    )
    arr = ChareArray(
        "grid", [FixedChare(i, cost) for i in range(num_cores * chares_per_core)]
    )
    rt.register_array(arr)
    return eng, cl, rt


def test_isolated_run_iteration_time_is_per_core_work():
    eng, cl, rt = make_job(num_cores=2, chares_per_core=4, cost=0.1)
    rt.start(iterations=5)
    eng.run()
    assert rt.done
    # each core runs 4 x 0.1s per iteration, zero comm cost
    assert rt.finished_at == pytest.approx(5 * 0.4)
    assert all(t == pytest.approx(0.4) for t in rt.stats.iteration_times)


def test_stats_before_finish_raises():
    eng, cl, rt = make_job()
    rt.start(iterations=2)
    with pytest.raises(RuntimeError):
        _ = rt.stats


def test_barrier_waits_for_slowest_core():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    rt = Runtime(eng, cl, [0, 1], net=NetworkModel.zero())
    slow = [FixedChare(0, cost=1.0)]
    fast = [FixedChare(1, cost=0.1)]
    arr = ChareArray("g", slow + fast)
    rt.register_array(arr, mapping={("g", 0): 0, ("g", 1): 1})
    rt.start(iterations=3)
    eng.run()
    assert rt.finished_at == pytest.approx(3.0)  # bound by the slow core


def test_comm_delay_separates_iterations():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    net = NetworkModel(latency_s=0.01, bandwidth_Bps=1e9, per_message_overhead_s=0.0)
    rt = Runtime(eng, cl, [0, 1], net=net, comm_bytes=0.0)
    arr = ChareArray("g", [FixedChare(i, cost=0.1) for i in range(2)])
    rt.register_array(arr)
    rt.start(iterations=2)
    eng.run()
    # two iterations of 0.1 + one reduction-tree gap (log2(2)=1 hop)
    assert rt.finished_at == pytest.approx(0.1 + 0.01 + 0.1)


def test_delayed_start():
    eng, cl, rt = make_job(num_cores=1, chares_per_core=1, cost=1.0)
    rt.start(iterations=1, at=5.0)
    eng.run()
    assert rt.finished_at == pytest.approx(6.0)


def test_interference_doubles_iteration_time_without_lb():
    eng, cl, rt = make_job(num_cores=2, chares_per_core=4, cost=0.1)
    Interferer(eng, cl.core(1), start=0.0)
    rt.start(iterations=5)
    eng.run(until=100.0)
    # core 1 runs at 50%: its 0.4s of work takes 0.8s per iteration
    assert rt.finished_at == pytest.approx(5 * 0.8)


def test_lb_migrates_away_from_interfered_core():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    rt = Runtime(
        eng,
        cl,
        [0, 1, 2, 3],
        net=NetworkModel.zero(),
        balancer=RefineVMInterferenceLB(0.05),
        policy=LBPolicy(period_iterations=3, decision_overhead_s=0.0),
        tracing=True,
    )
    arr = ChareArray("g", [FixedChare(i, cost=0.1) for i in range(32)])
    rt.register_array(arr)
    Interferer(eng, cl.core(0), start=0.0)
    rt.start(iterations=12)
    eng.run(until=1000.0)
    assert rt.done
    assert rt.migration_count > 0
    # after balancing, core 0 should host noticeably fewer objects
    core0_objs = sum(1 for cid in rt.mapping.values() if cid == 0)
    assert core0_objs < 8
    # and late iterations should be faster than early (interfered) ones
    early = rt.stats.iteration_times[0]
    late = rt.stats.iteration_times[-1]
    assert late < early * 0.75


def test_nolb_keeps_static_mapping():
    eng, cl, rt = make_job(
        num_cores=2,
        chares_per_core=4,
        balancer=NoLB(),
        policy=LBPolicy(period_iterations=2, decision_overhead_s=0.0),
    )
    before = dict(rt.mapping)
    rt.start(iterations=6)
    eng.run()
    assert rt.mapping == before
    assert rt.migration_count == 0
    assert rt.lb_step_count == 2  # steps ran, decided nothing


def test_lb_policy_cadence_respected():
    eng, cl, rt = make_job(
        num_cores=2,
        balancer=NoLB(),
        policy=LBPolicy(period_iterations=4, decision_overhead_s=0.0),
    )
    rt.start(iterations=12)
    eng.run()
    assert rt.lb_step_count == 2  # after iterations 4 and 8 (not 12)


def test_migration_cost_is_charged():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    net = NetworkModel(latency_s=0.05, bandwidth_Bps=1e9, per_message_overhead_s=0.0)
    rt = Runtime(
        eng,
        cl,
        [0, 1],
        net=net,
        balancer=RefineVMInterferenceLB(0.05),
        policy=LBPolicy(period_iterations=1, decision_overhead_s=0.0),
    )
    # all chares start on core 0 -> first LB step must migrate
    arr = ChareArray("g", [FixedChare(i, cost=0.1, state_bytes=1000.0) for i in range(8)])
    rt.register_array(arr, mapping={("g", i): 0 for i in range(8)})
    rt.start(iterations=4)
    eng.run()
    assert rt.migration_count >= 4
    assert rt.migration_cost_s > 0.0


def test_tracing_records_tasks_and_iterations():
    eng, cl, rt = make_job(num_cores=2, chares_per_core=2, tracing=True)
    rt.start(iterations=3)
    eng.run()
    assert len(rt.trace.tasks) == 3 * 4
    assert len(rt.trace.iterations) == 3
    it0 = rt.trace.iteration_span(0)
    assert it0 is not None and it0.end > it0.start


def test_tracing_disabled_by_default():
    eng, cl, rt = make_job()
    rt.start(iterations=2)
    eng.run()
    assert rt.trace.tasks == []


def test_two_jobs_coexist_and_interfere():
    """The Figure-2 setup in miniature: an app + a 2-core bg job."""
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=4)
    app = Runtime(eng, cl, [0, 1, 2, 3], name="app", net=NetworkModel.zero())
    app.register_array(ChareArray("g", [FixedChare(i, 0.1) for i in range(16)]))
    bg = Runtime(eng, cl, [2, 3], name="bg", net=NetworkModel.zero())
    bg.register_array(ChareArray("h", [FixedChare(i, 0.1) for i in range(2)]))
    app.start(iterations=10)
    bg.start(iterations=10)
    eng.run()
    assert app.done and bg.done
    # cores 2,3 are shared: the app is slower than its isolated 0.4s/iter
    assert app.finished_at > 10 * 0.4
    # and the bg job is slower than its isolated 0.1s/iter
    assert bg.finished_at > 10 * 0.1


def test_validation_errors():
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    with pytest.raises(ValueError):
        Runtime(eng, cl, [])
    with pytest.raises(ValueError):
        Runtime(eng, cl, [0, 0])
    rt = Runtime(eng, cl, [0])
    with pytest.raises(ValueError):
        rt.start(iterations=1)  # no arrays
    arr = ChareArray("g", [FixedChare(0)])
    with pytest.raises(ValueError):
        rt.register_array(arr, mapping={("g", 0): 9})  # outside job
    rt.register_array(arr)
    with pytest.raises(ValueError):
        rt.register_array(arr)  # duplicate name
    rt.start(iterations=1)
    with pytest.raises(RuntimeError):
        rt.start(iterations=1)  # double start

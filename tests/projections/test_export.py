"""Tests for the Chrome trace_event exporter."""

import json

import pytest

from repro.cluster import Cluster, NetworkModel
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.projections import to_trace_events, write_chrome_trace
from repro.runtime import Chare, ChareArray, Runtime
from repro.sim import SimulationEngine


class FixedChare(Chare):
    def __init__(self, index, cost=0.1):
        super().__init__(index, state_bytes=64.0)
        self.cost = cost

    def work(self, iteration):
        return self.cost


def traced_run(balanced=False):
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=2)
    rt = Runtime(
        eng,
        cl,
        [0, 1],
        net=NetworkModel.zero(),
        tracing=True,
        balancer=RefineVMInterferenceLB(0.05) if balanced else None,
        policy=LBPolicy(period_iterations=2, decision_overhead_s=0.0),
    )
    # imbalanced initial mapping so the balancer migrates
    arr = ChareArray("g", [FixedChare(i) for i in range(4)])
    mapping = {("g", i): 0 for i in range(4)} if balanced else None
    rt.register_array(arr, mapping=mapping)
    rt.start(iterations=4)
    eng.run()
    return rt


def test_events_have_required_fields():
    rt = traced_run()
    events = to_trace_events(rt.trace)
    task_events = [e for e in events if e.get("cat") == "task"]
    assert len(task_events) == 4 * 4  # 4 chares x 4 iterations
    for e in task_events:
        assert e["ph"] == "X"
        assert e["dur"] >= 0
        assert e["ts"] >= 0
        assert "iteration" in e["args"]


def test_metadata_names_cores_and_process():
    rt = traced_run()
    events = to_trace_events(rt.trace, job_name="myjob")
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "myjob" in names
    assert "core 0" in names and "core 1" in names


def test_migration_and_lb_events_present():
    rt = traced_run(balanced=True)
    events = to_trace_events(rt.trace)
    assert any(e.get("cat") == "migration" for e in events)
    assert any(e.get("cat") == "lb" for e in events)


def test_timestamps_are_microseconds():
    rt = traced_run()
    events = to_trace_events(rt.trace)
    last_task = max(
        (e for e in events if e.get("cat") == "task"), key=lambda e: e["ts"]
    )
    # run lasts 4 x 0.2 s; in us that's 800000-ish, not 0.8
    assert last_task["ts"] > 1000


def test_write_chrome_trace_roundtrip(tmp_path):
    rt = traced_run(balanced=True)
    path = tmp_path / "trace.json"
    n = write_chrome_trace(rt.trace, str(path), job_name="app")
    data = json.loads(path.read_text())
    assert len(data) == n
    assert all("ph" in e for e in data)


def test_multiple_jobs_get_distinct_pids(tmp_path):
    rt1 = traced_run()
    rt2 = traced_run()
    path = tmp_path / "both.json"
    write_chrome_trace(rt1.trace, str(path), extra=[rt2.trace])
    data = json.loads(path.read_text())
    assert {e["pid"] for e in data} == {1, 2}

"""Unit tests for timeline extraction, rendering and summaries."""

import pytest

from repro.cluster import Cluster, Interferer, NetworkModel
from repro.projections import (
    extract_timelines,
    render_timelines,
    summarize_utilization,
)
from repro.projections.timeline import Interval
from repro.runtime import Chare, ChareArray, Runtime
from repro.runtime.tracing import TaskEvent, TraceLog
from repro.sim import SimulationEngine


class FixedChare(Chare):
    def __init__(self, index, cost=0.1):
        super().__init__(index, state_bytes=64.0)
        self.cost = cost

    def work(self, iteration):
        return self.cost


def traced_run(num_cores=2, chares_per_core=2, iterations=3, interfere=None):
    eng = SimulationEngine()
    cl = Cluster(eng, num_nodes=1, cores_per_node=num_cores)
    rt = Runtime(eng, cl, list(range(num_cores)), net=NetworkModel.zero(), tracing=True)
    arr = ChareArray("g", [FixedChare(i) for i in range(num_cores * chares_per_core)])
    rt.register_array(arr)
    if interfere is not None:
        Interferer(eng, cl.core(interfere), start=0.0)
    rt.start(iterations=iterations)
    eng.run(until=100.0)
    return rt


def test_interval_properties():
    busy = Interval(0.0, 1.0, chare=("a", 0), iteration=0)
    idle = Interval(1.0, 3.0)
    assert busy.duration == 1.0 and not busy.is_idle
    assert idle.duration == 2.0 and idle.is_idle


def test_extract_covers_full_span_without_gaps():
    rt = traced_run()
    tls = extract_timelines(rt.trace, [0, 1])
    for tl in tls.values():
        for a, b in zip(tl.intervals, tl.intervals[1:]):
            assert b.start == pytest.approx(a.end)


def test_clean_run_cores_are_fully_busy():
    rt = traced_run(num_cores=2, chares_per_core=2)
    tls = extract_timelines(rt.trace, [0, 1])
    assert tls[0].utilization == pytest.approx(1.0, abs=1e-6)
    assert tls[1].utilization == pytest.approx(1.0, abs=1e-6)


def test_interfered_run_shows_idle_on_clean_cores():
    rt = traced_run(num_cores=2, interfere=1)
    tls = extract_timelines(rt.trace, [0, 1])
    # core 1 is stretched -> still fully busy from the app's perspective
    # core 0 finishes early each iteration and idles at the barrier
    assert tls[0].idle_time > 0.0
    assert tls[0].utilization == pytest.approx(0.5, abs=0.05)
    assert tls[1].utilization == pytest.approx(1.0, abs=1e-6)


def test_iteration_window_selection():
    rt = traced_run(iterations=4)
    tls_all = extract_timelines(rt.trace, [0])
    tls_one = extract_timelines(rt.trace, [0], iterations=(1, 1))
    assert tls_one[0].busy_time < tls_all[0].busy_time
    assert tls_one[0].busy_time == pytest.approx(0.2)  # 2 chares x 0.1


def test_window_validation():
    rt = traced_run()
    with pytest.raises(ValueError):
        extract_timelines(rt.trace, [0], t_start=1.0, iterations=(0, 0))
    with pytest.raises(ValueError):
        extract_timelines(rt.trace, [0], iterations=(7, 9))
    with pytest.raises(ValueError):
        extract_timelines(rt.trace, [0], t_start=2.0, t_end=1.0)


def test_render_produces_row_per_core():
    rt = traced_run(num_cores=2, interfere=1)
    tls = extract_timelines(rt.trace, [0, 1])
    text = render_timelines(tls, width=40)
    lines = text.splitlines()
    assert len(lines) == 3  # header + 2 cores
    assert "core   0" in lines[1]
    assert "." in lines[1]  # idle on the clean core
    assert "." not in lines[2].split("|")[1]  # interfered core never idles


def test_render_empty_input():
    assert render_timelines({}) == ""


def test_render_glyphs_are_stable_per_chare():
    rt = traced_run(num_cores=1, chares_per_core=2, iterations=2)
    tls = extract_timelines(rt.trace, [0])
    text = render_timelines(tls, width=40, show_utilization=False)
    bar = text.splitlines()[1].split("|")[1]
    # two chares alternate: exactly two distinct glyphs
    assert len(set(bar) - {" ", "."}) == 2


def test_summary_identifies_idle_core():
    rt = traced_run(num_cores=2, interfere=1)
    summary = summarize_utilization(rt.trace, [0, 1])
    assert summary.min_core == 0
    assert summary.max_core == 1
    assert 0.5 < summary.mean < 1.0
    assert len(summary.iteration_durations) == 3


def test_summary_iteration_window():
    rt = traced_run(iterations=5)
    summary = summarize_utilization(rt.trace, [0, 1], iterations=(1, 3))
    assert len(summary.iteration_durations) == 3

"""The balancer base-class audit hook: every strategy participates."""

import pytest

from repro.cluster.netmodel import NetworkModel
from repro.core.commaware import CommAwareRefineLB
from repro.core.database import LBDatabase, LBView
from repro.core.greedy import GreedyLB
from repro.core.hierarchical import HierarchicalLB
from repro.core.interference import RefineVMInterferenceLB
from repro.core.migration_cost import MigrationCostAwareLB
from repro.telemetry import Telemetry
from repro.telemetry.audit import (
    ACCEPTED,
    REASON_GAIN_BELOW_COST,
    REJECTED,
)


def _make_view(loads, bg, tasks_per_core=2, window=1.0):
    """A hand-built LBView: ``loads[cid]`` task seconds split over tasks."""
    from repro.core.database import CoreLoad, TaskRecord

    cores = []
    idx = 0
    for cid, total in enumerate(loads):
        tasks = []
        for _ in range(tasks_per_core):
            tasks.append(
                TaskRecord(
                    chare=("app", idx),
                    cpu_time=total / tasks_per_core,
                    state_bytes=1024.0,
                    comm=(),
                )
            )
            idx += 1
        cores.append(
            CoreLoad(
                core_id=cid,
                tasks=tuple(tasks),
                bg_load=bg[cid],
            )
        )
    return LBView(cores=tuple(cores), window=window)


IMBALANCED = ([1.0, 1.0, 1.0, 1.0], [2.0, 0.0, 0.0, 0.0])


@pytest.mark.parametrize(
    "make_balancer",
    [
        lambda: RefineVMInterferenceLB(0.05),
        lambda: CommAwareRefineLB(0.05),
        lambda: GreedyLB(),
        lambda: GreedyLB(aware=True),
        lambda: HierarchicalLB.by_node(2),
        lambda: MigrationCostAwareLB(
            RefineVMInterferenceLB(0.05), NetworkModel.native()
        ),
    ],
    ids=["refine-vm", "comm-aware", "greedy", "greedy-aware", "hierarchical",
         "migcost"],
)
class TestEveryStrategyAudits:
    def test_step_record_emitted_with_candidates(self, make_balancer):
        balancer = make_balancer()
        telemetry = Telemetry()
        balancer.attach_telemetry(telemetry)
        view = _make_view(*IMBALANCED)
        migrations = balancer.balance(view)
        assert len(telemetry.audit) == 1
        record = telemetry.audit.records[0]
        assert record["strategy"] == balancer.name
        assert record["num_migrations"] == len(migrations)
        assert record["candidates"], "instrumented strategies report candidates"
        for cand in record["candidates"]:
            assert {"chare", "src", "dst", "cpu_time", "outcome", "reason"} <= set(cand)

    def test_decisions_identical_with_and_without_sink(self, make_balancer):
        plain = make_balancer().balance(_make_view(*IMBALANCED))
        audited = make_balancer()
        audited.attach_telemetry(Telemetry())
        assert audited.balance(_make_view(*IMBALANCED)) == plain

    def test_no_sink_means_no_buffer(self, make_balancer):
        balancer = make_balancer()
        balancer.balance(_make_view(*IMBALANCED))
        assert balancer._step_candidates is None


class TestCompositeStrategies:
    def test_hierarchical_inner_candidates_land_in_outer_step(self):
        balancer = HierarchicalLB.by_node(2)
        telemetry = Telemetry()
        balancer.attach_telemetry(telemetry)
        balancer.balance(_make_view(*IMBALANCED))
        assert len(telemetry.audit) == 1  # no duplicate step from the inner
        outcomes = {c["outcome"] for c in telemetry.audit.records[0]["candidates"]}
        assert ACCEPTED in outcomes

    def test_migcost_gate_notes_suppressed_migrations(self):
        # an expensive network makes any migration cost-ineffective
        net = NetworkModel(latency_s=10.0, bandwidth_Bps=1.0)
        balancer = MigrationCostAwareLB(
            RefineVMInterferenceLB(0.05), net, safety_factor=1.0
        )
        telemetry = Telemetry()
        balancer.attach_telemetry(telemetry)
        migrations = balancer.balance(_make_view(*IMBALANCED))
        assert migrations == []
        record = telemetry.audit.records[0]
        suppressed = [
            c for c in record["candidates"]
            if c["reason"] == REASON_GAIN_BELOW_COST
        ]
        assert suppressed and all(c["outcome"] == REJECTED for c in suppressed)

    def test_thresholds_come_from_inner_strategy(self):
        inner = RefineVMInterferenceLB(0.05)
        outer = HierarchicalLB.by_node(2, inner=inner)
        view = _make_view(*IMBALANCED)
        assert outer.audit_thresholds(view) == inner.audit_thresholds(view)
        t_avg, eps = inner.audit_thresholds(view)
        assert t_avg == pytest.approx(1.5)
        assert eps == pytest.approx(0.05 * 1.5)

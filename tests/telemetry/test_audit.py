"""Unit tests for the LB decision audit trail and its summaries."""

import json

import pytest

from repro.telemetry.audit import (
    ACCEPTED,
    AUDIT_SCHEMA,
    REASON_ACCEPTED,
    REASON_RECEIVER_WOULD_EXCEED,
    REJECTED,
    AuditTrail,
    audit_summary,
    read_audit_jsonl,
    write_audit_jsonl,
)


class _FakeTask:
    def __init__(self, chare, cpu_time, state_bytes=1000.0):
        self.chare = chare
        self.cpu_time = cpu_time
        self.state_bytes = state_bytes


class _FakeCore:
    def __init__(self, core_id, tasks, bg_load):
        self.core_id = core_id
        self.tasks = tasks
        self.task_time = sum(t.cpu_time for t in tasks)
        self.bg_load = bg_load


class _FakeView:
    def __init__(self, cores, window=1.0):
        self.cores = cores
        self.window = window


class _FakeMigration:
    def __init__(self, chare, src, dst):
        self.chare = chare
        self.src = src
        self.dst = dst


def _view():
    return _FakeView(
        [
            _FakeCore(0, [_FakeTask(("app", 0), 0.4), _FakeTask(("app", 1), 0.2)], 0.5),
            _FakeCore(1, [_FakeTask(("app", 2), 0.1)], 0.0),
        ]
    )


def _open_step(trail):
    return trail.on_step(
        strategy="refine-vm-interference",
        view=_view(),
        migrations=[_FakeMigration(("app", 0), 0, 1)],
        candidates=[
            {
                "chare": ["app", 0], "src": 0, "dst": 1, "cpu_time": 0.4,
                "outcome": ACCEPTED, "reason": REASON_ACCEPTED,
            }
        ],
        t_avg=0.6,
        epsilon_s=0.03,
    )


class TestAuditTrail:
    def test_on_step_captures_view_and_decision(self):
        trail = AuditTrail()
        record = _open_step(trail)
        assert len(trail) == 1
        assert record["schema"] == AUDIT_SCHEMA
        assert record["step"] == 0
        assert record["t_avg"] == 0.6
        assert record["epsilon_s"] == 0.03
        assert [c["core"] for c in record["cores"]] == [0, 1]
        assert record["cores"][0]["bg_est"] == 0.5
        assert record["cores"][0]["load"] == pytest.approx(1.1)
        assert record["num_migrations"] == 1
        assert record["bytes_moved"] == 1000.0
        assert record["migrations"][0]["chare"] == ["app", 0]
        assert record["migrations"][0]["cpu_time"] == 0.4
        # runtime fields stay null until commit
        assert record["time"] is None
        assert record["cores"][0]["bg_true"] is None

    def test_commit_step_fills_runtime_context(self):
        trail = AuditTrail()
        _open_step(trail)
        record = trail.commit_step(
            time=2.5,
            iteration=5,
            bg_true={0: 0.48, 1: 0.0},
            migration_cost_s=0.01,
            decision_overhead_s=0.002,
        )
        assert record["time"] == 2.5
        assert record["iteration"] == 5
        assert record["cores"][0]["bg_true"] == 0.48
        assert record["overhead_s"] == pytest.approx(0.012)

    def test_commit_without_step_raises(self):
        with pytest.raises(RuntimeError, match="without a pending"):
            AuditTrail().commit_step(
                time=0.0, iteration=0, bg_true={},
                migration_cost_s=0.0, decision_overhead_s=0.0,
            )


class TestJsonlIO:
    def test_round_trip_is_exact(self, tmp_path):
        trail = AuditTrail()
        _open_step(trail)
        trail.commit_step(
            time=1.0, iteration=2, bg_true={0: 0.5, 1: 0.0},
            migration_cost_s=0.01, decision_overhead_s=0.0,
        )
        path = tmp_path / "audit.jsonl"
        assert write_audit_jsonl(trail.records, path) == 1
        loaded = read_audit_jsonl(path)
        assert loaded == json.loads(json.dumps(trail.records))

    def test_write_is_byte_deterministic(self, tmp_path):
        trail = AuditTrail()
        _open_step(trail)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_audit_jsonl(trail.records, a)
        write_audit_jsonl(json.loads(json.dumps(trail.records)), b)
        assert a.read_bytes() == b.read_bytes()

    def test_read_rejects_bad_json_mid_file_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{broken\n{"ok": 1}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:1"):
            read_audit_jsonl(path)

    def test_read_rejects_non_object_records_mid_file(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text('[1, 2]\n{"ok": 1}\n')
        with pytest.raises(ValueError, match="not an object"):
            read_audit_jsonl(path)

    def test_read_skips_malformed_trailing_line_with_warning(self, tmp_path, caplog):
        """A truncated final line (killed writer) must not lose the trail."""
        path = tmp_path / "trunc.jsonl"
        path.write_text('{"ok": 1}\n{"step": 2, "mig')
        with caplog.at_level("WARNING", logger="repro.telemetry.audit"):
            loaded = read_audit_jsonl(path)
        assert loaded == [{"ok": 1}]
        assert any("trailing line" in r.message for r in caplog.records)

    def test_read_skips_non_object_trailing_record(self, tmp_path, caplog):
        path = tmp_path / "list.jsonl"
        path.write_text('{"ok": 1}\n[1, 2]\n')
        with caplog.at_level("WARNING", logger="repro.telemetry.audit"):
            loaded = read_audit_jsonl(path)
        assert loaded == [{"ok": 1}]
        assert any("non-object trailing" in r.message for r in caplog.records)

    def test_all_malformed_file_still_raises(self, tmp_path):
        """Trailing-line tolerance needs surviving records — a file that
        is nothing but garbage is not a truncated trail."""
        path = tmp_path / "garbage.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(ValueError, match=r"garbage\.jsonl:1"):
            read_audit_jsonl(path)
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_audit_jsonl(path)

    def test_write_is_atomic_on_failure(self, tmp_path):
        """An exploding record iterator must not leave a partial file."""
        path = tmp_path / "atomic.jsonl"
        path.write_text('{"previous": true}\n')

        def exploding():
            yield {"ok": 1}
            raise RuntimeError("killed mid-write")

        with pytest.raises(RuntimeError, match="killed mid-write"):
            write_audit_jsonl(exploding(), path)
        # the prior contents survive and no temp file is left behind
        assert path.read_text() == '{"previous": true}\n'
        assert list(tmp_path.glob("*.tmp")) == []


class TestAuditSummary:
    def test_empty_summary(self):
        s = audit_summary([])
        assert s["lb_steps"] == 0
        assert s["migrations"] == 0
        assert s["reasons"] == {}
        assert s["estimation_error"]["mean_abs"] == 0.0

    def test_counts_reasons_and_estimation_error(self):
        trail = AuditTrail()
        _open_step(trail)
        trail.commit_step(
            time=1.0, iteration=2, bg_true={0: 0.4, 1: 0.1},
            migration_cost_s=0.01, decision_overhead_s=0.002,
        )
        record = _open_step(trail)
        record["candidates"].append(
            {
                "chare": ["app", 1], "src": 0, "dst": None, "cpu_time": 0.2,
                "outcome": REJECTED, "reason": REASON_RECEIVER_WOULD_EXCEED,
            }
        )
        s = audit_summary(trail.records)
        assert s["lb_steps"] == 2
        assert s["migrations"] == 2
        assert s["overhead_s"] == pytest.approx(0.012)  # only committed step
        assert s["reasons"] == {
            f"{ACCEPTED}:{REASON_ACCEPTED}": 2,
            f"{REJECTED}:{REASON_RECEIVER_WOULD_EXCEED}": 1,
        }
        est = s["estimation_error"]
        # core 0: est 0.5 vs true 0.4 -> +0.1; core 1: 0.0 vs 0.1 -> -0.1
        assert est["per_core"]["0"]["mean_err"] == pytest.approx(0.1)
        assert est["per_core"]["1"]["mean_err"] == pytest.approx(-0.1)
        assert est["mean_abs"] == pytest.approx(0.1)
        assert est["max_abs"] == pytest.approx(0.1)
        # uncommitted step contributed no estimation samples
        assert est["per_core"]["0"]["steps"] == 1

"""Unit tests for the metrics registry and its no-op fast path."""

import tracemalloc

import pytest

from repro.telemetry.registry import (
    DEFAULT_DURATION_BUCKETS_S,
    NULL_REGISTRY,
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    sample_quantile,
    summarize_samples,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        c = Counter("migrations")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_is_last_write_wins(self):
        g = Gauge("util")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75

    def test_histogram_buckets_and_mean(self):
        h = Histogram("d", bounds=[1.0, 10.0])
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # 0.5 and 1.0 land at or below the first edge (bisect_left), 5.0
        # in the second bucket, 100.0 in the overflow
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="sorted, non-empty"):
            Histogram("d", bounds=[])
        with pytest.raises(ValueError, match="sorted, non-empty"):
            Histogram("d", bounds=[2.0, 1.0])


class TestSampleQuantiles:
    def test_linear_interpolation_matches_type7(self):
        """The numpy-default (type-7) estimator over sorted samples."""
        samples = [1.0, 2.0, 3.0, 4.0]
        assert sample_quantile(samples, 0.0) == 1.0
        assert sample_quantile(samples, 0.5) == 2.5
        assert sample_quantile(samples, 1.0) == 4.0
        assert sample_quantile(list(range(1, 11)), 0.9) == pytest.approx(9.1)
        assert sample_quantile(list(range(1, 11)), 0.99) == pytest.approx(9.91)

    def test_input_order_does_not_matter(self):
        assert sample_quantile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.5

    def test_degenerate_inputs(self):
        assert sample_quantile([], 0.5) == 0.0
        assert sample_quantile([7.0], 0.99) == 7.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            sample_quantile([1.0], 1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            sample_quantile([1.0], -0.1)

    def test_summarize_samples_reports_the_shared_quantiles(self):
        """One summary shape for inspect and bench reports."""
        s = summarize_samples(list(range(1, 11)))
        assert set(s) == {"count", "mean", "p50", "p90", "p99"}
        assert s["count"] == 10.0
        assert s["mean"] == pytest.approx(5.5)
        assert s["p50"] == pytest.approx(5.5)
        assert s["p90"] == pytest.approx(9.1)
        assert s["p99"] == pytest.approx(9.91)
        assert summarize_samples([]) == {
            "count": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_summary_keys_track_the_shared_quantile_tuple(self):
        keys = {f"p{int(q * 100)}" for q in SUMMARY_QUANTILES}
        assert keys <= set(summarize_samples([1.0]))


class TestHistogramQuantiles:
    def test_interpolates_within_the_target_bucket(self):
        h = Histogram("d", bounds=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # rank 2 of 4 lands at the end of the (1, 2] bucket's first half
        assert h.quantile(0.5) == pytest.approx(1.5)
        # the first bucket interpolates from 0, not -inf
        assert 0.0 < h.quantile(0.1) <= 1.0

    def test_overflow_bucket_reports_the_last_bound(self):
        h = Histogram("d", bounds=[1.0, 10.0])
        h.observe(1000.0)
        assert h.quantile(0.99) == 10.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("d", bounds=[1.0]).quantile(0.5) == 0.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Histogram("d", bounds=[1.0]).quantile(2.0)

    def test_percentiles_uses_the_repo_standard_quantiles(self):
        h = Histogram("d", bounds=[1.0, 2.0])
        h.observe(0.5)
        p = h.percentiles()
        assert set(p) == {"p50", "p90", "p99"}
        assert p["p50"] == h.quantile(0.5)

    def test_snapshot_carries_percentile_estimates(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.5, 3.0):
            reg.histogram("lat", bounds=[1.0, 2.0, 4.0]).observe(v)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["percentiles"] == reg.histogram("lat").percentiles()
        assert snap["percentiles"]["p50"] <= snap["percentiles"]["p99"]


class TestRegistry:
    def test_instruments_are_memoised_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert reg.counter("a") is not reg.counter("other")

    def test_default_histogram_bounds(self):
        reg = MetricsRegistry()
        assert reg.histogram("iter").bounds == DEFAULT_DURATION_BUCKETS_S

    def test_snapshot_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.counter("a").inc()
        reg.gauge("g").set(0.5)
        reg.histogram("h", bounds=[1.0]).observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 2.0
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_disabled_registry_hands_out_shared_null_singletons(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x") is _NULL_COUNTER
        assert reg.counter("y") is _NULL_COUNTER
        assert reg.gauge("x") is _NULL_GAUGE
        assert reg.histogram("x") is _NULL_HISTOGRAM
        assert NULL_REGISTRY.counter("anything") is _NULL_COUNTER

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_path_allocates_nothing_per_event(self):
        """The disabled fast path must not allocate per event."""
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("warm")  # warm the lookup path
        counter.inc()
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(1000):
                reg.counter("warm").inc(1.0)
                reg.gauge("warm").set(0.5)
                reg.histogram("warm").observe(0.1)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # zero net allocation from 3000 no-op events (tracemalloc's own
        # bookkeeping can jitter a few hundred bytes; 3000 boxed floats
        # would be tens of kilobytes)
        assert after - before < 512

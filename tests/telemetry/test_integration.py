"""End-to-end telemetry guarantees: purity, determinism, inspectability.

The contract the tentpole rests on: telemetry observes the simulation
without perturbing it, audited sweeps are byte-deterministic across
serial, parallel, and warm-cache execution, and the audit artifacts
round-trip through the inspect report.
"""

import hashlib
import json

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.sweep import (
    SweepSpec,
    normalize_params,
    run_point,
    run_point_audited,
    run_sweep,
)
from repro.telemetry import audit_summary
from repro.telemetry.inspect import inspect_audit, load_audit_dir

TINY = {"app": "jacobi2d", "scale": 0.05, "iterations": 6, "lb_period": 2}

#: Every point runs a balancer against injected background load so the
#: audit trail has migrations, rejections, and bg_true samples to check.
SPEC = SweepSpec(
    name="audited",
    base={**TINY, "bg": True, "balancer": "refine-vm", "cores": 4},
    axes={"seed": [0, 1]},
)


def _jsonl_digests(audit_dir):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(audit_dir.glob("*.jsonl"))
    }


# ---------------------------------------------------------------------------
# observational purity
# ---------------------------------------------------------------------------


class TestObservationalPurity:
    def test_audited_run_matches_plain_run_exactly(self):
        """Attaching telemetry must not change a single simulated number."""
        params = normalize_params({**TINY, "cores": 4, "bg": True,
                                   "balancer": "refine-vm"})
        plain = run_point(params)
        audited, records, trace, profile = run_point_audited(params)
        assert audited == plain
        assert records, "a balanced run produces audit records"
        assert trace is not None
        assert profile["phases"], "the profiler saw the run's hot phases"
        assert "engine.run" in profile["phases"]

    def test_bg_estimator_tracks_injected_truth(self):
        """Eq. (2): O_p residual estimation vs the true injected bg load.

        In this simulator the estimator is exact up to float rounding, so
        the audit's estimation error is a regression canary — any drift
        means the window accounting broke.
        """
        params = normalize_params({**TINY, "cores": 4, "bg": True,
                                   "balancer": "refine-vm"})
        _, records, _, _ = run_point_audited(params)
        est = audit_summary(records)["estimation_error"]
        assert est["max_abs"] < 1e-9


# ---------------------------------------------------------------------------
# audited sweeps
# ---------------------------------------------------------------------------


class TestAuditedSweep:
    def test_audit_dir_gets_jsonl_and_trace_per_point(self, tmp_path):
        res = run_sweep(SPEC, cache=ResultCache(tmp_path / "cache"),
                        audit_dir=tmp_path / "audit")
        jsonls = sorted((tmp_path / "audit").glob("*.jsonl"))
        traces = sorted((tmp_path / "audit").glob("*.trace.json"))
        assert len(jsonls) == len(traces) == len(res.results) == 2
        # filenames are index-prefixed slugs of the point labels
        assert jsonls[0].name.startswith("000-")
        for r in res.results:
            assert r.audit is not None
            assert r.audit["lb_steps"] > 0

    def test_point_audit_summary_matches_written_records(self, tmp_path):
        res = run_sweep(SPEC, audit_dir=tmp_path)
        by_file = load_audit_dir(tmp_path)
        for r in res.results:
            stem = f"{r.index:03d}-" + sorted(by_file)[r.index].split("-", 1)[1]
            assert audit_summary(by_file[stem]) == r.audit

    def test_serial_parallel_and_warm_cache_are_byte_identical(self, tmp_path):
        """The acceptance criterion: audit output is execution-strategy-free."""
        cache = ResultCache(tmp_path / "cache")
        serial = run_sweep(SPEC, workers=1, cache=cache,
                           audit_dir=tmp_path / "serial")
        parallel = run_sweep(SPEC, workers=2,
                             cache=ResultCache(tmp_path / "cache2"),
                             audit_dir=tmp_path / "parallel")
        warm = run_sweep(SPEC, workers=1, cache=cache,
                         audit_dir=tmp_path / "warm")
        digests = _jsonl_digests(tmp_path / "serial")
        assert digests == _jsonl_digests(tmp_path / "parallel")
        assert digests == _jsonl_digests(tmp_path / "warm")
        assert warm.metrics.hit_rate == 1.0
        assert ([r.audit for r in serial.results]
                == [r.audit for r in parallel.results]
                == [r.audit for r in warm.results])

    def test_plain_cache_entry_is_not_enough_for_an_audited_sweep(self, tmp_path):
        """Entries cached without audit extras must be re-executed."""
        cache = ResultCache(tmp_path / "cache")
        plain = run_sweep(SPEC, cache=cache)
        audited = run_sweep(SPEC, cache=cache, audit_dir=tmp_path / "audit")
        assert audited.metrics.cache_hits == 0
        assert audited.summaries() == plain.summaries()
        # ...and afterwards both audited and plain sweeps hit
        assert run_sweep(SPEC, cache=cache).metrics.hit_rate == 1.0
        rewarm = run_sweep(SPEC, cache=cache, audit_dir=tmp_path / "warm")
        assert rewarm.metrics.hit_rate == 1.0

    def test_warm_hits_rewrite_jsonl_but_not_traces(self, tmp_path):
        """Chrome traces come from live runs only; audit JSONL is replayed."""
        cache = ResultCache(tmp_path / "cache")
        run_sweep(SPEC, cache=cache, audit_dir=tmp_path / "cold")
        run_sweep(SPEC, cache=cache, audit_dir=tmp_path / "warm")
        assert len(list((tmp_path / "warm").glob("*.jsonl"))) == 2
        assert list((tmp_path / "warm").glob("*.trace.json")) == []


# ---------------------------------------------------------------------------
# Perfetto / Chrome trace format
# ---------------------------------------------------------------------------


class TestTraceFormat:
    @pytest.fixture(scope="class")
    def trace_events(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("audit")
        run_sweep(SweepSpec(name="one", base=SPEC.base), audit_dir=out)
        (path,) = out.glob("*.trace.json")
        return json.load(open(path))

    def test_counter_events_follow_trace_event_format(self, trace_events):
        counters = [e for e in trace_events if e["ph"] == "C"]
        assert counters, "audited traces must carry counter samples"
        for e in counters:
            assert set(e) == {"name", "cat", "ph", "pid", "ts", "args"}
            assert e["cat"] == "lb-audit"
            assert e["pid"] == 1
            assert e["ts"] >= 0 and isinstance(e["ts"], float)
            assert e["args"] and all(
                isinstance(v, (int, float)) for v in e["args"].values()
            )

    def test_expected_counter_tracks_present(self, trace_events):
        names = {e["name"] for e in trace_events if e["ph"] == "C"}
        assert names == {
            "per-core load (s)",
            "O_p estimated (s)",
            "O_p true (s)",
            "migrations (cumulative)",
        }

    def test_counter_timestamps_are_monotonic_per_track(self, trace_events):
        by_name = {}
        for e in trace_events:
            if e["ph"] == "C":
                by_name.setdefault(e["name"], []).append(e["ts"])
        for name, ts in by_name.items():
            assert ts == sorted(ts), name

    def test_counters_coexist_with_task_slices(self, trace_events):
        phases = {e["ph"] for e in trace_events}
        assert "X" in phases and "C" in phases and "M" in phases


# ---------------------------------------------------------------------------
# inspect
# ---------------------------------------------------------------------------


class TestInspect:
    def test_report_over_a_directory(self, tmp_path):
        run_sweep(SPEC, audit_dir=tmp_path)
        report = inspect_audit(tmp_path)
        assert len(report["sources"]) == 2
        combined = report["combined"]
        assert combined["lb_steps"] > 0
        assert combined["estimation_error"]["max_abs"] < 1e-9
        assert combined["top_migrations"]
        assert "refine-vm-interference" in report["strategies"]

    def test_single_file_and_dir_agree_per_source(self, tmp_path):
        run_sweep(SweepSpec(name="one", base=SPEC.base), audit_dir=tmp_path)
        (path,) = tmp_path.glob("*.jsonl")
        from_file = inspect_audit(path)
        from_dir = inspect_audit(tmp_path)
        assert from_file["sources"] == from_dir["sources"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_audit_dir(tmp_path / "nope")

    def test_top_limits_migration_list(self, tmp_path):
        run_sweep(SPEC, audit_dir=tmp_path)
        full = inspect_audit(tmp_path, top=1000)["combined"]
        capped = inspect_audit(tmp_path, top=1)["combined"]
        assert len(capped["top_migrations"]) == 1
        assert capped["top_migrations"][0] == full["top_migrations"][0]

"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationEngine


def test_initial_state():
    eng = SimulationEngine()
    assert eng.now == 0.0
    assert eng.pending == 0
    assert eng.events_fired == 0


def test_events_fire_in_time_order():
    eng = SimulationEngine()
    out = []
    eng.schedule_after(3.0, out.append, "c")
    eng.schedule_after(1.0, out.append, "a")
    eng.schedule_after(2.0, out.append, "b")
    eng.run()
    assert out == ["a", "b", "c"]
    assert eng.now == 3.0


def test_equal_time_events_fifo():
    eng = SimulationEngine()
    out = []
    for label in "abcde":
        eng.schedule_at(5.0, out.append, label)
    eng.run()
    assert out == list("abcde")


def test_schedule_in_past_raises():
    eng = SimulationEngine()
    eng.schedule_after(1.0, lambda: None)
    eng.run()
    with pytest.raises(ValueError):
        eng.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    eng = SimulationEngine()
    with pytest.raises(ValueError):
        eng.schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = SimulationEngine()
    out = []
    h = eng.schedule_after(1.0, out.append, "x")
    eng.schedule_after(2.0, out.append, "y")
    eng.cancel(h)
    eng.run()
    assert out == ["y"]
    assert eng.events_cancelled == 1


def test_cancel_is_idempotent():
    eng = SimulationEngine()
    h = eng.schedule_after(1.0, lambda: None)
    eng.cancel(h)
    eng.cancel(h)
    assert eng.events_cancelled == 1


def test_run_until_stops_and_resumes():
    eng = SimulationEngine()
    out = []
    eng.schedule_after(1.0, out.append, 1)
    eng.schedule_after(5.0, out.append, 5)
    eng.run(until=3.0)
    assert out == [1]
    assert eng.now == 3.0
    eng.run()
    assert out == [1, 5]
    assert eng.now == 5.0


def test_run_until_advances_time_even_without_events():
    eng = SimulationEngine()
    eng.run(until=10.0)
    assert eng.now == 10.0


def test_events_scheduled_during_run_are_honored():
    eng = SimulationEngine()
    out = []

    def chain(n):
        out.append(n)
        if n < 5:
            eng.schedule_after(1.0, chain, n + 1)

    eng.schedule_after(0.0, chain, 1)
    eng.run()
    assert out == [1, 2, 3, 4, 5]
    assert eng.now == 4.0


def test_max_events_limit():
    eng = SimulationEngine()
    out = []
    for i in range(10):
        eng.schedule_after(float(i), out.append, i)
    eng.run(max_events=3)
    assert out == [0, 1, 2]


def test_step_returns_false_when_drained():
    eng = SimulationEngine()
    assert eng.step() is False
    eng.schedule_after(1.0, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_run_is_not_reentrant():
    eng = SimulationEngine()

    def nested():
        with pytest.raises(RuntimeError):
            eng.run()

    eng.schedule_after(1.0, nested)
    eng.run()


# ----------------------------------------------------------------------
# hot-path mechanics: __slots__ handles, lazy deletion, heap compaction
# ----------------------------------------------------------------------
def test_event_handle_has_slots():
    eng = SimulationEngine()
    h = eng.schedule_after(1.0, lambda: None)
    assert not hasattr(h, "__dict__")
    with pytest.raises(AttributeError):
        h.arbitrary_attribute = 1


def test_heap_compaction_drops_cancelled_events():
    eng = SimulationEngine()
    out = []
    handles = [eng.schedule_after(float(i + 1), out.append, i) for i in range(200)]
    for h in handles[:150]:  # cancelled majority triggers compaction
        eng.cancel(h)
    assert eng.pending == 50
    assert len(eng._heap) < 200  # dead events physically removed
    eng.run()
    assert out == list(range(150, 200))
    assert eng.events_cancelled == 150


def test_compaction_below_min_heap_is_lazy():
    eng = SimulationEngine()
    handles = [eng.schedule_after(float(i + 1), lambda: None) for i in range(10)]
    for h in handles:
        eng.cancel(h)
    # too small to compact: lazy deletion keeps them until popped
    assert len(eng._heap) == 10
    assert eng.pending == 0
    eng.run()
    assert len(eng._heap) == 0


def test_compaction_mid_run_keeps_draining():
    # regression: compaction must edit the heap list in place, because
    # run() iterates a local alias to it
    eng = SimulationEngine()
    out = []

    def burst():
        handles = [
            eng.schedule_after(float(i + 100), out.append, -1) for i in range(200)
        ]
        for h in handles:
            eng.cancel(h)
        eng.schedule_after(1.0, out.append, "after")

    eng.schedule_after(1.0, burst)
    eng.run()
    assert out == ["after"]


def test_compaction_preserves_fifo_order():
    eng = SimulationEngine()
    out = []
    keep = []
    cancel = []
    for i in range(100):
        keep.append(eng.schedule_at(5.0, out.append, i))
        cancel.append(eng.schedule_at(5.0, out.append, -1))
    for h in cancel:
        eng.cancel(h)
    eng.run()
    assert out == list(range(100))

"""Tests for heterogeneous core speeds.

The key property: a slow core makes tasks *occupy* the CPU longer, which
is what the runtime instruments — so measurement-based balancing handles
heterogeneity without any special casing.
"""

import pytest

from repro.apps import SyntheticApp
from repro.cluster import Cluster, NetworkModel
from repro.core import LBPolicy, RefineVMInterferenceLB
from repro.sim import SharedCore, SimProcess, SimulationEngine


def test_slow_core_stretches_wall_time():
    eng = SimulationEngine()
    core = SharedCore(eng, 0, speed=0.5)
    p = SimProcess("p", 2.0)
    core.dispatch(p)
    eng.run()
    assert p.completed_at == pytest.approx(4.0)  # 2 ref-CPU-s at half speed
    # OS accounting sees 4 s of occupancy
    assert p.cpu_time == pytest.approx(4.0)
    core.sync()
    assert core.busy_time == pytest.approx(4.0)


def test_fast_core_compresses_wall_time():
    eng = SimulationEngine()
    core = SharedCore(eng, 0, speed=2.0)
    p = SimProcess("p", 2.0)
    core.dispatch(p)
    eng.run()
    assert p.completed_at == pytest.approx(1.0)


def test_sharing_on_slow_core():
    eng = SimulationEngine()
    core = SharedCore(eng, 0, speed=0.5)
    a = SimProcess("a", 1.0)
    b = SimProcess("b", 1.0)
    core.dispatch(a)
    core.dispatch(b)
    eng.run()
    # each gets 50% of a half-speed core: 1 ref-CPU-s takes 4 wall-s
    assert a.completed_at == pytest.approx(4.0)
    assert b.completed_at == pytest.approx(4.0)


def test_invalid_speed_rejected():
    eng = SimulationEngine()
    with pytest.raises(ValueError):
        SharedCore(eng, 0, speed=0.0)


def test_cluster_core_speeds_validation():
    eng = SimulationEngine()
    with pytest.raises(ValueError):
        Cluster(eng, num_nodes=1, cores_per_node=4, core_speeds=[1.0, 1.0])


def test_lb_balances_heterogeneous_cluster_automatically():
    """A half-speed core must end up with roughly half the objects.

    No interference at all here — the imbalance comes purely from core
    heterogeneity, which the measured (occupancy) task times embed.
    """
    eng = SimulationEngine()
    cl = Cluster(
        eng, num_nodes=1, cores_per_node=4, core_speeds=[0.5, 1.0, 1.0, 1.0]
    )
    app = SyntheticApp([0.01] * 32, state_bytes=64.0)
    rt = app.instantiate(
        eng,
        cl,
        [0, 1, 2, 3],
        net=NetworkModel.zero(),
        balancer=RefineVMInterferenceLB(0.05),
        policy=LBPolicy(period_iterations=5, decision_overhead_s=0.0),
    )
    rt.start(iterations=40)
    eng.run()
    assert rt.done

    nolb_eng = SimulationEngine()
    nolb_cl = Cluster(
        nolb_eng, num_nodes=1, cores_per_node=4, core_speeds=[0.5, 1.0, 1.0, 1.0]
    )
    nolb = SyntheticApp([0.01] * 32, state_bytes=64.0).instantiate(
        nolb_eng, nolb_cl, [0, 1, 2, 3], net=NetworkModel.zero()
    )
    nolb.start(iterations=40)
    nolb_eng.run()

    # noLB: the slow core's 8 objects take 0.16 s/iter vs 0.08 elsewhere
    assert nolb.finished_at == pytest.approx(40 * 0.16, rel=0.01)
    # balanced: slow core keeps fewer objects and the run is much faster
    slow_objs = sum(1 for cid in rt.mapping.values() if cid == 0)
    assert slow_objs <= 6
    assert rt.finished_at < 0.75 * nolb.finished_at

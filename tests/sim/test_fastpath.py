"""Fast-path internals: the vectorized solo fold and its exactness basis.

Scenario-level parity lives in ``tests/experiments/test_backend_parity``;
these tests pin the two load-bearing implementation facts:

* ``np.add.accumulate`` on a float64 vector is a *sequential left fold*
  (the whole reason the vectorized prefix-sum can be bit-identical to
  the event engine's one-completion-at-a-time accumulation);
* the vectorized path (``>= _VEC_MIN`` chares on a solo core) produces
  exactly the event engine's results, not merely close ones.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import SyntheticApp
from repro.core import LBPolicy, RefineLB
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import Scenario
from repro.sim import fastpath


def test_np_accumulate_is_sequential_left_fold():
    vals = [0.1, 0.2, 0.30000000000000004, 1e-9, 7.7, 0.0, 3.3e-5]
    arr = np.array(vals)
    acc = np.add.accumulate(arr)
    total = 0.0
    for i, v in enumerate(vals):
        total += v
        assert acc[i] == total  # bit-exact, not approx


@settings(max_examples=200, deadline=None)
@given(
    vals=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=64,
    )
)
def test_np_accumulate_matches_python_fold(vals):
    acc = np.add.accumulate(np.array(vals))
    total = 0.0
    for i, v in enumerate(vals):
        total += v
        assert acc[i] == total


def _vec_scenario(num_chares, cores):
    # deterministic ragged loads; enough chares per core to clear _VEC_MIN
    app = SyntheticApp(
        lambda index, iteration: 0.01 + 0.001 * ((index * 7 + iteration * 3) % 11),
        num_chares=num_chares,
        state_bytes=256.0,
    )
    return Scenario(
        app=app,
        num_cores=cores,
        iterations=6,
        balancer=RefineLB(0.05),
        policy=LBPolicy(period_iterations=3),
    )


@pytest.mark.parametrize("per_core", [fastpath._VEC_MIN, fastpath._VEC_MIN + 9])
def test_vectorized_solo_fold_bit_identical(per_core):
    cores = 2
    res_e = run_scenario(_vec_scenario(per_core * cores, cores), backend="events")
    res_f = run_scenario(_vec_scenario(per_core * cores, cores), backend="fast")
    assert res_e.app == res_f.app
    assert res_e.energy == res_f.energy
    assert res_e.final_mapping == res_f.final_mapping
    for t in res_f.app.iteration_times:
        assert t > 0.0 and not math.isnan(t)


def test_below_vec_min_scalar_fold_bit_identical():
    cores = 2
    res_e = run_scenario(_vec_scenario(6, cores), backend="events")
    res_f = run_scenario(_vec_scenario(6, cores), backend="fast")
    assert res_e.app == res_f.app
    assert res_e.energy == res_f.energy


def test_negative_work_rejected():
    app = SyntheticApp(
        lambda index, iteration: -1.0 if iteration == 2 else 0.01,
        num_chares=4,
    )
    sc = Scenario(app=app, num_cores=2, iterations=5)
    with pytest.raises(ValueError, match="negative"):
        run_scenario(sc, backend="fast")

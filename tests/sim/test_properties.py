"""Hypothesis property tests for the simulation substrate.

Invariants the whole reproduction rests on:

* **work conservation** — a core distributes exactly one CPU-second per
  busy wall-second, regardless of how processes come and go;
* **accounting closure** — busy + idle == elapsed wall time;
* **weight fairness** — concurrently running processes consume CPU in
  proportion to their weights;
* **event ordering** — engine time is monotone and FIFO among ties.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SharedCore, SimProcess, SimulationEngine

demands = st.floats(min_value=0.001, max_value=5.0, allow_nan=False)
weights = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
arrivals = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@st.composite
def process_schedules(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        (draw(arrivals), draw(demands), draw(weights)) for _ in range(n)
    ]


@given(process_schedules())
@settings(max_examples=150, deadline=None)
def test_cpu_time_is_conserved(schedule):
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    procs = []
    for i, (at, demand, weight) in enumerate(schedule):
        p = SimProcess(f"p{i}", demand, weight=weight)
        procs.append(p)
        eng.schedule_at(at, core.dispatch, p)
    eng.run()
    core.sync()
    total_cpu = sum(p.cpu_time for p in procs)
    # every busy wall-second hands out exactly one CPU-second
    assert math.isclose(total_cpu, core.busy_time, rel_tol=1e-9, abs_tol=1e-9)
    # and every process received exactly its demand
    for (at, demand, weight), p in zip(schedule, procs):
        assert math.isclose(p.cpu_time, demand, rel_tol=1e-9, abs_tol=1e-9)


@given(process_schedules(), st.floats(min_value=0.5, max_value=30.0))
@settings(max_examples=150, deadline=None)
def test_busy_plus_idle_equals_wall(schedule, horizon):
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    for i, (at, demand, weight) in enumerate(schedule):
        eng.schedule_at(at, core.dispatch, SimProcess(f"p{i}", demand, weight=weight))
    eng.run(until=horizon)
    core.sync()
    assert math.isclose(
        core.busy_time + core.idle_time, eng.now, rel_tol=1e-9, abs_tol=1e-9
    )


@given(
    st.lists(weights, min_size=2, max_size=6),
    st.floats(min_value=0.5, max_value=3.0),
)
@settings(max_examples=100, deadline=None)
def test_weighted_fair_shares_while_all_running(ws, window):
    """Over a window where all processes stay runnable, consumption is
    exactly proportional to weight."""
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    procs = []
    for i, w in enumerate(ws):
        # demand large enough that nobody finishes inside the window
        p = SimProcess(f"p{i}", demand=1000.0, weight=w)
        procs.append(p)
        core.dispatch(p)
    eng.run(until=window)
    core.sync()
    total_w = sum(ws)
    for p, w in zip(procs, ws):
        expected = window * w / total_w
        assert math.isclose(p.cpu_time, expected, rel_tol=1e-9, abs_tol=1e-9)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(times):
    eng = SimulationEngine()
    fired = []
    for t in times:
        eng.schedule_at(t, fired.append, t)
    eng.run()
    assert fired == sorted(times)
    assert eng.now == max(times)


@given(process_schedules())
@settings(max_examples=50, deadline=None)
def test_simulation_is_deterministic(schedule):
    def run_once():
        eng = SimulationEngine()
        core = SharedCore(eng, 0)
        order = []
        for i, (at, demand, weight) in enumerate(schedule):
            p = SimProcess(
                f"p{i}", demand, weight=weight,
                on_complete=lambda pr: order.append((pr.name, pr.completed_at)),
            )
            eng.schedule_at(at, core.dispatch, p)
        eng.run()
        return order

    assert run_once() == run_once()

"""Unit tests for the proportional-share core model."""

import pytest

from repro.sim import ProcessState, SharedCore, SimProcess, SimulationEngine


def make_core(record=False):
    eng = SimulationEngine()
    return eng, SharedCore(eng, 0, record_intervals=record)


def test_single_process_runs_at_full_rate():
    eng, core = make_core()
    done = []
    p = SimProcess("p", 4.0, on_complete=done.append)
    core.dispatch(p)
    eng.run()
    assert done == [p]
    assert p.completed_at == pytest.approx(4.0)
    assert p.cpu_time == pytest.approx(4.0)
    assert p.state is ProcessState.DONE


def test_two_equal_processes_share_half_half():
    eng, core = make_core()
    p1 = SimProcess("p1", 2.0)
    p2 = SimProcess("p2", 2.0)
    core.dispatch(p1)
    core.dispatch(p2)
    eng.run()
    # both need 2 CPU-s at 50% rate -> both finish at t=4
    assert p1.completed_at == pytest.approx(4.0)
    assert p2.completed_at == pytest.approx(4.0)


def test_weighted_sharing():
    eng, core = make_core()
    heavy = SimProcess("heavy", 3.0, weight=3.0)
    light = SimProcess("light", 1.0, weight=1.0)
    core.dispatch(heavy)
    core.dispatch(light)
    eng.run()
    # heavy runs at 75%, light at 25% -> both finish at t=4
    assert heavy.completed_at == pytest.approx(4.0)
    assert light.completed_at == pytest.approx(4.0)


def test_rate_speeds_up_after_companion_finishes():
    eng, core = make_core()
    short = SimProcess("short", 1.0)
    long = SimProcess("long", 3.0)
    core.dispatch(short)
    core.dispatch(long)
    eng.run()
    # share 50/50 until t=2 (short consumed 1, long consumed 1);
    # long then runs alone and finishes its remaining 2 at t=4.
    assert short.completed_at == pytest.approx(2.0)
    assert long.completed_at == pytest.approx(4.0)


def test_late_arrival_slows_running_process():
    eng, core = make_core()
    first = SimProcess("first", 4.0)
    second = SimProcess("second", 1.0)
    core.dispatch(first)
    eng.schedule_after(2.0, core.dispatch, second)
    eng.run()
    # first: 2 CPU-s alone by t=2; then 50% share. second finishes
    # at t=4 (1 CPU-s at 50%), first's remaining 2 take 1s shared (gets 1)
    # plus 1s alone -> completes at t=5.
    assert second.completed_at == pytest.approx(4.0)
    assert first.completed_at == pytest.approx(5.0)


def test_busy_idle_accounting():
    eng, core = make_core()
    p = SimProcess("p", 2.0)
    eng.schedule_after(1.0, core.dispatch, p)
    eng.run()
    core.sync()
    assert core.busy_time == pytest.approx(2.0)
    assert core.idle_time == pytest.approx(1.0)


def test_owner_attribution():
    eng, core = make_core()
    a = SimProcess("a", 2.0, owner="app")
    b = SimProcess("b", 2.0, owner="bg")
    core.dispatch(a)
    core.dispatch(b)
    eng.run()
    assert core.owner_cpu("app") == pytest.approx(2.0)
    assert core.owner_cpu("bg") == pytest.approx(2.0)
    assert core.owner_cpu("nobody") == 0.0


def test_preempt_preserves_progress():
    eng, core = make_core()
    p = SimProcess("p", 4.0)
    core.dispatch(p)
    eng.schedule_after(1.0, core.preempt, p)
    eng.run()
    assert p.state is ProcessState.BLOCKED
    assert p.cpu_time == pytest.approx(1.0)
    assert p.remaining == pytest.approx(3.0)
    # resume: finishes after 3 more seconds
    core.dispatch(p)
    eng.run()
    assert p.state is ProcessState.DONE
    assert p.completed_at == pytest.approx(4.0)


def test_preempt_not_runnable_raises():
    eng, core = make_core()
    p = SimProcess("p", 1.0)
    with pytest.raises(RuntimeError):
        core.preempt(p)


def test_double_dispatch_raises():
    eng, core = make_core()
    p = SimProcess("p", 1.0)
    core.dispatch(p)
    with pytest.raises(RuntimeError):
        core.dispatch(p)


def test_dispatch_done_process_raises():
    eng, core = make_core()
    p = SimProcess("p", 1.0)
    core.dispatch(p)
    eng.run()
    with pytest.raises(RuntimeError):
        core.dispatch(p)


def test_zero_demand_completes_immediately():
    eng, core = make_core()
    done = []
    p = SimProcess("p", 0.0, on_complete=done.append)
    core.dispatch(p)
    eng.run()
    assert done == [p]
    assert p.completed_at == 0.0


def test_add_demand_extends_completion():
    eng, core = make_core()
    p = SimProcess("p", 1.0)
    core.dispatch(p)
    eng.schedule_after(0.5, core.add_demand, p, 1.0)
    eng.run()
    assert p.completed_at == pytest.approx(2.0)


def test_negative_demand_rejected():
    with pytest.raises(ValueError):
        SimProcess("p", -1.0)


def test_nonpositive_weight_rejected():
    with pytest.raises(ValueError):
        SimProcess("p", 1.0, weight=0.0)


def test_interval_recording():
    eng, core = make_core(record=True)
    p1 = SimProcess("p1", 1.0)
    p2 = SimProcess("p2", 1.0)
    core.dispatch(p1)
    eng.schedule_after(0.5, core.dispatch, p2)
    eng.run()
    core.finalize_intervals()
    # [0, 0.5): 1 runnable; [0.5, 2.25): 2 runnable until p1 done ...
    assert core.busy_intervals[0] == (0.0, 0.5, 1)
    total = sum(e - s for s, e, _ in core.busy_intervals)
    core.sync()
    assert total == pytest.approx(core.busy_time)


def test_completion_callback_ordering_is_deterministic():
    # two identical runs produce identical completion orders
    def run_once():
        eng = SimulationEngine()
        core = SharedCore(eng, 0)
        order = []
        for i in range(5):
            core.dispatch(
                SimProcess(f"p{i}", 1.0 + 0.1 * i, on_complete=lambda p: order.append(p.name))
            )
        eng.run()
        return order

    assert run_once() == run_once()

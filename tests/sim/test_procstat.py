"""Unit tests for synthesized /proc/stat counters and Eq. (2)."""

import pytest

from repro.sim import ProcStat, SharedCore, SimProcess, SimulationEngine


def test_snapshot_reflects_busy_idle():
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    stat = ProcStat({0: core}, owner="app")
    p = SimProcess("p", 2.0, owner="app")
    eng.schedule_after(1.0, core.dispatch, p)
    eng.run()
    snap = stat.snapshot(0)
    assert snap.busy == pytest.approx(2.0)
    assert snap.idle == pytest.approx(1.0)
    assert snap.self_cpu == pytest.approx(2.0)
    assert snap.time == pytest.approx(3.0)


def test_delta_window():
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    stat = ProcStat({0: core}, owner="app")
    before = stat.snapshot(0)
    p = SimProcess("p", 1.5, owner="app")
    core.dispatch(p)
    eng.run()
    after = stat.snapshot(0)
    win = after.delta(before)
    assert win.time == pytest.approx(1.5)
    assert win.busy == pytest.approx(1.5)
    assert win.idle == pytest.approx(0.0)


def test_delta_rejects_reversed_order():
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    stat = ProcStat({0: core}, owner="app")
    a = stat.snapshot(0)
    p = SimProcess("p", 1.0, owner="app")
    core.dispatch(p)
    eng.run()
    b = stat.snapshot(0)
    with pytest.raises(ValueError):
        a.delta(b)


def test_background_load_equation_two():
    """O_p from Eq. (2) recovers the interferer's CPU time from counters."""
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    stat = ProcStat({0: core}, owner="app")
    before = stat.snapshot(0)
    app = SimProcess("task", 2.0, owner="app")
    bg = SimProcess("intruder", 2.0, owner="bg")
    core.dispatch(app)
    core.dispatch(bg)
    eng.run()
    window = stat.snapshot(0).delta(before)
    # the app's own task CPU time comes from the runtime's database;
    # here we know it is exactly 2.0
    o_p = ProcStat.background_load(window, task_cpu_sum=2.0)
    assert o_p == pytest.approx(2.0)


def test_background_load_zero_without_interference():
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    stat = ProcStat({0: core}, owner="app")
    before = stat.snapshot(0)
    core.dispatch(SimProcess("task", 3.0, owner="app"))
    eng.run(until=4.0)  # includes 1s idle tail
    window = stat.snapshot(0).delta(before)
    assert ProcStat.background_load(window, task_cpu_sum=3.0) == pytest.approx(0.0)


def test_background_load_clamps_negative():
    from repro.sim.procstat import CoreStatSnapshot

    window = CoreStatSnapshot(time=1.0, busy=1.0, idle=0.0, self_cpu=1.0)
    # over-reported task time must not create negative background load
    assert ProcStat.background_load(window, task_cpu_sum=1.5) == 0.0


def test_other_tenant_cpu_is_not_directly_visible():
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    stat = ProcStat({0: core}, owner="app")
    core.dispatch(SimProcess("x", 1.0, owner="bg"))
    eng.run()
    snap = stat.snapshot(0)
    assert snap.self_cpu == 0.0          # we see none of it as "ours"
    assert snap.busy == pytest.approx(1.0)  # only aggregate busy time

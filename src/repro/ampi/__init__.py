"""AMPI — MPI programs as migratable objects.

The paper notes that "existing MPI applications can leverage the benefits
of our approach using Adaptive MPI (AMPI)": each MPI rank becomes a
user-level thread inside a migratable object, so the same load balancers
apply unchanged.

This package reproduces that route in bulk-synchronous form (the natural
fit for the iteration-driven runtime): an :class:`AmpiProgram` declares
``num_ranks`` and a per-superstep ``compute`` function. Each rank is one
:class:`~repro.ampi.rankthread.AmpiRankChare` — a migratable object the
balancer can move exactly like any other chare. Within a superstep a rank
may post point-to-point sends and contribute to collectives through its
:class:`~repro.ampi.api.AmpiComm` handle; delivery happens at the
superstep boundary (message *costs* are part of the runtime's
communication delay, as for the native applications).

Substitution note (documented in DESIGN.md): real AMPI virtualises
unmodified MPI codes with user-level threads and pup routines; here the
program expresses its per-superstep compute cost and communication
explicitly. What is preserved — ranks as migratable, instrumented
objects; collectives; rank-count independence from core count — is
exactly what the paper's load balancing story needs.
"""

from repro.ampi.api import AmpiComm, AmpiProgram
from repro.ampi.rankthread import AmpiRankChare

__all__ = ["AmpiComm", "AmpiProgram", "AmpiRankChare"]

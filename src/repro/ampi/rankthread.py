"""AMPI ranks as migratable chares.

One :class:`AmpiRankChare` per virtual MPI rank. Its ``work()`` *runs the
user's superstep function* — so the compute cost may depend on received
messages and reduction results — and the rank that finishes a superstep
last triggers the world's barrier bookkeeping (mailbox flip, reduction
finalisation), mirroring how AMPI's user-level threads block in
``MPI_Barrier``/collectives until everyone arrives.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ampi.api import AmpiComm, _AmpiWorld
from repro.runtime.chare import Chare

__all__ = ["AmpiRankChare"]


class AmpiRankChare(Chare):
    """One migratable MPI rank.

    Parameters
    ----------
    index:
        The MPI rank number.
    comm:
        The rank's communicator handle.
    compute:
        User superstep function ``(comm, iteration) -> cpu_seconds``.
    state_bytes:
        Serialised size of the rank (stack + heap in real AMPI).
    world:
        Shared mailbox/reduction state (superstep barrier bookkeeping).
    """

    def __init__(
        self,
        index: int,
        *,
        comm: AmpiComm,
        compute: Callable[[AmpiComm, int], float],
        state_bytes: float,
        world: _AmpiWorld,
    ) -> None:
        super().__init__(index, state_bytes=state_bytes)
        self.comm = comm
        self._compute = compute
        self._world = world
        self._steps_done = 0

    def work(self, iteration: int) -> float:
        """Execute the superstep and return its CPU cost."""
        cost = float(self._compute(self.comm, iteration))
        if cost < 0.0:
            raise ValueError(
                f"rank {self.index} compute() returned negative cost {cost}"
            )
        self._steps_done += 1
        self._world_step_bookkeeping(iteration)
        return cost

    # ------------------------------------------------------------------
    def _world_step_bookkeeping(self, iteration: int) -> None:
        """Flip the mailbox when the final rank of this superstep ran."""
        world = self._world
        counter = getattr(world, "_step_counter", {})
        counter[iteration] = counter.get(iteration, 0) + 1
        world._step_counter = counter  # type: ignore[attr-defined]
        if counter[iteration] == world.size:
            world.end_superstep()
            del counter[iteration]

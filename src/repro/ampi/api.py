"""AMPI programming interface.

An :class:`AmpiProgram` is written against :class:`AmpiComm`, a
deliberately mpi4py-flavoured handle (``rank``/``size``/``send``/``recv``/
``allreduce``) with bulk-synchronous delivery:

* ``send(dest, payload)`` enqueues a message; the receiver sees it via
  ``recv(src)`` **in the next superstep** (like an ``isend`` completed at
  the step boundary).
* ``allreduce(value, op)`` contributes to a per-superstep reduction whose
  result is available next superstep via ``reduced()``.

Example — a ring exchange with a global residual::

    def compute(comm: AmpiComm, it: int) -> float:
        left = comm.recv((comm.rank - 1) % comm.size)
        comm.send((comm.rank + 1) % comm.size, f"hello from {comm.rank}")
        comm.allreduce(local_residual(comm.rank, it), op="max")
        return 0.003          # CPU-seconds this superstep costs

    program = AmpiProgram(num_ranks=64, compute=compute)
    rt = program.instantiate(engine, cluster, core_ids,
                             balancer=RefineVMInterferenceLB())
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.base import AppModel
from repro.runtime.chare import ChareArray
from repro.runtime.reductions import REDUCERS
from repro.util import check_non_negative, check_positive

__all__ = ["AmpiComm", "AmpiProgram"]


class AmpiComm:
    """Per-rank communicator handle (BSP semantics).

    Created by :class:`AmpiProgram`; one instance per rank, reused across
    supersteps. User code must not construct these directly.
    """

    def __init__(self, rank: int, size: int, world: "_AmpiWorld") -> None:
        self.rank = rank
        self.size = size
        self._world = world

    # -- point to point -------------------------------------------------
    def send(self, dest: int, payload: Any) -> None:
        """Post a message to ``dest``; delivered next superstep."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range [0, {self.size})")
        self._world.outbox.setdefault((self.rank, dest), []).append(payload)

    def recv(self, src: int) -> Optional[Any]:
        """Pop the oldest message from ``src`` sent in the *previous*
        superstep, or ``None`` if there is none."""
        if not 0 <= src < self.size:
            raise ValueError(f"src {src} out of range [0, {self.size})")
        queue = self._world.inbox.get((src, self.rank))
        return queue.pop(0) if queue else None

    # -- collectives ----------------------------------------------------
    def allreduce(self, value: float, op: str = "sum") -> None:
        """Contribute to this superstep's global reduction."""
        if op not in REDUCERS:
            raise ValueError(f"unknown op {op!r}; known: {sorted(REDUCERS)}")
        self._world.contribute(self.rank, float(value), op)

    def reduced(self) -> Optional[float]:
        """Result of the *previous* superstep's allreduce (None if absent)."""
        return self._world.last_reduction


class _AmpiWorld:
    """Shared mailbox + reduction state for one program instance."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.inbox: Dict[Tuple[int, int], List[Any]] = {}
        self.outbox: Dict[Tuple[int, int], List[Any]] = {}
        self.last_reduction: Optional[float] = None
        self._contribs: Dict[int, float] = {}
        self._op: Optional[str] = None

    def contribute(self, rank: int, value: float, op: str) -> None:
        if self._op is None:
            self._op = op
        elif self._op != op:
            raise ValueError(
                f"mixed reduction ops in one superstep: {self._op!r} vs {op!r}"
            )
        if rank in self._contribs:
            raise ValueError(f"rank {rank} contributed twice in one superstep")
        self._contribs[rank] = value

    def end_superstep(self) -> None:
        """Barrier semantics: flip mailboxes, finalise the reduction."""
        self.inbox = self.outbox
        self.outbox = {}
        if self._contribs:
            if len(self._contribs) != self.size:
                raise RuntimeError(
                    f"allreduce saw {len(self._contribs)}/{self.size} "
                    "contributions — every rank must contribute"
                )
            reducer = REDUCERS[self._op or "sum"]
            acc: Optional[float] = None
            for rank in sorted(self._contribs):
                v = self._contribs[rank]
                acc = v if acc is None else reducer(acc, v)
            self.last_reduction = acc
        self._contribs = {}
        self._op = None


class AmpiProgram(AppModel):
    """A bulk-synchronous MPI-style program over migratable ranks.

    Parameters
    ----------
    num_ranks:
        Virtual MPI ranks. Independent of the core count — AMPI's
        "specify a large number of MPI processes" overdecomposition.
    compute:
        ``(comm, iteration) -> cpu_seconds``: the rank's superstep. Runs
        when the rank's entry method executes; the returned CPU cost is
        what the runtime simulates (and the LB database measures).
    state_bytes:
        Serialised rank size (migration cost).
    comm_bytes_per_core:
        Per-superstep halo volume charged by the runtime.
    """

    name = "ampi"

    def __init__(
        self,
        num_ranks: int,
        compute: Callable[[AmpiComm, int], float],
        *,
        state_bytes: float = 65536.0,
        comm_bytes_per_core: float = 0.0,
    ) -> None:
        check_positive("num_ranks", num_ranks)
        check_non_negative("state_bytes", state_bytes)
        check_non_negative("comm_bytes_per_core", comm_bytes_per_core)
        self.num_ranks = int(num_ranks)
        self.compute = compute
        self.state_bytes = float(state_bytes)
        self.comm_bytes_per_core = float(comm_bytes_per_core)
        self._world = _AmpiWorld(self.num_ranks)
        #: communicators, one per rank (also exposed for tests)
        self.comms: List[AmpiComm] = [
            AmpiComm(r, self.num_ranks, self._world) for r in range(self.num_ranks)
        ]

    # ------------------------------------------------------------------
    def build_array(self, num_cores: int) -> ChareArray:
        from repro.ampi.rankthread import AmpiRankChare

        chares = [
            AmpiRankChare(
                r,
                comm=self.comms[r],
                compute=self.compute,
                state_bytes=self.state_bytes,
                world=self._world,
            )
            for r in range(self.num_ranks)
        ]
        return ChareArray(self.name, chares)

    def comm_bytes(self, num_cores: int) -> float:
        return self.comm_bytes_per_core

"""repro — Cloud Friendly Load Balancing for HPC Applications.

A full-stack reproduction of Sarood, Gupta & Kalé (ICPP workshops 2012):
an interference-aware refinement load balancer for migratable-object
runtimes, evaluated on a simulated multi-tenant cluster.

The most common entry points are re-exported here::

    from repro import Scenario, BackgroundSpec, run_scenario
    from repro import RefineVMInterferenceLB, LBPolicy
    from repro import Jacobi2D, Wave2D, Mol3D

Subpackage map (see README.md for the architecture overview):

==================  =====================================================
``repro.sim``       discrete-event engine, proportional-share cores
``repro.cluster``   nodes/VMs/interferers/network of the testbed
``repro.runtime``   migratable-object (chare) runtime
``repro.core``      load balancers and the LB database (the contribution)
``repro.apps``      Jacobi2D / Wave2D / Mol3D / synthetic workloads
``repro.ampi``      MPI-style programs over migratable ranks
``repro.projections`` timelines and utilisation analysis
``repro.power``     power model and energy metering
``repro.experiments`` scenario runner and per-figure generators
==================  =====================================================
"""

from repro.version import __version__
from repro.apps import Jacobi2D, Mol3D, SyntheticApp, Wave2D
from repro.core import (
    GreedyLB,
    LBPolicy,
    LoadBalancer,
    Migration,
    MigrationCostAwareLB,
    NoLB,
    RefineLB,
    RefineVMInterferenceLB,
)
from repro.cluster import Cluster, NetworkModel
from repro.experiments import BackgroundSpec, Scenario, run_scenario
from repro.power import PowerMeter, PowerModel
from repro.runtime import Chare, ChareArray, Runtime
from repro.sim import SimulationEngine

__all__ = [
    "__version__",
    # apps
    "Jacobi2D",
    "Wave2D",
    "Mol3D",
    "SyntheticApp",
    # balancers
    "LoadBalancer",
    "NoLB",
    "RefineLB",
    "GreedyLB",
    "RefineVMInterferenceLB",
    "MigrationCostAwareLB",
    "Migration",
    "LBPolicy",
    # substrate
    "SimulationEngine",
    "Cluster",
    "NetworkModel",
    "Runtime",
    "Chare",
    "ChareArray",
    "PowerModel",
    "PowerMeter",
    # experiments
    "Scenario",
    "BackgroundSpec",
    "run_scenario",
]

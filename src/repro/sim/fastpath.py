"""Fast-path simulation backend: whole-iteration analytic advancement.

The event engine executes one heap-scheduled callback per task dispatch,
completion projection, and barrier — faithful, but most of a sweep's wall
clock goes to Python event dispatch rather than LB decisions. This module
exploits the structure of the workloads this harness simulates
(barrier-synchronized iterative jobs under proportional-share cores, the
same structure RUPER-LB and "Anticipating Load Imbalance" model
analytically per balancing interval) to advance whole iterations at a
time, dropping to an exact event-by-event *replay* only where jobs
actually interact.

Exactness contract
------------------
The fast path is **bit-identical** to the event engine — not approximately
equal. Every float the event engine folds (per-core busy/idle/owner CPU
accrual, per-task CPU time, iteration wall times, Eq.-(2) background
loads, migration costs, energy) is folded here in the same order with the
same primitive operations, so IEEE-754 produces the same bits:

* **Solo cores** (no co-runner can touch the core mid-iteration): a task
  chain under processor sharing with a single runnable process completes
  at the fold ``end_k = end_{k-1} + demand_k`` — exactly the floats the
  engine's dispatch/projection events produce, because a solo share is
  ``w/w == 1.0`` and ``dt * 1.0 == dt``. The chain is evaluated as a NumPy
  prefix sum (``np.add.accumulate`` is a sequential left fold) for large
  chains and a scalar loop for short ones — identical results; a unit
  test pins that equivalence. The engine's completion-epsilon
  re-projection (``remaining > 1e-9`` at the projected completion) is
  detected from the residuals and re-run in exact scalar form.
* **Contended cores** (application and background sharing a core, the
  paper's Figure 1 mechanism): advanced by an *analytic contention fold*.
  Under proportional sharing with a piecewise-constant runnable set the
  per-iteration advancement has a closed form: while the share split is
  constant, a chain of tasks with demands ``d_k`` on a core whose job
  holds share fraction ``f = w / Σw`` completes at
  ``e_k = e_{k-1} + d_k / (f · speed)`` — the same prefix sum the solo
  fold uses, evaluated with the engine's exact candidate/accrual float
  expressions (vectorized via ``np.add.accumulate`` for long chains, a
  scalar loop otherwise). Share-count change points that are *known
  between LB steps* (a background task completing or re-dispatching at
  its own barrier) are processed inline at their exact times, so
  constant-share and piecewise-constant regimes never touch the event
  heap. The fold stops at its *horizon* — the earliest pending heap
  event that could affect the core (an irregular background
  arrival/departure, another core's cross-job cascade) — and hands the
  remainder to the exact event replay, one candidate completion per
  scheduling change, with the same accrual arithmetic as
  :class:`~repro.sim.cpu.SharedCore._accrue`. Correctness never depends
  on the horizon being tight.
* **Everything else** (communication delays, LB policy/strategy, LB
  database, migration application, telemetry audit records, power model)
  is the *same code* the event engine uses — shared helpers and the real
  :class:`~repro.core.database.LBDatabase`,
  :class:`~repro.sim.procstat.ProcStat` and
  :class:`~repro.core.balancer.LoadBalancer` objects operate on
  duck-typed fast cores.

A core is eligible for solo-analytic advancement only while no *other*
unfinished job can observe it mid-iteration — either by running on it or
by syncing it (the power meter reads every core of the application's
nodes when the application finishes). Cores failing that test are
replayed; correctness never depends on the classification being tight.

Scenarios using ``tracing`` or ``record_intervals`` (per-event artifacts
by definition) are not supported; ``backend="auto"`` falls back to the
event engine for them.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.netmodel import NetworkModel
from repro.core.database import LBDatabase
from repro.core.policies import LBPolicy
from repro.experiments.scenario import Scenario
from repro.perf.profiler import active as _profiler
from repro.power.meter import EnergyReading
from repro.power.model import PowerModel
from repro.runtime.runtime import (
    RunStats,
    apply_migrations,
    compute_comm_delay,
)
from repro.runtime.tracing import TraceLog
from repro.sim.cpu import _COMPLETION_EPS
from repro.sim.procstat import ProcStat
from repro.telemetry import Telemetry
from repro.util import check_positive

__all__ = [
    "FastpathUnsupported",
    "fastpath_unsupported_reason",
    "run_scenario_fast",
]

ChareKey = Tuple[str, int]

#: Below this many tasks the scalar chain fold beats NumPy call overhead.
_VEC_MIN = 16

#: Below this many remaining iterations the scalar batched loop beats the
#: fixed NumPy setup cost of the whole-run iteration fold.
_BATCH_VEC_MIN = 8

# event kinds (heap entries are (time, seq, kind, obj, arg) tuples; the
# unique seq guarantees comparisons never reach obj)
_EV_LAUNCH = 0
_EV_BEGIN = 1
_EV_ARRIVE = 2
_EV_CMPL = 3
_EV_LB = 4


class FastpathUnsupported(RuntimeError):
    """Raised when ``backend="fast"`` is forced on an unsupported scenario."""


def fastpath_unsupported_reason(scenario: Scenario) -> Optional[str]:
    """Why ``scenario`` cannot use the fast path, or None if it can.

    ``backend="auto"`` routes scenarios with a reason to the event engine.
    """
    if scenario.tracing:
        return "tracing records per-event artifacts (event engine only)"
    if scenario.record_intervals:
        return "record_intervals logs per-event busy intervals (event engine only)"
    return None


class _FastSim:
    """Minimal clock + event heap shared by all fast jobs of one run."""

    __slots__ = ("now", "_heap", "_seq", "min_push")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._seq: int = 0
        # watermark of the earliest push since the last reset — lets the
        # contended fold update its horizon incrementally after an inline
        # drain (the only new events then are the drained job's next
        # BEGIN/LB and the survivor candidate, all of which qualify)
        self.min_push: float = 0.0

    def push(self, time: float, kind: int, obj, arg) -> None:
        self._seq += 1
        if kind == _EV_ARRIVE:
            obj._pending_arrives += 1
        if time < self.min_push:
            self.min_push = time
        heapq.heappush(self._heap, (time, self._seq, kind, obj, arg))

    def run(self) -> None:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, kind, obj, arg = pop(heap)
            # stale candidates must not touch the clock: batched jobs may
            # have advanced it past this event's (dead) timestamp already
            if kind == _EV_CMPL:
                if arg == obj.version:  # else: stale candidate, skip
                    self.now = time
                    obj.on_completion(time)
            elif kind == _EV_ARRIVE:
                self.now = time
                obj._pending_arrives -= 1
                obj._core_drained(time)
            elif kind == _EV_BEGIN:
                self.now = time
                obj._begin_iteration(arg, time)
            elif kind == _EV_LB:
                self.now = time
                obj._lb_step(arg, time)
            else:  # _EV_LAUNCH
                self.now = time
                obj._launch(time)


class _FastProc:
    """One runnable task on a replayed core (mirrors SimProcess accrual).

    The object doubles as the job's per-core dispatch cursor: it is
    recycled for every task of its job's queue on ``core`` within an
    iteration, carrying the queue (``keys``/``chs``/``qpos``) so a
    completion can dispatch the next task without any dict lookups.
    """

    __slots__ = (
        "job", "key", "chare", "owner", "weight",
        "remaining", "cpu_time", "started_at", "cid", "rank",
        "core", "keys", "chs", "qpos",
    )

    def __init__(self, job, key, chare, weight, remaining, started_at, cid, rank):
        self.job = job
        self.key = key
        self.chare = chare
        self.owner = job.name
        self.weight = weight
        self.remaining = remaining
        self.cpu_time = 0.0
        self.started_at = started_at
        self.cid = cid
        self.rank = rank
        self.core = None
        self.keys = ()
        self.chs = ()
        self.qpos = 0


class _FastCore:
    """Duck-typed stand-in for :class:`~repro.sim.cpu.SharedCore`.

    Exposes exactly the surface :class:`~repro.sim.procstat.ProcStat`
    reads (``engine.now``, ``sync()``, ``busy_time``, ``idle_time``,
    ``owner_cpu``) plus the replay machinery. Accrual arithmetic is a
    verbatim transcription of ``SharedCore._accrue``.
    """

    __slots__ = (
        "engine", "core_id", "speed", "busy_time", "idle_time",
        "cpu_by_owner", "last", "procs", "version", "jobs", "readers",
        "ledger", "_cand_proc", "_cand_sched",
    )

    def __init__(self, sim: _FastSim, core_id: int) -> None:
        self.engine = sim  # named for ProcStat, which reads core.engine.now
        self.core_id = core_id
        self.speed = 1.0
        self.busy_time = 0.0
        self.idle_time = 0.0
        self.cpu_by_owner: Dict[str, float] = {}
        self.last = sim.now
        self.procs: List[_FastProc] = []
        self.version = 0
        self.jobs: List["_FastJob"] = []
        self.readers: List["_FastJob"] = []
        #: optional TimeLedger (null hook, mirrors SharedCore.ledger)
        self.ledger = None
        self._cand_proc = 0
        self._cand_sched = 0.0

    # -- ProcStat / telemetry surface ---------------------------------
    def sync(self) -> None:
        self.accrue(self.engine.now)

    def owner_cpu(self, owner: str) -> float:
        return self.cpu_by_owner.get(owner, 0.0)

    # -- replay machinery ----------------------------------------------
    def accrue(self, now: float) -> None:
        dt = now - self.last
        if dt > 0.0:
            if self.ledger is not None:
                self.ledger.accrue(self.core_id, self.last, now, self.procs)
            procs = self.procs
            n = len(procs)
            if n == 1:
                # sole runner: share == dt * (w/w) == dt exactly
                p = procs[0]
                self.busy_time += dt
                p.cpu_time += dt
                p.remaining -= dt * self.speed
                cbo = self.cpu_by_owner
                cbo[p.owner] = cbo.get(p.owner, 0.0) + dt
            elif n == 2:
                # the dominant co-run shape (app + background job)
                p0 = procs[0]
                p1 = procs[1]
                total_w = p0.weight + p1.weight
                speed = self.speed
                self.busy_time += dt
                cbo = self.cpu_by_owner
                share = dt * (p0.weight / total_w)
                p0.cpu_time += share
                p0.remaining -= share * speed
                cbo[p0.owner] = cbo.get(p0.owner, 0.0) + share
                share = dt * (p1.weight / total_w)
                p1.cpu_time += share
                p1.remaining -= share * speed
                cbo[p1.owner] = cbo.get(p1.owner, 0.0) + share
            elif n:
                self.busy_time += dt
                total_w = 0.0
                for p in procs:
                    total_w += p.weight
                speed = self.speed
                cbo = self.cpu_by_owner
                for p in procs:
                    share = dt * (p.weight / total_w)
                    p.cpu_time += share
                    p.remaining -= share * speed
                    cbo[p.owner] = cbo.get(p.owner, 0.0) + share
            else:
                self.idle_time += dt
            self.last = now
        elif dt < 0.0:  # pragma: no cover - classification bug guard
            raise RuntimeError(
                f"core {self.core_id}: accrual time moved backwards "
                f"({self.last} -> {now})"
            )

    def change(self, now: float) -> None:
        """Runnable set changed: invalidate and push the next candidate.

        The engine schedules one projected completion per runnable process
        and lets version stamps kill the stale ones; only the *earliest*
        (first-inserted on ties, matching dict order) ever fires validly,
        so pushing just that one is equivalent and halves heap traffic.
        """
        self.version += 1
        procs = self.procs
        if not procs:
            return
        if len(procs) == 1:
            # sole runner: share w/w == 1.0 exactly, so rate == speed
            p = procs[0]
            rem = p.remaining
            if rem < 0.0:
                rem = 0.0
            self._cand_proc = 0
            self._cand_sched = now
            self.engine.push(now + rem / self.speed, _EV_CMPL, self, self.version)
            return
        if len(procs) == 2:
            p0 = procs[0]
            p1 = procs[1]
            total_w = p0.weight + p1.weight
            speed = self.speed
            rem = p0.remaining
            if rem < 0.0:
                rem = 0.0
            t0 = now + rem / ((p0.weight / total_w) * speed)
            rem = p1.remaining
            if rem < 0.0:
                rem = 0.0
            t1 = now + rem / ((p1.weight / total_w) * speed)
            if t1 < t0:  # strict: first-inserted wins ties
                self._cand_proc = 1
                self._cand_sched = now
                self.engine.push(t1, _EV_CMPL, self, self.version)
            else:
                self._cand_proc = 0
                self._cand_sched = now
                self.engine.push(t0, _EV_CMPL, self, self.version)
            return
        total_w = 0.0
        for p in procs:
            total_w += p.weight
        speed = self.speed
        best_t = None
        best_i = 0
        for i, p in enumerate(procs):
            rate = (p.weight / total_w) * speed
            rem = p.remaining
            if rem < 0.0:
                rem = 0.0
            t = now + rem / rate
            if best_t is None or t < best_t:
                best_t = t
                best_i = i
        self._cand_proc = best_i
        self._cand_sched = now
        self.engine.push(best_t, _EV_CMPL, self, self.version)

    def on_completion(self, t: float) -> None:
        procs = self.procs
        p = procs[self._cand_proc]
        sched = self._cand_sched
        self.accrue(t)
        if p.remaining > _COMPLETION_EPS:
            # projection landed a hair early (float round-off): re-project
            self.change(t)
            p.job._fold_resume()
            return
        p.remaining = 0.0
        procs.pop(self._cand_proc)
        self.version += 1
        v = self.version
        # task completion bookkeeping, fused inline (the replay loop's
        # single hottest block — one call frame instead of three)
        job = p.job
        cpu = p.cpu_time
        ch = p.chare
        ch.executions += 1
        ch.total_cpu_time += cpu
        # direct window-dict accumulation (see _run_solo_core): the share
        # arithmetic only ever yields non-negative floats
        tc = job.db._task_cpu
        tc[p.key] = tc.get(p.key, 0.0) + cpu
        if job.lineage is not None:
            job.lineage.record_sample(p.key, job._iteration, p.cid, cpu)
        # _begin_iteration pre-seeds every core id with 0.0
        job._iter_core_wall[p.cid] += t - p.started_at
        job._completions.append((t, sched, p.rank, cpu))
        keys = p.keys
        pos = p.qpos
        if pos < len(keys):
            # dispatch the core's next task inline, recycling the proc
            # object (it just left self.procs and nothing else holds it;
            # it carries the queue cursor, so no dict lookups here). The
            # accrue(t) above guarantees self.last == t, so no re-accrual.
            p.qpos = pos + 1
            nxt = p.chs[pos]
            d = nxt.work(job._iteration)
            if d < 0:
                raise ValueError(
                    f"{nxt!r}.work({job._iteration}) returned negative {d}"
                )
            p.key = keys[pos]
            p.chare = nxt
            p.remaining = d
            p.cpu_time = 0.0
            p.started_at = t
            procs.append(p)
            self.change(t)
            # a dispatch is a change point: try to fold the next
            # constant-share span of the chain analytically
            job._fold_resume()
            return
        job._core_drained(t)
        if self.version == v and procs:
            # the completion cascade did not dispatch onto this core:
            # re-project the surviving co-runner ourselves
            self.change(t)
            procs[self._cand_proc].job._fold_resume()


class _FastJob:
    """One barrier-synchronized iterative job (mirrors Runtime)."""

    def __init__(
        self,
        sim: _FastSim,
        cores: Dict[int, _FastCore],
        core_ids: List[int],
        *,
        name: str,
        weight: float,
        net: NetworkModel,
        balancer,
        policy,
        comm_bytes: float,
        comm_graph,
        local_comm_factor: float,
        cores_per_node: int,
        telemetry: Optional[Telemetry],
    ) -> None:
        self.sim = sim
        self.cores = cores
        self.core_ids = core_ids
        self.name = name
        self.weight = float(weight)
        self.net = net
        self.balancer = balancer
        self.policy = policy
        self.comm_bytes = float(comm_bytes)
        self.comm_graph = comm_graph
        self.local_comm_factor = float(local_comm_factor)
        self.telemetry = telemetry
        if telemetry is not None and balancer is not None:
            balancer.attach_telemetry(telemetry)
        self._node_of: Dict[int, int] = {
            cid: cid // cores_per_node for cid in core_ids
        }
        self.chares: Dict[ChareKey, object] = {}
        self.mapping: Dict[ChareKey, int] = {}
        self.db: Optional[LBDatabase] = None
        self._total_iterations = 0
        self._iteration = 0
        self._iter_started = 0.0
        self._iter_core_wall: Dict[int, float] = {}
        self._arrived = 0
        self._expected = 0
        self._pending_arrives = 0
        self.finished_at: Optional[float] = None
        self.iteration_times: List[float] = []
        self.iteration_imbalance: List[float] = []
        self.lb_step_count = 0
        self.migration_count = 0
        self.migration_cost_s = 0.0
        self.total_task_cpu_s = 0.0
        self._last_lb_completed = 0
        self._bg_window_base: Dict[int, float] = {}
        #: the run's other jobs (set by the driver; gates batched mode)
        self.others: List["_FastJob"] = []
        #: optional TimeLedger (null hook, mirrors Runtime.ledger)
        self.ledger = None
        #: optional LineageRecorder (null hook, mirrors Runtime.lineage)
        self.lineage = None
        self._on_finish: List[Callable[["_FastJob"], None]] = []
        # per-iteration completion buffer: (end, sched, core_rank, cpu).
        # Sorted at the barrier, this reproduces the engine's chronological
        # (time, event-seq) fold order for total_task_cpu_s.
        self._completions: List[Tuple[float, float, int, float]] = []
        # per-core sorted task lists, rebuilt after migrations
        self._percore_keys: Dict[int, List[ChareKey]] = {}
        self._percore_chares: Dict[int, list] = {}
        self._percore_dirty = True
        self._comm_delay_cache: Optional[float] = None
        for cid in core_ids:
            cores[cid].jobs.append(self)

    # ------------------------------------------------------------------
    # setup / results
    # ------------------------------------------------------------------
    def register(self, array, core_ids: List[int]) -> None:
        """Block-map ``array`` onto the job's cores (as Runtime does)."""
        placement = array.block_mapping(core_ids)
        for chare in array:
            cid = placement[chare.key]
            self.chares[chare.key] = chare
            self.mapping[chare.key] = cid
            chare.current_core = cid

    def start(self, iterations: int, *, at: Optional[float] = None) -> None:
        check_positive("iterations", iterations)
        self._total_iterations = int(iterations)
        self.sim.push(
            self.sim.now if at is None else at, _EV_LAUNCH, self, 0
        )

    @property
    def stats(self) -> RunStats:
        return RunStats(
            name=self.name,
            finished_at=self.finished_at,
            iterations=self._total_iterations,
            iteration_times=tuple(self.iteration_times),
            lb_steps=self.lb_step_count,
            total_migrations=self.migration_count,
            total_migration_cost_s=self.migration_cost_s,
            total_task_cpu_s=self.total_task_cpu_s,
        )

    # ------------------------------------------------------------------
    # iteration machinery
    # ------------------------------------------------------------------
    def _launch(self, t: float) -> None:
        # snapshot the instrumentation window at launch, not construction
        procstat = ProcStat(
            {cid: self.cores[cid] for cid in self.core_ids}, self.name
        )
        state_bytes = {k: c.state_bytes for k, c in self.chares.items()}
        comm = None
        if self.comm_graph is not None:
            comm = {key: self.comm_graph.neighbors(key) for key in self.chares}
        self.db = LBDatabase(procstat, state_bytes, comm=comm)
        if self.telemetry is not None:
            self._bg_window_base = self._true_bg_cpu()
        self._begin_iteration(0, t)

    def _rebuild_percore(self) -> None:
        per: Dict[int, List[ChareKey]] = {cid: [] for cid in self.core_ids}
        for key, cid in self.mapping.items():
            per[cid].append(key)
        chares = self.chares
        self._percore_keys = {cid: sorted(per[cid]) for cid in self.core_ids}
        self._percore_chares = {
            cid: [chares[k] for k in keys]
            for cid, keys in self._percore_keys.items()
        }
        self._percore_dirty = False

    def _solo(self, core: _FastCore) -> bool:
        """May this iteration run analytically on ``core``?

        Only if no other unfinished job can run on or sync the core
        mid-iteration (readers: the power meter touches every core of the
        application's nodes at application finish).
        """
        for other in core.jobs:
            if other is not self and other.finished_at is None:
                return False
        for other in core.readers:
            if other is not self and other.finished_at is None:
                return False
        return True

    def _batchable(self) -> bool:
        """True when every other job of the run is finished.

        From that point on nothing outside this job can schedule events,
        run on its cores, or read the clock, so the whole remainder of the
        run — iterations, barriers, LB steps, the finish callbacks — can
        execute inline with ``sim.now`` advanced directly, without a
        single heap event.
        """
        for other in self.others:
            if other.finished_at is None:
                return False
        return True

    def _begin_iteration(self, iteration: int, T: float) -> None:
        if self._batchable():
            self._run_batched(iteration, T)
            return
        if self.ledger is not None:
            self.ledger.mark_iteration(iteration, T)
        if self.lineage is not None:
            self.lineage.mark_iteration(iteration, T)
        self._iteration = iteration
        self._iter_started = T
        self._iter_core_wall = {cid: 0.0 for cid in self.core_ids}
        self._arrived = 0
        self._expected = len(self.core_ids)
        if self._percore_dirty:
            self._rebuild_percore()
        sim = self.sim
        empty = 0
        contended: List[_FastCore] = []
        for rank, cid in enumerate(self.core_ids):
            keys = self._percore_keys[cid]
            if not keys:
                empty += 1
                continue
            core = self.cores[cid]
            if self._solo(core):
                end = self._run_solo_core(
                    core, cid, keys, self._percore_chares[cid],
                    iteration, T, rank,
                )
                sim.push(end, _EV_ARRIVE, self, 0)
            else:
                self._dispatch(cid, 0, T, rank)
                contended.append(core)
        for _ in range(empty):  # object-less cores arrive instantly
            self._core_drained(T)
        if contended:
            self._fold_contended_cores(contended)

    # -- solo-analytic advancement -------------------------------------
    def _run_solo_core(
        self, core, cid, keys, chs, iteration, T, rank
    ) -> float:
        """Advance one core's whole iteration without events.

        Returns the barrier-arrival time. Every fold replicates the
        accrual the engine performs at the corresponding dispatch or
        completion event (solo share is exactly 1.0, so each task's
        accrued CPU equals ``end_k - end_{k-1}``).
        """
        led = self.ledger
        lin = self.lineage
        if len(chs) == 1:
            # one task per core — the shape of every batched background
            # iteration; same arithmetic as the scalar fold below, minus
            # the list building and loop machinery
            ch = chs[0]
            d = ch.work(iteration)
            if d < 0:
                raise ValueError(
                    f"{ch!r}.work({iteration}) returned negative {d}"
                )
            dt = T - core.last
            if dt > 0.0:
                if led is not None:
                    # no runnable procs in the gap: idle, or LB pause
                    led.accrue(cid, core.last, T, ())
                core.idle_time += dt
            cbo = core.cpu_by_owner
            name = self.name
            busy = core.busy_time
            own = cbo.get(name, 0.0)
            sched = T
            e = T + d
            c = e - T
            rem = d - c
            busy += c
            own += c
            cpu = c
            t = e
            while rem > _COMPLETION_EPS:
                sched = t
                e = t + rem
                dtx = e - t
                busy += dtx
                own += dtx
                cpu += dtx
                rem -= dtx
                t = e
            ch.executions += 1
            ch.total_cpu_time += cpu
            k = keys[0]
            tc = self.db._task_cpu
            tc[k] = tc.get(k, 0.0) + cpu
            if lin is not None:
                lin.record_sample(k, iteration, cid, cpu)
            self._completions.append((t, sched, rank, cpu))
            core.busy_time = busy
            cbo[name] = own
            core.last = t
            if led is not None:
                # the task ran alone: the whole interval is its compute
                led.accrue_app(cid, T, t, k)
            self._iter_core_wall[cid] = t - T
            return t
        work = []
        for ch in chs:
            d = ch.work(iteration)
            if d < 0:
                raise ValueError(
                    f"{ch!r}.work({iteration}) returned negative {d}"
                )
            work.append(d)
        dt = T - core.last
        if dt > 0.0:  # idle gap since the core's last activity
            if led is not None:
                led.accrue(cid, core.last, T, ())
            core.idle_time += dt
        name = self.name
        # accumulate straight into the LB database's window dict — the
        # record_task wrapper only adds validation, and ``work`` was
        # already checked non-negative above
        tc = self.db._task_cpu
        tc_get = tc.get
        comps = self._completions
        busy = core.busy_time
        own = core.cpu_by_owner.get(name, 0.0)
        wall = 0.0
        n = len(work)
        if n >= _VEC_MIN:
            arr = np.empty(n + 1)
            arr[0] = T
            arr[1:] = work
            ends_v = np.add.accumulate(arr)  # sequential left fold
            cpus_v = ends_v[1:] - ends_v[:-1]
            if float(np.max(np.asarray(work) - cpus_v)) <= _COMPLETION_EPS:
                ends = ends_v[1:].tolist()
                cpus = cpus_v.tolist()
                prev = T
                for i in range(n):
                    c = cpus[i]
                    e = ends[i]
                    busy += c
                    own += c
                    ch = chs[i]
                    ch.executions += 1
                    ch.total_cpu_time += c
                    k = keys[i]
                    tc[k] = tc_get(k, 0.0) + c
                    if lin is not None:
                        lin.record_sample(k, iteration, cid, c)
                    wall += c  # == e - prev bit-for-bit
                    comps.append((e, prev, rank, c))
                    if led is not None:
                        led.accrue_app(cid, prev, e, k)
                    prev = e
                core.busy_time = busy
                core.cpu_by_owner[name] = own
                core.last = prev
                self._iter_core_wall[cid] = wall
                return prev
            # a residual exceeds the completion epsilon: the engine would
            # re-project — fall through to the exact scalar replay
        t = T
        for i in range(n):
            d = work[i]
            start = t
            sched = t
            e = t + d
            c = e - t
            rem = d - c
            busy += c
            own += c
            cpu = c
            t = e
            while rem > _COMPLETION_EPS:
                # engine re-projection: new event at t + remaining
                sched = t
                e = t + rem
                dtx = e - t
                busy += dtx
                own += dtx
                cpu += dtx
                rem -= dtx
                t = e
            ch = chs[i]
            ch.executions += 1
            ch.total_cpu_time += cpu
            k = keys[i]
            tc[k] = tc_get(k, 0.0) + cpu
            if lin is not None:
                lin.record_sample(k, iteration, cid, cpu)
            wall += t - start
            comps.append((t, sched, rank, cpu))
            if led is not None:
                led.accrue_app(cid, start, t, k)
        core.busy_time = busy
        core.cpu_by_owner[name] = own
        core.last = t
        self._iter_core_wall[cid] = wall
        return t

    # -- replay path ----------------------------------------------------
    def _dispatch(self, cid: int, pos: int, t: float, rank: int) -> None:
        keys = self._percore_keys[cid]
        chs = self._percore_chares[cid]
        ch = chs[pos]
        d = ch.work(self._iteration)
        if d < 0:
            raise ValueError(
                f"{ch!r}.work({self._iteration}) returned negative {d}"
            )
        core = self.cores[cid]
        if core.last != t:  # zero-width accruals are no-ops
            core.accrue(t)
        p = _FastProc(self, keys[pos], ch, self.weight, d, t, cid, rank)
        p.core = core
        p.keys = keys
        p.chs = chs
        p.qpos = pos + 1
        core.procs.append(p)
        core.change(t)

    # -- analytic contention fold ---------------------------------------
    def _fold_horizon(self, exclude, bail: float = -1.0) -> float:
        """Earliest pending heap event that could affect a folded core.

        The fold may advance the cores in ``exclude`` analytically while
        every projected completion lands strictly below this time.
        Skipped (they cannot influence the fold):

        * completion candidates of the folded cores themselves — the fold
          reproduces and invalidates them, all owners included;
        * stale candidates anywhere (version mismatch — they are no-ops);
        * this job's own barrier arrivals — they only count cores in, and
          the barrier needs the folded cores' chains to end first, which
          always happens at or beyond the fold's current position.

        Everything else (another job's completions on outside cores,
        arrivals, iteration begins, LB steps, launches) bounds the fold:
        any cascade that could dispatch onto or read a folded core starts
        at one of those events. Correctness never depends on this bound
        being tight — a conservative horizon only hands more of the
        iteration to the exact event replay.

        ``bail``: the caller's earliest projected completion. Any
        qualifying event at or below it already blocks the fold, so the
        scan may return it immediately instead of finishing the minimum —
        the returned value is only ever compared against ``bail`` then.
        """
        h = float("inf")
        for time, _seq, kind, obj, arg in self.sim._heap:
            if time >= h:
                continue
            if kind == _EV_CMPL:
                if obj in exclude or arg != obj.version:
                    continue
            elif kind == _EV_ARRIVE and obj is self:
                continue
            if time <= bail:
                return time
            h = time
        return h

    def _fold_resume(self) -> None:
        """Re-enter the fold after a replayed change point (on_completion)."""
        cores = self.cores
        folds = []
        for cid in self.core_ids:
            core = cores[cid]
            if core.procs:
                folds.append(core)
        self._fold_contended_cores(folds)

    def _fold_contended_cores(self, folds: List[_FastCore]) -> None:
        """Advance this job's contended cores analytically, jointly.

        Mirrors the event engine's candidate/accrual float expressions
        one completion at a time — but inline, without heap traffic —
        always processing the globally earliest candidate among the
        folded cores, so cross-core chronology (barrier drains, sibling
        cascades) is exact. Runs while every projected completion lands
        strictly before the horizon; a co-runner's chain ending is a
        share-count change point that stops the fold (its barrier drain
        must happen in heap order against its other cores), after which
        ``on_completion`` re-enters for the next constant-share span.

        Cores are eligible while this job still has a live task chain on
        them (our barrier then cannot fire mid-fold, bounding every
        future dispatch below our chain ends) and while their accrual
        cursor sits exactly at the pending candidate's base (an
        instrumentation sync can advance it past; only the replay can
        fire such a candidate exactly).
        """
        active: List[_FastCore] = []
        for core in folds:
            if not core.procs or core.last != core._cand_sched:
                continue
            for q in core.procs:
                if q.job is self:
                    active.append(core)
                    break
        if not active:
            return
        sim = self.sim
        exclude = set(active)
        # the horizon scan is deferred until the first candidate is
        # known, so the common blocked entry (an earlier heap event
        # already bounds every candidate) pays one aborted scan instead
        # of a full minimum
        horizon = None
        touched = set()
        vec_tried = set()
        # cached per-core candidate (t, i); None = recompute. Only the
        # core just processed can change its candidate — inline drains
        # and barrier pushes never touch another core's runnable set.
        cands: List[Optional[Tuple[float, int]]] = [None] * len(active)
        while active:
            # globally earliest candidate among the folded cores;
            # per-core selection is verbatim change() arithmetic
            best_k = -1
            best_i = 0
            best_t = 0.0
            for k in range(len(active)):
                cand = cands[k]
                if cand is None:
                    core = active[k]
                    procs = core.procs
                    now = core.last
                    speed = core.speed
                    n = len(procs)
                    if n == 1:
                        p = procs[0]
                        rem = p.remaining
                        if rem < 0.0:
                            rem = 0.0
                        i = 0
                        t = now + rem / speed
                    elif n == 2:
                        p0 = procs[0]
                        p1 = procs[1]
                        total_w = p0.weight + p1.weight
                        rem = p0.remaining
                        if rem < 0.0:
                            rem = 0.0
                        t0 = now + rem / ((p0.weight / total_w) * speed)
                        rem = p1.remaining
                        if rem < 0.0:
                            rem = 0.0
                        t1 = now + rem / ((p1.weight / total_w) * speed)
                        if t1 < t0:  # strict: first-inserted wins ties
                            i = 1
                            t = t1
                        else:
                            i = 0
                            t = t0
                    else:
                        total_w = 0.0
                        for p in procs:
                            total_w += p.weight
                        tbest = None
                        i = 0
                        for j, p in enumerate(procs):
                            rate = (p.weight / total_w) * speed
                            rem = p.remaining
                            if rem < 0.0:
                                rem = 0.0
                            tj = now + rem / rate
                            if tbest is None or tj < tbest:
                                tbest = tj
                                i = j
                        t = tbest
                    cand = (t, i)
                    cands[k] = cand
                t, i = cand
                if best_k < 0 or t < best_t:
                    best_k = k
                    best_i = i
                    best_t = t
            core = active[best_k]
            i = best_i
            t = best_t
            if horizon is None:
                horizon = self._fold_horizon(exclude, t)
            if not t < horizon:  # strict: same-time heap events fire first
                break
            if len(active) == 1 and core not in vec_tried:
                # single-core span: try the vectorized whole-chain fold
                vec_tried.add(core)
                if self._fold_contended_vec(core, horizon):
                    touched.discard(core)
                    break
                # nothing committed: fall through to the scalar fold of
                # the already-selected candidate
            cands[best_k] = None
            core.version += 1  # any engine-pending candidate is now stale
            touched.add(core)
            sched = core.last
            sim.now = t  # inline callbacks (finish, power) read the clock
            if core.last != t:  # zero-width accruals are no-ops
                core.accrue(t)
            procs = core.procs
            p = procs[i]
            if p.remaining > _COMPLETION_EPS:
                # engine re-projection: recompute the candidate at t
                continue
            # completion bookkeeping: verbatim on_completion transcription
            p.remaining = 0.0
            procs.pop(i)
            core.version += 1
            job = p.job
            cpu = p.cpu_time
            ch = p.chare
            ch.executions += 1
            ch.total_cpu_time += cpu
            tc = job.db._task_cpu
            tc[p.key] = tc.get(p.key, 0.0) + cpu
            if job.lineage is not None:
                job.lineage.record_sample(p.key, job._iteration, p.cid, cpu)
            job._iter_core_wall[p.cid] += t - p.started_at
            job._completions.append((t, sched, p.rank, cpu))
            keys = p.keys
            pos = p.qpos
            if pos < len(keys):
                # dispatch the chain's next task, recycling the proc
                p.qpos = pos + 1
                nxt = p.chs[pos]
                d = nxt.work(job._iteration)
                if d < 0:
                    raise ValueError(
                        f"{nxt!r}.work({job._iteration}) returned negative {d}"
                    )
                p.key = keys[pos]
                p.chare = nxt
                p.remaining = d
                p.cpu_time = 0.0
                p.started_at = t
                procs.append(p)
                continue
            if job is self:
                # our chain on this core ended. The engine drains
                # synchronously at the completion event; here earlier
                # *own* arrivals may still sit in the heap (excluded from
                # the horizon because they commute with the fold, not
                # with the barrier), so by default the arrival goes
                # through the heap to keep barrier chronology exact —
                # unless the barrier-safety gate below proves the drain
                # (and barrier) can fire inline. Either way the core
                # leaves the fold in engine-pending state: survivor
                # candidate projected, and its future completions bound
                # the rest of the fold.
                sim.min_push = float("inf")
                if procs:
                    core.change(t)
                del active[best_k]
                del cands[best_k]
                exclude.discard(core)
                touched.discard(core)
                if (
                    self.balancer is None
                    and self.telemetry is None
                    and self.ledger is None
                    and self.lineage is None
                    and not self._on_finish
                    and self._pending_arrives == 0
                ):
                    jcores = self.cores
                    inline = True
                    for jcid in self.core_ids:
                        jc = jcores[jcid]
                        if jc in exclude:
                            continue
                        for q in jc.procs:
                            if q.job is self:
                                inline = False
                                break
                        if not inline:
                            break
                else:
                    inline = False
                if inline:
                    # everything pushed since the reset (the survivor
                    # candidate, our next BEGIN/LB) qualifies: tighten
                    # the horizon incrementally instead of rescanning
                    self._core_drained(t)
                    if sim.min_push < horizon:
                        horizon = sim.min_push
                else:
                    # the pushed self-arrival needs a real rescan (it is
                    # excluded from the horizon by design)
                    sim.push(t, _EV_ARRIVE, self, 0)
                    horizon = self._fold_horizon(exclude)
                continue
            # another job's chain ended — a share-count change point. If
            # the job is instrumentation-free (no balancer, telemetry,
            # ledger, lineage, or finish callbacks) its barrier machinery
            # touches no core state, so the drain — and the barrier, when
            # this is the last arrival — can fire inline: the fold
            # processes completions in global time order, so the barrier
            # fires at the true max arrival exactly as the engine would,
            # and the next-iteration BEGIN lands on the heap where the
            # horizon rescan picks it up. That needs every remaining
            # arrival source (live chains, pending heap arrivals) to be
            # under this fold's control; otherwise an earlier fold may
            # already have drained another core at a *later* time, and
            # only the heap restores exact drain order — push the arrival
            # and stop this constant-share span at the change point
            # (on_completion then re-enters the fold for the next span).
            if (
                job.balancer is None
                and job.telemetry is None
                and job.ledger is None
                and job.lineage is None
                and not job._on_finish
                and job._pending_arrives == 0
            ):
                jcores = job.cores
                inline = True
                for jcid in job.core_ids:
                    jc = jcores[jcid]
                    if jc in exclude:
                        continue
                    for q in jc.procs:
                        if q.job is job:
                            inline = False
                            break
                    if not inline:
                        break
                if inline:
                    sim.min_push = float("inf")
                    job._core_drained(t)
                    if sim.min_push < horizon:
                        horizon = sim.min_push
                    continue
            sim.push(t, _EV_ARRIVE, job, 0)
            break
        for core in active:
            if core in touched:
                # restore the engine-pending state: project the surviving
                # runnable set exactly as change() would have at core.last
                core.change(core.last)

    def _fold_contended_vec(self, core: _FastCore, horizon: float) -> bool:
        """Vectorized two-runner fold: this job's whole chain in one shot.

        The dominant contended shape — our freshly dispatched chain
        sharing the core with one background task — admits the same
        prefix-sum evaluation as the solo fold: while the share split is
        constant the k-th task completes at ``e_k = e_{k-1} + d_k /
        (f·speed)``. All-or-nothing: commits only when every projected
        completion lands strictly before both the horizon and the
        co-runner's candidate, no residual needs re-projection, and the
        co-runner survives the whole span; otherwise falls back to the
        scalar fold, which replays the engine arithmetic exactly.
        """
        procs = core.procs
        if len(procs) != 2 or core.ledger is not None:
            return False
        p0 = procs[0]
        p1 = procs[1]
        if p0.job is self:
            idx_a, pa, pb = 0, p0, p1
        elif p1.job is self:
            idx_a, pa, pb = 1, p1, p0
        else:  # pragma: no cover - we always dispatch before folding
            return False
        if pa.cpu_time != 0.0:
            return False
        keys = pa.keys
        chs = pa.chs
        qpos = pa.qpos
        n = 1 + len(keys) - qpos
        if n < _VEC_MIN:
            return False
        iteration = self._iteration
        works = np.empty(n)
        works[0] = pa.remaining
        for j in range(qpos, len(keys)):
            d = chs[j].work(iteration)
            if d < 0:
                # the scalar fold re-runs work() and raises exactly as
                # the engine's dispatch would
                return False
            works[j - qpos + 1] = d
        total_w = p0.weight + p1.weight
        speed = core.speed
        fa = pa.weight / total_w
        fb = pb.weight / total_w
        rate_a = fa * speed
        rate_b = fb * speed
        arr = np.empty(n + 1)
        arr[0] = core.last
        arr[1:] = works / rate_a  # == change()'s rem / ((w/Σw)·speed)
        ends_v = np.add.accumulate(arr)  # sequential left fold
        if not float(ends_v[-1]) < horizon:
            return False
        dts = ends_v[1:] - ends_v[:-1]
        shares_a = dts * fa  # == accrue()'s dt · (w/Σw), elementwise
        if float(np.max(works - shares_a * speed)) > _COMPLETION_EPS:
            # a residual would trigger the engine's re-projection
            return False
        shares_b = dts * fb
        barr = np.empty(n + 1)
        barr[0] = pb.remaining
        barr[1:] = -(shares_b * speed)  # rem -= share·speed == rem + (-…)
        remb = np.add.accumulate(barr)
        if not bool(np.all(remb[:-1] > 0.0)):
            return False  # the co-runner completes mid-span
        # the co-runner's candidate at each change point must lose
        # strictly (ties depend on insertion order — leave them exact)
        tb = ends_v[:-1] + remb[:-1] / rate_b
        if not bool(np.all(ends_v[1:] < tb)):
            return False
        # ---- commit: sequential-fold finals via prefix sums ------------
        acc = np.empty(n + 1)
        acc[0] = core.busy_time
        acc[1:] = dts
        core.busy_time = float(np.add.accumulate(acc)[-1])
        cbo = core.cpu_by_owner
        # per-owner folds in procs order: the engine's first accrual
        # creates the dict keys in exactly this order
        for p, shares in ((p0, shares_a if pa is p0 else shares_b),
                          (p1, shares_a if pa is p1 else shares_b)):
            acc[0] = cbo.get(p.owner, 0.0)
            acc[1:] = shares
            cbo[p.owner] = float(np.add.accumulate(acc)[-1])
        acc[0] = pb.cpu_time
        acc[1:] = shares_b
        pb.cpu_time = float(np.add.accumulate(acc)[-1])
        pb.remaining = float(remb[-1])
        ends = ends_v[1:].tolist()
        cpus = shares_a.tolist()
        task_keys = [pa.key]
        task_keys.extend(keys[qpos:])
        task_chs = [pa.chare]
        task_chs.extend(chs[qpos:])
        tc = self.db._task_cpu
        tc_get = tc.get
        comps = self._completions
        lin = self.lineage
        cid = pa.cid
        rank = pa.rank
        wall = 0.0
        prev = core.last
        for j in range(n):
            c = cpus[j]
            e = ends[j]
            ch = task_chs[j]
            ch.executions += 1
            ch.total_cpu_time += c
            k = task_keys[j]
            tc[k] = tc_get(k, 0.0) + c
            if lin is not None:
                lin.record_sample(k, iteration, cid, c)
            wall += e - prev  # == t - started_at at each completion
            comps.append((e, prev, rank, c))
            prev = e
        # pre-seeded 0.0 each iteration, so += wall folds identically
        self._iter_core_wall[cid] += wall
        end = ends[-1]
        pa.remaining = 0.0
        pa.qpos = len(keys)
        core.version += 1
        procs.pop(idx_a)
        core.last = end
        self.sim.push(end, _EV_ARRIVE, self, 0)
        core.change(end)
        return True

    # -- barrier --------------------------------------------------------
    def _core_drained(self, t: float) -> None:
        self._arrived += 1
        if self._arrived == self._expected:
            self._end_iteration(t)

    def _barrier_bookkeeping(self, t: float) -> int:
        """Record one finished iteration; return the completed count."""
        self.iteration_times.append(t - self._iter_started)
        comps = self._completions
        if comps:
            # chronological (time, schedule-time, core) order == the event
            # engine's completion order; fold task CPU in that order
            comps.sort()
            total = self.total_task_cpu_s
            for entry in comps:
                total += entry[3]
            self.total_task_cpu_s = total
            del comps[:]
        self.iteration_imbalance.append(self._measure_imbalance())
        if self.telemetry is not None:
            self.telemetry.metrics.histogram("iteration_duration_s").observe(
                self.iteration_times[-1]
            )
        return self._iteration + 1

    def _finish(self, t: float) -> None:
        self.finished_at = t
        for cb in self._on_finish:
            cb(self)
        if self.telemetry is not None:
            self._record_final_metrics()

    def _comm_delay(self) -> float:
        # pure function of the (net, mapping) inputs — cache between LB
        # steps, invalidate whenever a migration changes the mapping
        d = self._comm_delay_cache
        if d is None:
            d = compute_comm_delay(
                net=self.net,
                num_cores=len(self.core_ids),
                comm_bytes=self.comm_bytes,
                comm_graph=self.comm_graph,
                mapping=self.mapping,
                node_of=self._node_of,
                local_comm_factor=self.local_comm_factor,
            )
            self._comm_delay_cache = d
        return d

    def _lb_due(self, completed: int) -> bool:
        return self.balancer is not None and self.policy.due(
            completed,
            self._total_iterations,
            imbalance=self.iteration_imbalance[-1],
            since_last_lb=completed - self._last_lb_completed,
        )

    def _end_iteration(self, t: float) -> None:
        completed = self._barrier_bookkeeping(t)
        if completed == self._total_iterations:
            self._finish(t)
            return
        delay = self._comm_delay()
        if self._lb_due(completed):
            self._last_lb_completed = completed
            self.sim.push(t + delay, _EV_LB, self, completed)
        else:
            self.sim.push(t + delay, _EV_BEGIN, self, completed)

    def _run_batched(self, iteration: int, T: float) -> None:
        """Run the rest of the job inline — no heap events at all.

        Only entered once :meth:`_batchable` holds, which is permanent
        (jobs never un-finish), so the clock can be advanced directly:
        every side effect (LB database snapshots, telemetry commits, the
        power reading at finish) sees exactly the time the event engine
        would have shown it.
        """
        sim = self.sim
        core_ids = self.core_ids
        cores = self.cores
        ledger = self.ledger
        lineage = self.lineage
        if (
            ledger is None
            and lineage is None
            and self.telemetry is None
            and self.balancer is None
            and self._total_iterations - iteration >= _BATCH_VEC_MIN
        ):
            if self._percore_dirty:
                self._rebuild_percore()
            if all(len(self._percore_keys[cid]) == 1 for cid in core_ids):
                if self._run_batched_vec(iteration, T):
                    return
        while True:
            if ledger is not None:
                ledger.mark_iteration(iteration, T)
            if lineage is not None:
                lineage.mark_iteration(iteration, T)
            self._iteration = iteration
            self._iter_started = T
            self._iter_core_wall = {cid: 0.0 for cid in core_ids}
            if self._percore_dirty:
                self._rebuild_percore()
            sim.now = T
            t = T  # barrier = last core's arrival (empty cores arrive at T)
            for rank, cid in enumerate(core_ids):
                keys = self._percore_keys[cid]
                if not keys:
                    continue
                end = self._run_solo_core(
                    cores[cid], cid, keys, self._percore_chares[cid],
                    iteration, T, rank,
                )
                if end > t:
                    t = end
            sim.now = t
            completed = self._barrier_bookkeeping(t)
            if completed == self._total_iterations:
                self._finish(t)
                return
            delay = self._comm_delay()
            if self._lb_due(completed):
                self._last_lb_completed = completed
                t_lb = t + delay
                sim.now = t_lb
                pause = self._do_lb(completed)
                if ledger is not None:
                    ledger.mark_pause(t_lb, t_lb + pause)
                T = t_lb + pause
            else:
                T = t + delay
            iteration = completed

    def _run_batched_vec(self, iteration: int, T: float) -> bool:
        """Fold every remaining iteration of the run in one NumPy pass.

        The analytic closed form for the solo constant-share regime: with
        one task per core, core ``c``'s barrier arrival in iteration ``i``
        is a single rounded addition ``T_i + d[i, c]``, and IEEE addition
        is monotone, so the barrier ``t_i = max_c(T_i + d[i, c])`` equals
        ``T_i + max_c d[i, c]`` bit-for-bit. The whole run therefore
        telescopes into one interleaved left fold

            T_0, t_0 = T_0 + m_0, T_1 = t_0 + delay, t_1 = T_1 + m_1, ...

        which ``np.add.accumulate`` evaluates in the engine's exact
        rounding order. Every state commit below replays the scalar
        loop's float expressions element-wise (bitwise identical for
        float64), with sequential ``+=`` chains replaced by accumulates
        over the same operand sequences.

        Only entered for an instrumentation-free job (no balancer,
        telemetry, ledger, or lineage) with exactly one chare per core —
        the shape of every background job, whose post-application tail
        dominates replay time. Returns False (committing nothing) when a
        work value is negative or a completion residual exceeds the
        engine's epsilon; the scalar loop then replays exactly, engine
        re-projections and error state included.
        """
        core_ids = self.core_ids
        cores = self.cores
        n_cores = len(core_ids)
        n_it = self._total_iterations - iteration
        chs = [self._percore_chares[cid][0] for cid in core_ids]
        keys = [self._percore_keys[cid][0] for cid in core_ids]
        # work table in the scalar loop's exact call order
        # (iteration-major, core-minor) — work() is re-entered by the
        # scalar replay on bail, so bail before committing anything
        d = np.empty((n_it, n_cores))
        for i in range(n_it):
            it = iteration + i
            row = d[i]
            for c in range(n_cores):
                w = chs[c].work(it)
                if w < 0.0:
                    return False
                row[c] = w
        delay = self._comm_delay()
        m = np.max(d, axis=1)
        # interleaved fold: T_i = acc[2i], barrier t_i = acc[2i + 1]
        arr = np.empty(2 * n_it)
        arr[0] = T
        arr[1::2] = m
        arr[2::2] = delay
        acc = np.add.accumulate(arr)
        starts = acc[0::2]
        barriers = acc[1::2]
        ends = starts[:, None] + d
        cpus = ends - starts[:, None]
        if float(np.max(d - cpus)) > _COMPLETION_EPS:
            return False  # the engine would re-project: replay instead
        if not np.array_equal(np.max(ends, axis=1), barriers):
            return False  # monotonicity guard — never expected to fire
        name = self.name
        tc = self.db._task_cpu
        # completion order: chronological, ties broken by core rank —
        # the (t, sched, rank, cpu) tuple sort with sched == T_i
        it_idx = np.repeat(np.arange(n_it), n_cores)
        order = np.lexsort(
            (np.tile(np.arange(n_cores), n_it), ends.ravel(), it_idx)
        )
        fold = np.empty(n_it * n_cores + 1)
        fold[0] = self.total_task_cpu_s
        fold[1:] = cpus.ravel()[order]
        self.total_task_cpu_s = float(np.add.accumulate(fold)[-1])
        self.iteration_times.extend((barriers - starts).tolist())
        # per-iteration imbalance: walls == cpus ((T + d) - T, the same
        # expression), mean folds 0.0 + w_0 + w_1 + ... in core order
        acc_w = np.zeros(n_it)
        for c in range(n_cores):
            acc_w = acc_w + cpus[:, c]
        mean = acc_w / n_cores
        pos = mean > 0.0
        imb = np.where(
            pos, np.max(cpus, axis=1) / np.where(pos, mean, 1.0), 1.0
        )
        self.iteration_imbalance.extend(imb.tolist())
        scratch = np.empty(n_it + 1)
        gaps = np.empty(n_it)
        for c in range(n_cores):
            cid = core_ids[c]
            core = cores[cid]
            col = cpus[:, c]
            e_col = ends[:, c]
            # idle gaps at dispatch: T_i - the core's cursor (zero-width
            # gaps are skipped by the scalar path; x + 0.0 == x here)
            gaps[0] = T - core.last
            np.subtract(starts[1:], e_col[:-1], out=gaps[1:])
            scratch[0] = core.idle_time
            scratch[1:] = gaps
            core.idle_time = float(np.add.accumulate(scratch)[-1])
            scratch[0] = core.busy_time
            scratch[1:] = col
            core.busy_time = float(np.add.accumulate(scratch)[-1])
            cbo = core.cpu_by_owner
            scratch[0] = cbo.get(name, 0.0)
            scratch[1:] = col
            cbo[name] = float(np.add.accumulate(scratch)[-1])
            ch = chs[c]
            ch.executions += n_it
            scratch[0] = ch.total_cpu_time
            scratch[1:] = col
            ch.total_cpu_time = float(np.add.accumulate(scratch)[-1])
            k = keys[c]
            scratch[0] = tc.get(k, 0.0)
            scratch[1:] = col
            tc[k] = float(np.add.accumulate(scratch)[-1])
            core.last = float(e_col[-1])
        self._iteration = iteration + n_it - 1
        self._iter_started = float(starts[-1])
        self._iter_core_wall = {
            core_ids[c]: float(cpus[-1, c]) for c in range(n_cores)
        }
        t_final = float(barriers[-1])
        self.sim.now = t_final
        self._finish(t_final)
        return True

    def _measure_imbalance(self) -> float:
        # _iter_core_wall is pre-seeded each iteration with every core id
        # in core_ids order, so values() folds in that exact order
        walls = self._iter_core_wall.values()
        mean = sum(walls) / len(walls)
        if mean <= 0.0:
            return 1.0
        return max(walls) / mean

    # ------------------------------------------------------------------
    # load balancing / telemetry (same objects as the event path)
    # ------------------------------------------------------------------
    def _lb_step(self, next_iteration: int, t: float) -> None:
        pause = self._do_lb(next_iteration)
        if self.ledger is not None:
            self.ledger.mark_pause(t, t + pause)
        self.sim.push(t + pause, _EV_BEGIN, self, next_iteration)

    def _do_lb(self, next_iteration: int) -> float:
        """One LB step at the current clock; returns the resume pause."""
        view = self.db.build_view(self.mapping)
        migrations = self.balancer.balance(view)
        cost = apply_migrations(
            migrations,
            chares=self.chares,
            mapping=self.mapping,
            net=self.net,
            node_of=self._node_of,
            local_comm_factor=self.local_comm_factor,
        )
        self.migration_count += len(migrations)
        self.migration_cost_s += cost
        if self.lineage is not None:
            self.lineage.record_lb_step(
                time=self.sim.now,
                iteration=next_iteration,
                migrations=[(m.chare, m.src, m.dst) for m in migrations],
                bg_cpu=self._true_bg_cpu(),
            )
        if migrations:
            self._percore_dirty = True
            self._comm_delay_cache = None
        if self.telemetry is not None:
            self._commit_telemetry_step(next_iteration, migrations, cost)
        self.db.reset_window()
        self.lb_step_count += 1
        return self.policy.decision_overhead_s + cost

    def _true_bg_cpu(self) -> Dict[int, float]:
        bg: Dict[int, float] = {}
        for cid in self.core_ids:
            core = self.cores[cid]
            core.sync()
            bg[cid] = sum(
                cpu
                for owner, cpu in core.cpu_by_owner.items()
                if owner != self.name
            )
        return bg

    def _commit_telemetry_step(self, next_iteration, migrations, cost) -> None:
        bg_now = self._true_bg_cpu()
        bg_true = {
            cid: bg_now[cid] - self._bg_window_base.get(cid, 0.0)
            for cid in self.core_ids
        }
        self._bg_window_base = bg_now
        self.telemetry.commit_step(
            time=self.sim.now,
            iteration=next_iteration,
            bg_true=bg_true,
            migration_cost_s=cost,
            decision_overhead_s=self.policy.decision_overhead_s,
        )
        metrics = self.telemetry.metrics
        metrics.counter("lb_steps").inc()
        metrics.counter("migrations").inc(len(migrations))
        metrics.counter("bytes_moved").inc(
            sum(self.chares[m.chare].state_bytes for m in migrations)
        )
        metrics.counter("lb_overhead_sim_s").inc(
            self.policy.decision_overhead_s + cost
        )

    def _record_final_metrics(self) -> None:
        metrics = self.telemetry.metrics
        for cid in self.core_ids:
            core = self.cores[cid]
            core.sync()
            wall = core.busy_time + core.idle_time
            metrics.gauge(f"core_utilization.{cid}").set(
                core.busy_time / wall if wall > 0 else 0.0
            )


# ----------------------------------------------------------------------
# scenario driver
# ----------------------------------------------------------------------
def run_scenario_fast(
    scenario: Scenario,
    *,
    telemetry: Optional[Telemetry] = None,
    ledger=None,
    lineage=None,
    _work_tables=None,
):
    """Execute ``scenario`` on the fast path (see module docstring).

    ``ledger`` optionally attaches a
    :class:`~repro.obs.ledger.TimeLedger` over the application's cores;
    it is closed at application finish, after the energy reading.

    ``lineage`` optionally attaches a
    :class:`~repro.obs.lineage.LineageRecorder` to the application job;
    it observes per-chare load samples and LB migrations and is closed
    at application finish.

    ``_work_tables`` (internal, set by :mod:`repro.sim.batch`) maps job
    name (``"app"`` / ``"bg"``) to precomputed per-chare work rows
    (``chare.key -> [work(0), work(1), ...]``). Rows are bound over the
    chares' ``work`` methods — a pure common-subexpression elimination,
    valid because every entry was produced by the identical float
    expression the chare itself would evaluate.

    Returns the same :class:`~repro.experiments.runner.ExperimentResult`
    as :func:`~repro.experiments.runner.run_scenario`, bit-identical.

    Raises
    ------
    FastpathUnsupported
        If the scenario needs per-event artifacts (tracing, intervals).
    """
    from repro.experiments.runner import ExperimentResult

    reason = fastpath_unsupported_reason(scenario)
    if reason is not None:
        raise FastpathUnsupported(reason)

    sim = _FastSim()
    cores: Dict[int, _FastCore] = {}
    cores_per_node = scenario.cores_per_node
    num_cores_total = scenario.num_nodes * cores_per_node

    def get_core(cid: int) -> _FastCore:
        core = cores.get(cid)
        if core is None:
            if not 0 <= cid < num_cores_total:
                raise ValueError(f"core id {cid} outside the cluster")
            core = _FastCore(sim, cid)
            cores[cid] = core
        return core

    net = scenario.net or NetworkModel.native()

    def build_job(model, core_ids, *, name, weight, balancer, policy,
                  use_comm_graph, job_telemetry):
        graph = None
        if use_comm_graph:
            graph = model.comm_graph(len(core_ids))
            if graph is None:
                raise ValueError(
                    f"{type(model).__name__} does not provide a comm graph"
                )
        for cid in core_ids:
            get_core(cid)
        job = _FastJob(
            sim,
            cores,
            list(core_ids),
            name=name,
            weight=weight,
            net=net,
            balancer=balancer,
            policy=policy,
            comm_bytes=model.comm_bytes(len(core_ids)),
            comm_graph=graph,
            local_comm_factor=0.25,
            cores_per_node=cores_per_node,
            telemetry=job_telemetry,
        )
        job.register(model.build_array(len(core_ids)), list(core_ids))
        return job

    app = build_job(
        scenario.app,
        list(scenario.app_core_ids),
        name="app",
        weight=1.0,
        balancer=scenario.balancer,
        policy=scenario.policy,
        use_comm_graph=scenario.use_comm_graph,
        job_telemetry=telemetry,
    )
    bg = None
    if scenario.bg is not None:
        bg = build_job(
            scenario.bg.model,
            list(scenario.bg.core_ids),
            name="bg",
            weight=scenario.bg.weight,
            balancer=None,
            policy=LBPolicy(),
            use_comm_graph=False,
            job_telemetry=None,
        )

    if _work_tables is not None:
        for jname, job in (("app", app), ("bg", bg)):
            rows = _work_tables.get(jname) if job is not None else None
            if rows:
                for key, ch in job.chares.items():
                    row = rows.get(key)
                    if row is not None:
                        ch.work = row.__getitem__

    if bg is not None:
        app.others.append(bg)
        bg.others.append(app)

    # the power meter reads every core of the application's nodes when the
    # application finishes — register it as a reader so co-located cores
    # stay on the exact replay path while the application is unfinished
    app_node_ids = sorted({cid // cores_per_node for cid in scenario.app_core_ids})
    for nid in app_node_ids:
        for cid in range(nid * cores_per_node, (nid + 1) * cores_per_node):
            core = cores.get(cid)
            if core is not None:
                core.readers.append(app)

    power_model = PowerModel(cores_per_node=cores_per_node)

    def reading_at_app_end(job) -> None:
        # exact transcription of PowerMeter.reading over the app's nodes
        now = sim.now
        busy = 0.0
        for nid in app_node_ids:
            node_busy = 0.0
            for cid in range(nid * cores_per_node, (nid + 1) * cores_per_node):
                core = cores.get(cid)
                if core is not None:
                    core.accrue(now)
                    node_busy += core.busy_time
                # untouched cores contribute an exact 0.0
            busy += node_busy
        energy = (
            power_model.energy(now, busy, len(app_node_ids)) if now > 0 else 0.0
        )
        job._energy_reading = EnergyReading(
            time=now, energy_j=energy, busy_core_seconds=busy
        )

    app._energy_reading = None
    app._on_finish.append(reading_at_app_end)

    if ledger is not None:
        app.ledger = ledger
        for cid in scenario.app_core_ids:
            cores[cid].ledger = ledger

        def close_ledger(job) -> None:
            # runs after reading_at_app_end, which already accrued every
            # core of the app's nodes to sim.now — every cursor is at the
            # finish time, so the conservation check is total
            now = sim.now
            for cid in scenario.app_core_ids:
                cores[cid].accrue(now)
            ledger.close(now)

        app._on_finish.append(close_ledger)

    if lineage is not None:
        app.lineage = lineage
        lineage.record_placement(app.mapping)

        def close_lineage(job) -> None:
            lineage.close(sim.now, bg_cpu=job._true_bg_cpu())

        app._on_finish.append(close_lineage)

    app.start(scenario.iterations)
    if bg is not None:
        bg.start(scenario.bg.iterations, at=scenario.bg.start)

    with _profiler().phase("fastpath.run"):
        sim.run()

    if app.finished_at is None or (bg is not None and bg.finished_at is None):
        raise RuntimeError(
            "simulation drained before both jobs finished — "
            "a scheduling deadlock would be a library bug"
        )

    return ExperimentResult(
        scenario=scenario,
        app=app.stats,
        bg=bg.stats if bg is not None else None,
        energy=app._energy_reading,
        trace=TraceLog(enabled=False),
        final_mapping=dict(app.mapping),
    )

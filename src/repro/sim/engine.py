"""Deterministic discrete-event engine.

The engine owns simulated time. Components schedule callbacks at absolute
times or after delays and receive an :class:`EventHandle` they may cancel.
Events at equal times fire in scheduling order (a monotonically increasing
sequence number breaks ties), which makes every simulation bit-reproducible
across runs and platforms.

The engine is intentionally minimal — no processes, resources, or channels
here; those live in :mod:`repro.sim.cpu` and :mod:`repro.runtime`. Keeping
the core this small makes its invariants easy to state and property-test:

* time never decreases;
* a cancelled event never fires;
* events at the same timestamp fire in FIFO order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.perf.profiler import active as _profiler
from repro.util import check_non_negative, get_logger

__all__ = ["EventHandle", "SimulationEngine"]

_log = get_logger(__name__)


@dataclass(order=False)
class EventHandle:
    """Handle to a scheduled event; returned by ``schedule_*`` methods.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    seq:
        Tie-break sequence number (FIFO among equal times).
    cancelled:
        True once :meth:`SimulationEngine.cancel` was called; a cancelled
        event is skipped when popped (lazy deletion).
    fired:
        True once the callback ran.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(repr=False)
    args: Tuple[Any, ...] = field(default=(), repr=False)
    cancelled: bool = False
    fired: bool = False

    def cancel(self) -> None:
        """Mark the event cancelled (idempotent; no effect if fired)."""
        self.cancelled = True


class SimulationEngine:
    """Time-ordered event loop.

    Examples
    --------
    >>> eng = SimulationEngine()
    >>> out = []
    >>> _ = eng.schedule_after(2.0, out.append, "b")
    >>> _ = eng.schedule_after(1.0, out.append, "a")
    >>> eng.run()
    >>> out
    ['a', 'b']
    >>> eng.now
    2.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._events_cancelled: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (excludes cancelled events)."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Total events cancelled so far."""
        return self._events_cancelled

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Raises
        ------
        ValueError
            If ``time`` precedes the current simulated time.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event in the past: time={time} < now={self._now}"
            )
        handle = EventHandle(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, (handle.time, handle.seq, handle))
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds (>= 0)."""
        check_non_negative("delay", delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not handle.fired and not handle.cancelled:
            handle.cancel()
            self._events_cancelled += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event. Return False if none remain."""
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fired = True
            self._events_fired += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given, events strictly after it stay queued and
        simulated time advances exactly to ``until`` (so a subsequent
        ``run`` resumes cleanly).
        """
        if self._running:
            raise RuntimeError("SimulationEngine.run is not reentrant")
        self._running = True
        fired = 0
        # one scoped timer per run() call (never per event), so the
        # disabled profiler costs nothing measurable in the event loop
        try:
            with _profiler().phase("engine.run"):
                while self._heap:
                    if max_events is not None and fired >= max_events:
                        return
                    time, seq, handle = self._heap[0]
                    if handle.cancelled:
                        heapq.heappop(self._heap)
                        continue
                    if until is not None and time > until:
                        break
                    heapq.heappop(self._heap)
                    self._now = time
                    handle.fired = True
                    self._events_fired += 1
                    handle.callback(*handle.args)
                    fired += 1
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            _log.debug(
                "run drained: now=%.9g fired=%d cancelled=%d pending=%d",
                self._now,
                self._events_fired,
                self._events_cancelled,
                len(self._heap),
            )

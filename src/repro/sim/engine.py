"""Deterministic discrete-event engine.

The engine owns simulated time. Components schedule callbacks at absolute
times or after delays and receive an :class:`EventHandle` they may cancel.
Events at equal times fire in scheduling order (a monotonically increasing
sequence number breaks ties), which makes every simulation bit-reproducible
across runs and platforms.

The engine is intentionally minimal — no processes, resources, or channels
here; those live in :mod:`repro.sim.cpu` and :mod:`repro.runtime`. Keeping
the core this small makes its invariants easy to state and property-test:

* time never decreases;
* a cancelled event never fires;
* events at the same timestamp fire in FIFO order.

Hot-path design notes
---------------------
The heap stores :class:`EventHandle` objects directly (ordered by
``(time, seq)`` via ``__lt__``) rather than ``(time, seq, handle)``
tuples — one allocation less per event and no tuple unpacking per pop.
Handles carry ``__slots__``; at millions of events the per-event dict of
a plain class dominates allocation cost. Cancelled events are removed
lazily on pop, but when they outnumber the live events the heap is
compacted in one O(n) pass, so pathological cancel-heavy workloads (every
scheduling change of a :class:`~repro.sim.cpu.SharedCore` cancels its
previous projections) cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.perf.profiler import active as _profiler
from repro.util import check_non_negative, get_logger

__all__ = ["EventHandle", "SimulationEngine"]

_log = get_logger(__name__)

#: Heaps smaller than this are never compacted — the O(n) rebuild would
#: cost more than the lazy pops it saves.
_COMPACT_MIN_HEAP = 64

_INF = float("inf")


class EventHandle:
    """Handle to a scheduled event; returned by ``schedule_*`` methods.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    seq:
        Tie-break sequence number (FIFO among equal times).
    cancelled:
        True once :meth:`SimulationEngine.cancel` was called; a cancelled
        event is skipped when popped (lazy deletion).
    fired:
        True once the callback ran.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
        fired: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.fired = fired

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event cancelled (idempotent; no effect if fired)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(time={self.time!r}, seq={self.seq}, {state})"


class SimulationEngine:
    """Time-ordered event loop.

    Examples
    --------
    >>> eng = SimulationEngine()
    >>> out = []
    >>> _ = eng.schedule_after(2.0, out.append, "b")
    >>> _ = eng.schedule_after(1.0, out.append, "a")
    >>> eng.run()
    >>> out
    ['a', 'b']
    >>> eng.now
    2.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[EventHandle] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._events_cancelled: int = 0
        #: cancelled handles still sitting in the heap (lazy deletion debt)
        self._stale: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return len(self._heap) - self._stale

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (excludes cancelled events)."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Total events cancelled so far."""
        return self._events_cancelled

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Raises
        ------
        ValueError
            If ``time`` precedes the current simulated time.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event in the past: time={time} < now={self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds (>= 0)."""
        # hot path (every projection reschedule): inline comparisons accept
        # the common case; the full checker handles everything else
        t = type(delay)
        if not ((t is float or t is int) and 0 <= delay < _INF):
            check_non_negative("delay", delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (lazy removal).

        When cancelled-but-unpopped events come to dominate the heap, it
        is compacted in one pass — lazy deletion stays O(log n) amortised
        without letting dead events accumulate unboundedly.
        """
        if not handle.fired and not handle.cancelled:
            handle.cancelled = True
            self._events_cancelled += 1
            self._stale += 1
            if (
                self._stale * 2 > len(self._heap)
                and len(self._heap) >= _COMPACT_MIN_HEAP
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify (O(n)).

        In place — ``run`` holds a local alias to the heap list, so the
        list object must never be replaced.
        """
        self._heap[:] = [h for h in self._heap if not h.cancelled]
        heapq.heapify(self._heap)
        self._stale = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event. Return False if none remain."""
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                self._stale -= 1
                continue
            self._now = handle.time
            handle.fired = True
            self._events_fired += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given, events strictly after it stay queued and
        simulated time advances exactly to ``until`` (so a subsequent
        ``run`` resumes cleanly).
        """
        if self._running:
            raise RuntimeError("SimulationEngine.run is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        # one scoped timer per run() call (never per event), so the
        # disabled profiler costs nothing measurable in the event loop
        try:
            with _profiler().phase("engine.run"):
                while heap:
                    if max_events is not None and fired >= max_events:
                        return
                    handle = heap[0]
                    if handle.cancelled:
                        heappop(heap)
                        self._stale -= 1
                        continue
                    if until is not None and handle.time > until:
                        break
                    heappop(heap)
                    self._now = handle.time
                    handle.fired = True
                    self._events_fired += 1
                    handle.callback(*handle.args)
                    fired += 1
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            _log.debug(
                "run drained: now=%.9g fired=%d cancelled=%d pending=%d",
                self._now,
                self._events_fired,
                self._events_cancelled,
                len(self._heap),
            )

"""Proportional-share CPU core model.

:class:`SharedCore` is the mechanism that *produces* interference in this
reproduction. All runnable processes on a core advance simultaneously, each
at rate ``weight_i / sum(weights)`` (CPU-seconds per wall-second). This is
the standard fluid approximation of an OS fair-share scheduler: over the
multi-millisecond horizons that matter here, Linux CFS time-slicing is
indistinguishable from weighted processor sharing.

Consequences relevant to the paper:

* an application rank that shares its core 1:1 with a background job runs at
  half speed — its iteration takes ~2x, stalling the whole tightly coupled
  application (Figure 1);
* a background job with a larger weight (the OS preference the paper saw for
  Mol3D) squeezes the application harder, producing the 400% no-LB penalty;
* when the load balancer migrates the application's chares away, the
  background job's share rises toward 100% and *its* penalty shrinks
  (Figure 2's "BG LB" series).

Accounting
----------
The core accrues, exactly and lazily (on every scheduling change):

* per-process consumed CPU time (:attr:`SimProcess.cpu_time`),
* per-owner CPU time (``cpu_by_owner`` — the basis of ``/proc/stat``),
* busy and idle wall time (busy = at least one runnable process).

Event handling uses *version-stamped* completion events: every change to
the runnable set bumps a version; stale completion events are ignored when
they fire. This avoids O(n) cancellation churn while staying exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.process import ProcessState, SimProcess
from repro.util import check_non_negative

__all__ = ["SharedCore"]

#: Completion slack: a process whose remaining demand is below this many
#: CPU-seconds at its projected completion event is considered done. This
#: absorbs float round-off from repeated accrual.
_COMPLETION_EPS = 1e-9


class SharedCore:
    """One physical core executing processes under processor sharing.

    Parameters
    ----------
    engine:
        The simulation engine providing time and event scheduling.
    core_id:
        Global core index (stable identifier used by the cluster, the
        load balancer, and traces).
    speed:
        Relative throughput of this core (1.0 = the reference core the
        work models are calibrated against). A process's *demand* is
        reference-core CPU-seconds: on a core of speed ``s`` running at
        share ``f``, demand drains at rate ``s*f`` while the OS-visible
        occupancy (``cpu_time``, ``/proc/stat`` busy) accrues at ``f`` —
        exactly how a slow cloud VM looks to accounting: the same task
        simply *occupies* the CPU for longer. Heterogeneous clusters are
        therefore handled by measurement-based balancing for free: the
        instrumented task times already embed the speed.
    record_intervals:
        When True the core logs ``(start, end, n_runnable)`` busy intervals,
        used by the power meter's time-series reconstruction and by the
        Projections-style timelines. Costs memory proportional to the
        number of scheduling changes; disable for very long runs.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        core_id: int,
        *,
        speed: float = 1.0,
        record_intervals: bool = False,
    ) -> None:
        if not speed > 0:
            raise ValueError(f"speed must be > 0, got {speed}")
        self.engine = engine
        self.core_id = int(core_id)
        self.speed = float(speed)
        self._runnable: Dict[int, SimProcess] = {}
        self._version = 0
        self._last_accrual = engine.now
        self._pending_events: Dict[int, EventHandle] = {}

        # accounting
        self.busy_time: float = 0.0
        self.idle_time: float = 0.0
        self.cpu_by_owner: Dict[str, float] = {}
        self.dispatch_count: int = 0
        #: optional :class:`~repro.obs.ledger.TimeLedger` (null hook:
        #: None by default — a single identity check per accrual)
        self.ledger = None

        self.record_intervals = record_intervals
        #: list of (start, end, concurrency) busy intervals, if recording
        self.busy_intervals: List[Tuple[float, float, int]] = []
        self._interval_start: Optional[float] = None
        self._interval_n: int = 0

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    @property
    def runnable_count(self) -> int:
        """Number of processes currently sharing this core."""
        return len(self._runnable)

    @property
    def total_weight(self) -> float:
        """Sum of runnable process weights (0.0 when idle)."""
        return sum(p.weight for p in self._runnable.values())

    def rate_of(self, process: SimProcess) -> float:
        """Current execution rate of ``process`` (CPU-s per wall-s)."""
        if process.pid not in self._runnable:
            return 0.0
        return process.weight / self.total_weight

    def dispatch(self, process: SimProcess) -> None:
        """Make ``process`` runnable on this core.

        Zero-demand processes complete via an immediate event (still through
        the engine, preserving deterministic ordering).
        """
        if process.state is ProcessState.RUNNABLE:
            raise RuntimeError(f"{process!r} is already runnable")
        if process.state is ProcessState.DONE:
            raise RuntimeError(f"{process!r} already completed")
        self._accrue()
        process.state = ProcessState.RUNNABLE
        if process.started_at is None:
            process.started_at = self.engine.now
        self._runnable[process.pid] = process
        self.dispatch_count += 1
        self._changed()

    def preempt(self, process: SimProcess) -> None:
        """Remove ``process`` from the core without completing it.

        Its consumed CPU time is accrued up to now; the caller may later
        dispatch it again (here or on another core) to continue.
        """
        if process.pid not in self._runnable:
            raise RuntimeError(f"{process!r} is not runnable on core {self.core_id}")
        self._accrue()
        del self._runnable[process.pid]
        process.state = ProcessState.BLOCKED
        self._changed()

    def add_demand(self, process: SimProcess, extra: float) -> None:
        """Increase the remaining demand of a runnable process by ``extra``.

        Used by open-ended background jobs that are modelled as a single
        process topped up period by period.
        """
        check_non_negative("extra", extra)
        if process.pid not in self._runnable:
            raise RuntimeError(f"{process!r} is not runnable on core {self.core_id}")
        self._accrue()
        process.remaining += extra
        self._changed()

    # ------------------------------------------------------------------
    # accrual / scheduling internals
    # ------------------------------------------------------------------
    def _accrue(self) -> None:
        """Advance accounting from the last accrual point to ``engine.now``."""
        now = self.engine.now
        dt = now - self._last_accrual
        if dt < 0:  # pragma: no cover - engine guarantees monotonic time
            raise RuntimeError("time moved backwards")
        if dt > 0.0:
            if self.ledger is not None:
                self.ledger.accrue(
                    self.core_id, self._last_accrual, now, self._runnable.values()
                )
            if self._runnable:
                self.busy_time += dt
                total_w = self.total_weight
                for p in self._runnable.values():
                    share = dt * (p.weight / total_w)
                    p.cpu_time += share          # occupancy (OS view)
                    p.remaining -= share * self.speed  # real progress
                    self.cpu_by_owner[p.owner] = (
                        self.cpu_by_owner.get(p.owner, 0.0) + share
                    )
            else:
                self.idle_time += dt
        self._last_accrual = now

    def _changed(self) -> None:
        """Runnable set or demands changed: bump version, reschedule."""
        self._version += 1
        # Cancel stale projections eagerly: besides the version stamp (the
        # correctness guard), this keeps the event heap free of dead events
        # so an idle simulation drains immediately.
        for handle in self._pending_events.values():
            self.engine.cancel(handle)
        self._pending_events.clear()
        self._update_interval_log()
        if not self._runnable:
            return
        total_w = self.total_weight
        for p in self._runnable.values():
            rate = (p.weight / total_w) * self.speed
            eta = max(p.remaining, 0.0) / rate
            handle = self.engine.schedule_after(
                eta, self._on_projected_completion, p, self._version
            )
            self._pending_events[p.pid] = handle

    def _on_projected_completion(self, process: SimProcess, version: int) -> None:
        if version != self._version:
            return  # stale projection — the schedule changed since
        self._accrue()
        if process.remaining > _COMPLETION_EPS:
            # Numerically the projection can land a hair early; re-project.
            self._changed()
            return
        process.remaining = 0.0
        del self._runnable[process.pid]
        process.state = ProcessState.DONE
        process.completed_at = self.engine.now
        self._changed()
        if process.on_complete is not None:
            process.on_complete(process)

    # ------------------------------------------------------------------
    # busy-interval log (power time-series & timelines)
    # ------------------------------------------------------------------
    def _update_interval_log(self) -> None:
        if not self.record_intervals:
            return
        now = self.engine.now
        n = len(self._runnable)
        if self._interval_start is not None:
            # close the previous interval if occupancy changed
            if n != self._interval_n:
                if now > self._interval_start and self._interval_n > 0:
                    self.busy_intervals.append(
                        (self._interval_start, now, self._interval_n)
                    )
                self._interval_start = now if n > 0 else None
                self._interval_n = n
        elif n > 0:
            self._interval_start = now
            self._interval_n = n

    def finalize_intervals(self) -> None:
        """Close any open busy interval at the current time (end of run)."""
        if not self.record_intervals:
            return
        now = self.engine.now
        self._accrue()
        if self._interval_start is not None and self._interval_n > 0:
            if now > self._interval_start:
                self.busy_intervals.append(
                    (self._interval_start, now, self._interval_n)
                )
            self._interval_start = now if self._runnable else None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force accounting to be up-to-date with ``engine.now``.

        Counters (``busy_time`` etc.) lag until the next scheduling change;
        call this before reading them mid-run.
        """
        self._accrue()

    def owner_cpu(self, owner: str) -> float:
        """CPU-seconds consumed on this core under accounting tag ``owner``."""
        return self.cpu_by_owner.get(owner, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCore(id={self.core_id}, runnable={len(self._runnable)}, "
            f"busy={self.busy_time:.6g}, idle={self.idle_time:.6g})"
        )

"""Batched structure-of-arrays execution of shape-homogeneous scenarios.

``run_sweep(..., backend="batch")`` hands whole groups of sweep points to
this module instead of simulating them one process-call at a time. Points
are grouped by *shape signature* — everything that determines the work
arrays and the event structure of a run (application model parameters,
core counts, iteration counts, background placement, the network and
testbed shape) — while the axes a sweep typically varies per point
(balancer strategy, LB period, epsilon, decision overhead, background
weight) stay free per lane. Each group is laid out structure-of-arrays:
the per-chare, per-iteration work table ``W[chare, iteration]`` is
materialised exactly once with the same float expressions the chares
would evaluate themselves, and every lane of the group executes against
that shared table on the analytic fast path
(:func:`repro.sim.fastpath.run_scenario_fast`), which folds whole
iteration blocks with vectorized NumPy prefix sums.

Bit-exactness contract
----------------------
Sharing the table is a pure common-subexpression elimination: chare work
is a deterministic function of the model's scalar parameters and the
``(chare index, iteration)`` pair, so lane *i*'s chare would compute the
identical IEEE-754 double the table already holds. Per-lane results are
therefore split back out bit-identical to the ``events`` backend on
every field — the parity suite
(``tests/experiments/test_backend_parity.py``) enforces ``==`` on
summaries, audit, ledger and lineage payloads.

Degradation
-----------
A scenario whose model carries non-scalar state (e.g. a
:class:`~repro.apps.synthetic.SyntheticApp` with a callable work script)
or whose shape matches no other point forms a singleton group and simply
runs on the per-point fast path — correct, just without the shared
table. ``batch_groups`` exposes the grouping so callers (the CLI) can
warn when a preset is shape-heterogeneous and batching buys nothing.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.scenario import Scenario

__all__ = ["batch_groups", "batch_group_indices", "run_scenarios_batch"]

#: Model attribute types that are safe to hash into a shape signature:
#: the work arrays they parameterise are pure functions of these values.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _model_signature(model: Any) -> Tuple[Any, ...]:
    """Hashable identity of a model's work-determining parameters.

    Walks the instance dict; scalar attributes (and flat tuples/lists of
    scalars) enter the signature by value, so two model instances with
    equal parameters — the common case across sweep points — compare
    equal. Any other attribute (callables, arrays, nested state) makes
    the model unbatchable: the signature degrades to object identity and
    the scenario lands in a singleton group.
    """
    attrs: List[Tuple[str, Any]] = []
    for name, value in sorted(vars(model).items()):
        if isinstance(value, _SCALAR_TYPES):
            attrs.append((name, value))
        elif isinstance(value, (tuple, list)) and all(
            isinstance(v, _SCALAR_TYPES) for v in value
        ):
            attrs.append((name, tuple(value)))
        else:
            return ("<unbatchable>", id(model))
    return (type(model).__name__, tuple(attrs))


def _shape_signature(scenario: Scenario) -> Tuple[Any, ...]:
    """Everything that must match for two scenarios to share one batch.

    Deliberately *excluded* — these vary per lane within a group:
    ``balancer``, ``policy`` (period / epsilon / decision overhead) and
    the background job's ``weight`` and ``iterations`` (sweep presets
    size the background run from its weight, so its length is
    weight-coupled; the shared table is simply built to the group's
    longest background run and shorter lanes read a prefix). They steer
    *when* and *how long* work runs, never what one iteration of it
    costs, so the shared table stays valid.
    """
    bg_sig = None
    if scenario.bg is not None:
        bg_sig = (
            _model_signature(scenario.bg.model),
            tuple(scenario.bg.core_ids),
            scenario.bg.start,
        )
    return (
        _model_signature(scenario.app),
        scenario.num_cores,
        scenario.iterations,
        bg_sig,
        scenario.cores_per_node,
        scenario.tracing,
        scenario.record_intervals,
        scenario.use_comm_graph,
        _model_signature(scenario.net),
    )


def batch_group_indices(scenarios: Sequence[Scenario]) -> List[List[int]]:
    """Partition ``scenarios`` into shape-homogeneous index groups.

    Groups appear in first-occurrence order; within a group, indices
    keep their original order — so flattening the groups and sorting by
    index reproduces the input order exactly.
    """
    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for i, scenario in enumerate(scenarios):
        groups.setdefault(_shape_signature(scenario), []).append(i)
    return list(groups.values())


def batch_groups(scenarios: Sequence[Scenario]) -> List[List[Scenario]]:
    """Partition ``scenarios`` into shape-homogeneous groups."""
    return [
        [scenarios[i] for i in group]
        for group in batch_group_indices(scenarios)
    ]


def _build_work_tables(
    group: Sequence[Scenario],
) -> Dict[str, Dict[Any, List[float]]]:
    """Materialise the shared ``W[chare, iteration]`` tables for a group.

    Built from a fresh chare array of the group's first lane — every
    entry is the exact float the lane's own chare would return from
    ``work(iteration)``, evaluated once instead of once per lane. The
    background table spans the group's longest background run (its
    length is weight-coupled and therefore lane-varying).
    """

    def table(model: Any, num_cores: int, iterations: int) -> Dict[Any, List[float]]:
        return {
            chare.key: [chare.work(it) for it in range(iterations)]
            for chare in model.build_array(num_cores)
        }

    first = group[0]
    tables = {"app": table(first.app, first.num_cores, first.iterations)}
    if first.bg is not None:
        tables["bg"] = table(
            first.bg.model,
            len(first.bg.core_ids),
            max(sc.bg.iterations for sc in group),
        )
    return tables


def run_scenarios_batch(
    scenarios: Sequence[Scenario],
    *,
    telemetries: Optional[Sequence[Any]] = None,
    ledgers: Optional[Sequence[Any]] = None,
    lineages: Optional[Sequence[Any]] = None,
    walls: Optional[List[float]] = None,
):
    """Execute ``scenarios`` as shape-homogeneous batches.

    Returns per-scenario
    :class:`~repro.experiments.runner.ExperimentResult` objects in input
    order, each bit-identical to the ``events`` backend. The optional
    ``telemetries`` / ``ledgers`` / ``lineages`` sequences are parallel
    to ``scenarios`` (``None`` entries for lanes without instrumentation)
    and behave exactly as the corresponding keyword of
    :func:`~repro.experiments.runner.run_scenario`. ``walls``, when
    given, must be a pre-sized list parallel to ``scenarios``; each
    lane's host wall-clock (excluding shared table construction) is
    written into it.

    Raises
    ------
    FastpathUnsupported
        If any scenario needs per-event artifacts (tracing, intervals) —
        same contract as the fast path.
    """
    from repro.sim.fastpath import run_scenario_fast

    n = len(scenarios)
    telemetries = telemetries if telemetries is not None else [None] * n
    ledgers = ledgers if ledgers is not None else [None] * n
    lineages = lineages if lineages is not None else [None] * n
    results: List[Any] = [None] * n
    for group in batch_group_indices(scenarios):
        # singleton groups skip table construction: building W for one
        # lane costs exactly what the lane's own chares would
        tables = (
            _build_work_tables([scenarios[i] for i in group])
            if len(group) > 1
            else None
        )
        for i in group:
            t0 = time.perf_counter()
            results[i] = run_scenario_fast(
                scenarios[i],
                telemetry=telemetries[i],
                ledger=ledgers[i],
                lineage=lineages[i],
                _work_tables=tables,
            )
            if walls is not None:
                walls[i] = time.perf_counter() - t0
    return results

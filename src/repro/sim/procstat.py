"""Synthesized ``/proc/stat`` counters.

The paper's Eq. (2) computes the background load of core *p* as

    O_p = T_lb − Σ_i t_i^p − t_idle^p

where ``t_idle^p`` is read from ``/proc/stat``. To keep the reproduction
honest, the load balancer is *not* allowed to peek at the simulator's
ground-truth record of what the interfering job consumed. Instead it reads
this module's :class:`ProcStat`, which exposes exactly what the real file
exposes: cumulative per-core busy and idle jiffies (here: seconds), plus —
for the runtime's own bookkeeping — the CPU time attributed to a given
accounting tag (the analogue of reading one's own ``/proc/self/stat``).

Snapshots are cheap, immutable records; windowed deltas between two
snapshots give the per-LB-period quantities of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.sim.cpu import SharedCore

__all__ = ["CoreStatSnapshot", "ProcStat"]


@dataclass(frozen=True)
class CoreStatSnapshot:
    """Cumulative counters for one core at one instant.

    Attributes
    ----------
    time:
        Simulated time of the snapshot.
    busy:
        Cumulative wall-seconds during which the core had >= 1 runnable
        process.
    idle:
        Cumulative wall-seconds with no runnable process
        (``t_idle`` in Eq. 2).
    self_cpu:
        Cumulative CPU-seconds consumed by the *observing* job's own
        accounting tag on this core (``/proc/self`` analogue). What other
        tenants consumed is deliberately not exposed.
    """

    time: float
    busy: float
    idle: float
    self_cpu: float

    def delta(self, earlier: "CoreStatSnapshot") -> "CoreStatSnapshot":
        """Windowed counters between ``earlier`` and this snapshot."""
        if earlier.time > self.time:
            raise ValueError("earlier snapshot is newer than this one")
        return CoreStatSnapshot(
            time=self.time - earlier.time,
            busy=self.busy - earlier.busy,
            idle=self.idle - earlier.idle,
            self_cpu=self.self_cpu - earlier.self_cpu,
        )


class ProcStat:
    """Reader of OS-visible CPU accounting for one observing job.

    Parameters
    ----------
    cores:
        The physical cores to observe, keyed however the caller wants to
        key them (typically global core id).
    owner:
        The observing job's accounting tag: its own CPU consumption is
        visible (``self_cpu``); everything else is aggregated into
        busy/idle, as on a real multi-tenant host.
    """

    def __init__(self, cores: Mapping[int, SharedCore], owner: str) -> None:
        self._cores: Dict[int, SharedCore] = dict(cores)
        self._owner = owner

    @property
    def owner(self) -> str:
        """Accounting tag whose own CPU time is visible."""
        return self._owner

    def core_ids(self) -> Sequence[int]:
        """Observed core ids, sorted."""
        return sorted(self._cores)

    def snapshot(self, core_id: int) -> CoreStatSnapshot:
        """Current cumulative counters for ``core_id``."""
        core = self._cores[core_id]
        core.sync()
        return CoreStatSnapshot(
            time=core.engine.now,
            busy=core.busy_time,
            idle=core.idle_time,
            self_cpu=core.owner_cpu(self._owner),
        )

    def snapshot_all(self) -> Dict[int, CoreStatSnapshot]:
        """Snapshots for every observed core."""
        return {cid: self.snapshot(cid) for cid in self._cores}

    @staticmethod
    def background_load(
        window: CoreStatSnapshot, task_cpu_sum: float
    ) -> float:
        """Eq. (2): ``O_p = T_lb − Σ t_i − t_idle`` over a window.

        Parameters
        ----------
        window:
            Delta snapshot covering the LB period (``time`` equals
            ``T_lb``).
        task_cpu_sum:
            Σ t_i^p — CPU time the runtime's own instrumented tasks
            consumed on the core during the window (from the LB database).

        Notes
        -----
        Clamped at zero: measurement noise (or in our case float round-off)
        can otherwise produce a tiny negative background load, and a
        negative O_p would make Eq. (1) under-estimate the average load.
        """
        o_p = window.time - task_cpu_sum - window.idle
        return max(o_p, 0.0)

"""Discrete-event simulation substrate.

This package provides the mechanistic foundation for the reproduction:

* :mod:`repro.sim.engine` — a deterministic discrete-event engine
  (time-ordered heap, cancellable events).
* :mod:`repro.sim.process` — :class:`SimProcess`, a unit of CPU demand
  (one chare task execution, or one slice of a background job).
* :mod:`repro.sim.cpu` — :class:`SharedCore`, a proportional-share CPU
  model: all runnable processes on a core advance simultaneously at rates
  proportional to their scheduler weights. This is what produces
  *interference* in the reproduction — a co-located background job steals
  a share of the core exactly as Linux CFS time-slicing does at a
  coarse-grained level.
* :mod:`repro.sim.procstat` — synthesized ``/proc/stat``-style counters.
  The load balancer reads *these*, never simulator ground truth, which
  keeps the reproduction honest to the paper's Eq. (2).
"""

from repro.sim.engine import EventHandle, SimulationEngine
from repro.sim.process import ProcessState, SimProcess
from repro.sim.cpu import SharedCore
from repro.sim.procstat import CoreStatSnapshot, ProcStat

__all__ = [
    "EventHandle",
    "SimulationEngine",
    "ProcessState",
    "SimProcess",
    "SharedCore",
    "CoreStatSnapshot",
    "ProcStat",
]

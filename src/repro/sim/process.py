"""Simulated CPU-consuming processes.

A :class:`SimProcess` models one schedulable entity on a core: in this
reproduction that is either

* one *chare task execution* of the instrumented parallel application
  (the runtime creates one process per chare task and runs them
  back-to-back on the owning core, so per-task wall times stretch under
  interference exactly as the paper's Figure 1 timelines show), or
* a slice of a *background (interfering) job*.

A process carries its **remaining CPU demand** (in CPU-seconds) and an
**accumulated CPU time** counter. While runnable on a
:class:`~repro.sim.cpu.SharedCore` it advances at the core's
proportional-share rate; the core performs all accrual — the process is a
passive record plus a completion callback.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.util import check_non_negative, check_positive

__all__ = ["ProcessState", "SimProcess"]

_proc_ids = itertools.count()


class ProcessState(enum.Enum):
    """Lifecycle of a :class:`SimProcess`."""

    NEW = "new"          #: created, never dispatched
    RUNNABLE = "runnable"  #: on a core, consuming CPU share
    BLOCKED = "blocked"    #: off-CPU (waiting at a barrier / not arrived)
    DONE = "done"          #: demand fully consumed


class SimProcess:
    """One schedulable unit of CPU demand.

    Parameters
    ----------
    name:
        Human-readable identifier (appears in traces and error messages).
    demand:
        CPU-seconds this process must consume before completing.
    weight:
        Proportional-share scheduler weight (Linux CFS ``nice`` analogue).
        A background job with ``weight=2`` on a fair-share core receives
        2/3 of the CPU against a weight-1 application process — this knob
        models the OS preference toward the interfering job that the paper
        observed for Mol3D.
    owner:
        Free-form accounting tag (e.g. ``"app:main"`` / ``"bg:wave2d"``);
        per-owner CPU usage accrues on the core under this tag, which is
        how the synthesized ``/proc/stat`` attributes time.
    on_complete:
        Callback invoked (with this process) when demand reaches zero.
    key:
        Optional chare identity ``(collection_name, index)`` this process
        executes on behalf of — the attribution handle the time ledger
        charges compute/stolen time to.
    """

    __slots__ = (
        "pid",
        "name",
        "remaining",
        "weight",
        "owner",
        "on_complete",
        "key",
        "state",
        "cpu_time",
        "started_at",
        "completed_at",
    )

    def __init__(
        self,
        name: str,
        demand: float,
        *,
        weight: float = 1.0,
        owner: str = "anonymous",
        on_complete: Optional[Callable[["SimProcess"], None]] = None,
        key: Optional[tuple] = None,
    ) -> None:
        check_non_negative("demand", demand)
        check_positive("weight", weight)
        self.pid: int = next(_proc_ids)
        self.name = name
        self.remaining = float(demand)
        self.weight = float(weight)
        self.owner = owner
        self.on_complete = on_complete
        self.key = key
        self.state = ProcessState.NEW
        self.cpu_time: float = 0.0       #: CPU-seconds consumed so far
        self.started_at: Optional[float] = None    #: first dispatch time
        self.completed_at: Optional[float] = None  #: completion time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimProcess(pid={self.pid}, name={self.name!r}, "
            f"state={self.state.value}, remaining={self.remaining:.6g})"
        )

"""Message-driven migratable-object runtime (the Charm++ substitute).

The paper's techniques assume a runtime in which the application is
over-decomposed into many medium-grained *chares* that the system maps to
cores, instruments, and can migrate. This package provides that runtime on
top of the discrete-event substrate:

* :mod:`repro.runtime.chare` — :class:`Chare` / :class:`ChareArray`:
  migratable objects with a per-iteration CPU-work model, serialised-state
  size, and migration hooks.
* :mod:`repro.runtime.messages` — the message records that drive
  execution (compute messages, migration pack/unpack).
* :mod:`repro.runtime.scheduler` — per-core message queue executing one
  entry method at a time, exactly like a Charm++ PE's scheduler loop.
* :mod:`repro.runtime.runtime` — :class:`Runtime`: one parallel job.
  Owns the object→core mapping, drives iterations (enqueue compute
  messages, barrier, communication delay), invokes the load balancer per
  its :class:`~repro.core.policies.LBPolicy`, applies migrations and
  charges their network cost. Several ``Runtime`` instances can share one
  engine/cluster — that is how the measured background job of Figure 2
  coexists with the application under test.
* :mod:`repro.runtime.reductions` — Charm++-style reductions (sum/max/…)
  contributed by chares and delivered at iteration end.
* :mod:`repro.runtime.tracing` — Projections-style event log consumed by
  :mod:`repro.projections`.
"""

from repro.runtime.chare import Chare, ChareArray
from repro.runtime.commgraph import CommGraph
from repro.runtime.messages import ComputeMsg, MigrateMsg
from repro.runtime.reductions import Reduction, REDUCERS
from repro.runtime.runtime import Runtime, RunStats
from repro.runtime.tracing import (
    IterationEvent,
    LBStepEvent,
    MigrationEvent,
    TaskEvent,
    TraceLog,
)

__all__ = [
    "Chare",
    "ChareArray",
    "CommGraph",
    "ComputeMsg",
    "MigrateMsg",
    "Reduction",
    "REDUCERS",
    "Runtime",
    "RunStats",
    "TraceLog",
    "TaskEvent",
    "IterationEvent",
    "LBStepEvent",
    "MigrationEvent",
]

"""The runtime: one parallel job of migratable objects.

A :class:`Runtime` drives a tightly coupled iterative application:

1. **Iteration.** For every core the job uses, enqueue one
   :class:`~repro.runtime.messages.ComputeMsg` per chare mapped there; the
   per-core :class:`~repro.runtime.scheduler.CoreScheduler` executes them
   back-to-back under processor sharing.
2. **Barrier.** The iteration ends when every core drains — one interfered
   straggler stalls everyone (the paper's Figure 1 mechanism).
3. **Communication.** Before the next iteration the job pays a halo
   exchange plus reduction-tree delay from its
   :class:`~repro.cluster.netmodel.NetworkModel`.
4. **Load balancing.** When the :class:`~repro.core.policies.LBPolicy`
   says a step is due, the runtime builds an
   :class:`~repro.core.database.LBView` from its instrumentation database
   (task CPU times + Eq.-(2) background loads), asks the balancer for
   migrations, applies them to the object mapping, and charges the
   migration transfer time plus decision overhead before resuming —
   the paper's wall-clock times "include the time taken for object
   migration".

Several runtimes may share one engine and cluster: the measured 2-core
background job of Figure 2 is simply a second ``Runtime`` with its own
owner tag and (optionally) OS weight, co-located on two of the
application's cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.netmodel import NetworkModel
from repro.core.balancer import LoadBalancer
from repro.core.database import LBDatabase, Migration
from repro.core.policies import LBPolicy
from repro.runtime.chare import Chare, ChareArray
from repro.runtime.commgraph import CommGraph
from repro.runtime.messages import ComputeMsg
from repro.runtime.reductions import Reduction
from repro.runtime.scheduler import CoreScheduler
from repro.runtime.tracing import (
    IterationEvent,
    LBStepEvent,
    MigrationEvent,
    TaskEvent,
    TraceLog,
)
from repro.sim.engine import SimulationEngine
from repro.sim.process import SimProcess
from repro.telemetry import Telemetry
from repro.util import check_non_negative, check_positive, get_logger

__all__ = ["Runtime", "RunStats", "compute_comm_delay", "apply_migrations"]

ChareKey = Tuple[str, int]
_log = get_logger(__name__)


def compute_comm_delay(
    *,
    net: NetworkModel,
    num_cores: int,
    comm_bytes: float = 0.0,
    comm_graph: Optional["CommGraph"] = None,
    mapping: Optional[Dict[ChareKey, int]] = None,
    node_of: Optional[Dict[int, int]] = None,
    local_comm_factor: float = 0.25,
) -> float:
    """Per-iteration communication delay: halo exchange + reduction tree.

    Shared by the event-driven :class:`Runtime` and the fast-path backend
    (:mod:`repro.sim.fastpath`) so both charge bit-identical delays. With a
    :class:`CommGraph`, the halo term is the slowest core's effective
    external traffic under the *current* ``mapping``; without one, the flat
    ``comm_bytes`` is used.
    """
    if comm_graph is not None:
        per_core = comm_graph.per_core_external_bytes(
            mapping if mapping is not None else {},
            node_of=node_of,
            local_factor=local_comm_factor,
        )
        worst = max(per_core.values(), default=0.0)
        halo = net.message_time(worst) if worst > 0 else 0.0
    else:
        halo = net.message_time(comm_bytes) if comm_bytes else 0.0
    tree = Reduction.tree_latency(num_cores, net)
    return halo + tree


def apply_migrations(
    migrations: Sequence[Migration],
    *,
    chares: Dict[ChareKey, Chare],
    mapping: Dict[ChareKey, int],
    net: NetworkModel,
    node_of: Dict[int, int],
    local_comm_factor: float,
) -> float:
    """Re-map objects in place and return the transfer wall-clock cost.

    Transfers proceed in parallel across cores but serialise per core's
    link: cost = max over cores of its inbound+outbound sum. Migrations
    between cores of the same node move through shared memory and are
    discounted by ``local_comm_factor``. Mutates ``mapping`` and each
    migrated chare's ``current_core``/``migrations`` counters exactly as
    the event-driven runtime does.
    """
    per_core: Dict[int, float] = {}
    for m in migrations:
        chare = chares[m.chare]
        t = net.migration_time(chare.state_bytes)
        if node_of.get(m.src) == node_of.get(m.dst):
            t *= local_comm_factor
        per_core[m.src] = per_core.get(m.src, 0.0) + t
        per_core[m.dst] = per_core.get(m.dst, 0.0) + t
        mapping[m.chare] = m.dst
        chare.current_core = m.dst
        chare.migrations += 1
        chare.on_migrate(m.src, m.dst)
    return max(per_core.values(), default=0.0)


@dataclass(frozen=True)
class RunStats:
    """Summary of one completed run.

    Attributes
    ----------
    name:
        Job name (accounting tag).
    finished_at:
        Simulated completion time of the last iteration's barrier.
    iterations:
        Number of iterations executed.
    iteration_times:
        Wall time of each iteration (compute + barrier only; inter-
        iteration communication/LB gaps are *between* entries).
    lb_steps:
        Number of LB invocations.
    total_migrations:
        Objects moved across all steps.
    total_migration_cost_s:
        Wall-clock charged for state transfer.
    total_task_cpu_s:
        CPU-seconds consumed by the job's entry methods.
    """

    name: str
    finished_at: float
    iterations: int
    iteration_times: Tuple[float, ...]
    lb_steps: int
    total_migrations: int
    total_migration_cost_s: float
    total_task_cpu_s: float


class Runtime:
    """One parallel job over a set of cores.

    Parameters
    ----------
    engine, cluster:
        Shared simulation substrate.
    core_ids:
        Cores this job runs on (its "allocation").
    name:
        Unique accounting tag (``owner`` of all its processes).
    weight:
        OS share weight of the job's processes (>1 models a job the host
        scheduler favours — the paper's Mol3D background-load observation).
    net:
        Network model for communication and migration costs
        (default: :meth:`NetworkModel.native`).
    balancer, policy:
        Load-balancing strategy and cadence. ``balancer=None`` disables
        balancing entirely (the noLB runs).
    comm_bytes:
        Halo bytes a core exchanges per iteration (application-dependent).
        Ignored when ``comm_graph`` is given.
    comm_graph:
        Optional per-chare communication graph. When present, the
        per-iteration communication delay is derived from the *current
        object mapping* (co-located neighbours free, same-node cheap,
        remote full price — see
        :meth:`~repro.runtime.commgraph.CommGraph.per_core_external_bytes`),
        so migrations change communication cost; and the LB database
        records each task's communication partners for
        communication-aware strategies.
    local_comm_factor:
        Relative cost of intra-node vs. inter-node communication under a
        ``comm_graph`` (shared-memory transport discount).
    tracing:
        Record Projections-style events (needed for timelines).
    run_kernels:
        Invoke :meth:`Chare.execute` (real NumPy computation) before each
        simulated task — validates numerics at the cost of speed.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` sink. When given, the
        runtime attaches it to the balancer (per-step audit records),
        commits each step with simulated time / iteration / true per-core
        background load, and feeds run metrics (migration counters,
        iteration-duration histogram, per-core utilisation gauges).
        ``None`` (default) keeps all hot paths on the no-op branch.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        core_ids: Sequence[int],
        *,
        name: str = "app",
        weight: float = 1.0,
        net: Optional[NetworkModel] = None,
        balancer: Optional[LoadBalancer] = None,
        policy: Optional[LBPolicy] = None,
        comm_bytes: float = 0.0,
        comm_graph: Optional["CommGraph"] = None,
        local_comm_factor: float = 0.25,
        tracing: bool = False,
        run_kernels: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not core_ids:
            raise ValueError("Runtime needs at least one core")
        if len(set(core_ids)) != len(core_ids):
            raise ValueError("core_ids contains duplicates")
        check_positive("weight", weight)
        check_non_negative("comm_bytes", comm_bytes)
        self.engine = engine
        self.cluster = cluster
        self.core_ids: List[int] = list(core_ids)
        self.name = name
        self.weight = float(weight)
        self.net = net or NetworkModel.native()
        self.balancer = balancer
        self.policy = policy or LBPolicy()
        self.comm_bytes = float(comm_bytes)
        self.comm_graph = comm_graph
        check_non_negative("local_comm_factor", local_comm_factor)
        self.local_comm_factor = float(local_comm_factor)
        self._node_of: Dict[int, int] = {
            cid: cluster.node_of(cid).node_id for cid in core_ids
        }
        self.trace = TraceLog(enabled=tracing)
        self.run_kernels = bool(run_kernels)
        self.telemetry = telemetry
        #: optional :class:`~repro.obs.ledger.TimeLedger` fed iteration
        #: marks and LB pause windows (null hook: None by default;
        #: attached externally by the experiment runner)
        self.ledger = None
        #: optional :class:`~repro.obs.lineage.LineageRecorder` fed
        #: per-chare load samples and migration events (same null-hook
        #: doctrine as the ledger)
        self.lineage = None
        if telemetry is not None and balancer is not None:
            balancer.attach_telemetry(telemetry)
        # per-core true injected background CPU at the current LB window's
        # start — the ground truth Eq. (2) estimates against
        self._bg_window_base: Dict[int, float] = {}

        self.arrays: Dict[str, ChareArray] = {}
        self.chares: Dict[ChareKey, Chare] = {}
        self.mapping: Dict[ChareKey, int] = {}

        self.schedulers: Dict[int, CoreScheduler] = {
            cid: CoreScheduler(
                cluster.core(cid),
                owner=self.name,
                weight=self.weight,
                work_of=self._work_of,
                on_task_done=self._task_done,
                on_drain=self._core_drained,
            )
            for cid in self.core_ids
        }

        self.db: Optional[LBDatabase] = None
        self._total_iterations = 0
        self._iteration = 0
        self._iter_started = 0.0
        self._arrived = 0
        self._expected_arrivals = 0
        self._started = False
        self.finished_at: Optional[float] = None
        self.iteration_times: List[float] = []
        self.lb_step_count = 0
        self.migration_count = 0
        self.migration_cost_s = 0.0
        self.total_task_cpu_s = 0.0
        self._on_finish: List[Callable[["Runtime"], None]] = []
        self._on_iteration: List[Callable[["Runtime", int], None]] = []
        # per-iteration imbalance instrumentation (feeds adaptive policies)
        self._iter_core_wall: Dict[int, float] = {}
        self._last_lb_completed = 0
        #: measured max/mean per-core wall share of each iteration
        self.iteration_imbalance: List[float] = []

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register_array(
        self,
        array: ChareArray,
        mapping: Optional[Dict[ChareKey, int]] = None,
    ) -> None:
        """Add a chare array; default placement is block mapping."""
        if self._started:
            raise RuntimeError("cannot register arrays after start()")
        if array.name in self.arrays:
            raise ValueError(f"array {array.name!r} already registered")
        placement = mapping or array.block_mapping(self.core_ids)
        # validate the full placement before mutating any state
        for chare in array:
            if chare.key not in placement:
                raise ValueError(f"no placement for {chare.key}")
            if placement[chare.key] not in self.schedulers:
                raise ValueError(
                    f"{chare.key} placed on core {placement[chare.key]} "
                    "outside the job"
                )
        self.arrays[array.name] = array
        for chare in array:
            cid = placement[chare.key]
            self.chares[chare.key] = chare
            self.mapping[chare.key] = cid
            chare.current_core = cid

    def on_finish(self, callback: Callable[["Runtime"], None]) -> None:
        """Register a completion callback (fires at the final barrier)."""
        self._on_finish.append(callback)

    def on_iteration(self, callback: Callable[["Runtime", int], None]) -> None:
        """Register a per-iteration callback ``(runtime, iteration)``.

        Fires at each iteration's barrier, before communication/LB.
        Used by event-driven experiment scripts (e.g. the Figure 3
        harness flips interference on and off at iteration boundaries).
        """
        self._on_iteration.append(callback)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self, iterations: int, *, at: Optional[float] = None) -> None:
        """Schedule the job to run ``iterations`` iterations.

        Call ``engine.run()`` afterwards to execute. ``at`` delays the
        job's launch (used to start interference mid-run).
        """
        check_positive("iterations", iterations)
        if self._started:
            raise RuntimeError("Runtime already started")
        if not self.chares:
            raise ValueError("no chare arrays registered")
        self._started = True
        self._total_iterations = int(iterations)
        procstat = self.cluster.procstat(self.name, self.core_ids)
        state_bytes = {k: c.state_bytes for k, c in self.chares.items()}
        comm = None
        if self.comm_graph is not None:
            comm = {
                key: self.comm_graph.neighbors(key) for key in self.chares
            }
        start_time = self.engine.now if at is None else at

        def _launch() -> None:
            # baseline the instrumentation window at launch, not at
            # construction, so a delayed job does not see pre-launch time
            self.db = LBDatabase(procstat, state_bytes, comm=comm)
            if self.telemetry is not None:
                self._bg_window_base = self._true_bg_cpu()
            self._begin_iteration(0)

        self.engine.schedule_at(start_time, _launch)

    @property
    def done(self) -> bool:
        """Has the final iteration's barrier completed?"""
        return self.finished_at is not None

    @property
    def stats(self) -> RunStats:
        """Summary of the run (valid once :attr:`done`)."""
        if not self.done:
            raise RuntimeError(f"job {self.name!r} has not finished")
        return RunStats(
            name=self.name,
            finished_at=self.finished_at,
            iterations=self._total_iterations,
            iteration_times=tuple(self.iteration_times),
            lb_steps=self.lb_step_count,
            total_migrations=self.migration_count,
            total_migration_cost_s=self.migration_cost_s,
            total_task_cpu_s=self.total_task_cpu_s,
        )

    # ------------------------------------------------------------------
    # iteration machinery
    # ------------------------------------------------------------------
    def _begin_iteration(self, iteration: int) -> None:
        if self.ledger is not None:
            self.ledger.mark_iteration(iteration, self.engine.now)
        if self.lineage is not None:
            self.lineage.mark_iteration(iteration, self.engine.now)
        self._iteration = iteration
        self._iter_started = self.engine.now
        self._iter_core_wall = {cid: 0.0 for cid in self.core_ids}
        self._arrived = 0
        self._expected_arrivals = len(self.core_ids)
        per_core: Dict[int, List[ChareKey]] = {cid: [] for cid in self.core_ids}
        for key, cid in self.mapping.items():
            per_core[cid].append(key)
        empty_cores = 0
        for cid in self.core_ids:
            keys = sorted(per_core[cid])
            if not keys:
                empty_cores += 1
                continue
            sched = self.schedulers[cid]
            for key in keys:
                sched.enqueue(ComputeMsg(chare=key, iteration=iteration))
        # cores with no objects arrive at the barrier instantly
        for _ in range(empty_cores):
            self._core_drained()

    def _work_of(self, msg: ComputeMsg) -> float:
        chare = self.chares[msg.chare]
        if self.run_kernels:
            chare.execute(msg.iteration)
        demand = chare.work(msg.iteration)
        if demand < 0:
            raise ValueError(
                f"{chare!r}.work({msg.iteration}) returned negative {demand}"
            )
        return demand

    def _task_done(self, msg: ComputeMsg, proc: SimProcess) -> None:
        chare = self.chares[msg.chare]
        chare.executions += 1
        chare.total_cpu_time += proc.cpu_time
        self.total_task_cpu_s += proc.cpu_time
        assert self.db is not None
        self.db.record_task(msg.chare, proc.cpu_time)
        started = proc.started_at if proc.started_at is not None else self.engine.now
        core_id = self.mapping[msg.chare]
        if self.lineage is not None:
            self.lineage.record_sample(
                msg.chare, msg.iteration, core_id, proc.cpu_time
            )
        self._iter_core_wall[core_id] = (
            self._iter_core_wall.get(core_id, 0.0) + (self.engine.now - started)
        )
        self.trace.add_task(
            TaskEvent(
                core_id=self.mapping[msg.chare],
                chare=msg.chare,
                iteration=msg.iteration,
                start=proc.started_at if proc.started_at is not None else 0.0,
                end=self.engine.now,
                cpu_time=proc.cpu_time,
            )
        )

    def _core_drained(self) -> None:
        self._arrived += 1
        if self._arrived == self._expected_arrivals:
            self._end_iteration()

    def _end_iteration(self) -> None:
        now = self.engine.now
        iteration = self._iteration
        self.trace.add_iteration(
            IterationEvent(iteration=iteration, start=self._iter_started, end=now)
        )
        self.iteration_times.append(now - self._iter_started)
        self.iteration_imbalance.append(self._measure_imbalance())
        for cb in self._on_iteration:
            cb(self, iteration)
        if self.telemetry is not None:
            self.telemetry.metrics.histogram("iteration_duration_s").observe(
                self.iteration_times[-1]
            )
        completed = iteration + 1
        if completed == self._total_iterations:
            self.finished_at = now
            for cb in self._on_finish:
                cb(self)
            if self.telemetry is not None:
                self._record_final_metrics()
            return
        delay = self.comm_delay()
        if self.balancer is not None and self.policy.due(
            completed,
            self._total_iterations,
            imbalance=self.iteration_imbalance[-1],
            since_last_lb=completed - self._last_lb_completed,
        ):
            self._last_lb_completed = completed
            self.engine.schedule_after(delay, self._lb_step, completed)
        else:
            self.engine.schedule_after(delay, self._begin_iteration, completed)

    def _measure_imbalance(self) -> float:
        """Max/mean per-core wall time of the just-finished iteration.

        Wall (not CPU) time: an interfered core's tasks stretch, so this
        ratio rises toward the interference slowdown factor even though
        the instrumented CPU loads stay flat — exactly the signal an
        adaptive trigger needs between LB windows.
        """
        walls = [self._iter_core_wall.get(cid, 0.0) for cid in self.core_ids]
        mean = sum(walls) / len(walls)
        if mean <= 0.0:
            return 1.0
        return max(walls) / mean

    def comm_delay(self) -> float:
        """Per-iteration communication: halo exchange + reduction tree.

        With a :class:`CommGraph`, the halo term is the slowest core's
        effective external traffic under the *current* mapping — so a
        locality-preserving balancer genuinely shortens this delay.
        Without one, the application-declared flat ``comm_bytes`` is used.
        """
        return compute_comm_delay(
            net=self.net,
            num_cores=len(self.core_ids),
            comm_bytes=self.comm_bytes,
            comm_graph=self.comm_graph,
            mapping=self.mapping,
            node_of=self._node_of,
            local_comm_factor=self.local_comm_factor,
        )

    # ------------------------------------------------------------------
    # load balancing
    # ------------------------------------------------------------------
    def _lb_step(self, next_iteration: int) -> None:
        assert self.db is not None and self.balancer is not None
        view = self.db.build_view(self.mapping)
        migrations = self.balancer.balance(view)
        cost = self._apply_migrations(migrations)
        if self.lineage is not None:
            self.lineage.record_lb_step(
                time=self.engine.now,
                iteration=next_iteration,
                migrations=[(m.chare, m.src, m.dst) for m in migrations],
                bg_cpu=self._true_bg_cpu(),
            )
        if self.telemetry is not None:
            self._commit_telemetry_step(next_iteration, migrations, cost)
        self.db.reset_window()
        self.lb_step_count += 1
        self.trace.add_lb_step(
            LBStepEvent(
                time=self.engine.now,
                iteration=next_iteration,
                num_migrations=len(migrations),
                migration_cost_s=cost,
                t_avg=view.t_avg,
                max_load=max((c.total_load for c in view.cores), default=0.0),
            )
        )
        _log.debug(
            "%s: LB step before iteration %d -> %d migrations, cost %.6fs",
            self.name,
            next_iteration,
            len(migrations),
            cost,
        )
        pause = self.policy.decision_overhead_s + cost
        if self.ledger is not None:
            # `now + pause` mirrors schedule_after's `_now + delay`, so
            # the window boundary is the same float in both backends
            now = self.engine.now
            self.ledger.mark_pause(now, now + pause)
        self.engine.schedule_after(pause, self._begin_iteration, next_iteration)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _true_bg_cpu(self) -> Dict[int, float]:
        """Cumulative CPU-seconds other owners consumed on our cores.

        The ground truth the Eq.-(2) estimate ``O_p`` is audited against:
        the window delta of this quantity is exactly the background load
        injected on each core during the LB window.
        """
        bg: Dict[int, float] = {}
        for cid in self.core_ids:
            core = self.cluster.core(cid)
            core.sync()
            bg[cid] = sum(
                cpu
                for owner, cpu in core.cpu_by_owner.items()
                if owner != self.name
            )
        return bg

    def _commit_telemetry_step(
        self,
        next_iteration: int,
        migrations: Sequence[Migration],
        cost: float,
    ) -> None:
        """Fill the pending audit record and bump run metrics."""
        assert self.telemetry is not None
        bg_now = self._true_bg_cpu()
        bg_true = {
            cid: bg_now[cid] - self._bg_window_base.get(cid, 0.0)
            for cid in self.core_ids
        }
        self._bg_window_base = bg_now
        self.telemetry.commit_step(
            time=self.engine.now,
            iteration=next_iteration,
            bg_true=bg_true,
            migration_cost_s=cost,
            decision_overhead_s=self.policy.decision_overhead_s,
        )
        metrics = self.telemetry.metrics
        metrics.counter("lb_steps").inc()
        metrics.counter("migrations").inc(len(migrations))
        metrics.counter("bytes_moved").inc(
            sum(self.chares[m.chare].state_bytes for m in migrations)
        )
        metrics.counter("lb_overhead_sim_s").inc(
            self.policy.decision_overhead_s + cost
        )

    def _record_final_metrics(self) -> None:
        """Per-core utilisation gauges at job completion."""
        assert self.telemetry is not None
        metrics = self.telemetry.metrics
        for cid in self.core_ids:
            core = self.cluster.core(cid)
            core.sync()
            wall = core.busy_time + core.idle_time
            metrics.gauge(f"core_utilization.{cid}").set(
                core.busy_time / wall if wall > 0 else 0.0
            )

    def _apply_migrations(self, migrations: Sequence[Migration]) -> float:
        """Re-map objects and return the transfer wall-clock cost.

        Transfers proceed in parallel across cores but serialise per
        core's link: cost = max over cores of its inbound+outbound sum.
        Migrations between cores of the same node move through shared
        memory and are discounted by ``local_comm_factor`` — the cost
        asymmetry that locality-preferring strategies
        (:class:`~repro.core.hierarchical.HierarchicalLB`) exploit.
        """
        cost = apply_migrations(
            migrations,
            chares=self.chares,
            mapping=self.mapping,
            net=self.net,
            node_of=self._node_of,
            local_comm_factor=self.local_comm_factor,
        )
        self.migration_count += len(migrations)
        for m in migrations:
            self.trace.add_migration(
                MigrationEvent(
                    time=self.engine.now,
                    chare=m.chare,
                    src=m.src,
                    dst=m.dst,
                    state_bytes=self.chares[m.chare].state_bytes,
                )
            )
        self.migration_cost_s += cost
        return cost

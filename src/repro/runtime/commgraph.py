"""Per-chare communication graphs.

The paper treats communication as a fixed per-iteration cost; its future
work ("due to the inferior performance of network...") motivates making
the runtime *aware* of communication. This module adds that awareness as
an opt-in extension:

* a :class:`CommGraph` records how many bytes each pair of chares
  exchanges per iteration (Charm++'s LB database records exactly this);
* the runtime, given a graph, derives each core's *external* traffic from
  the current object mapping — neighbours co-located on a core are free,
  same-node neighbours cheap, remote neighbours full price — so
  migrations change communication cost, not just CPU balance;
* :class:`~repro.core.commaware.CommAwareRefineLB` exploits the graph
  when choosing receivers.

Stencil applications produce chain graphs (strip i exchanges halo rows
with strips i±1); Mol3D produces a ring over cells with ghost-particle
volumes proportional to cell populations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.util import check_non_negative

__all__ = ["CommGraph"]

ChareKey = Tuple[str, int]
Edge = Tuple[ChareKey, ChareKey]


def _norm(a: ChareKey, b: ChareKey) -> Edge:
    return (a, b) if a <= b else (b, a)


class CommGraph:
    """Undirected weighted graph of per-iteration chare communication.

    Edge weights are bytes exchanged per iteration (both directions
    combined). Self-edges are rejected — a chare's internal data motion
    is part of its compute cost, not communication.
    """

    def __init__(
        self, edges: Optional[Mapping[Edge, float]] = None
    ) -> None:
        self._edges: Dict[Edge, float] = {}
        self._adj: Dict[ChareKey, Dict[ChareKey, float]] = {}
        if edges:
            for (a, b), nbytes in edges.items():
                self.add_edge(a, b, nbytes)

    # ------------------------------------------------------------------
    def add_edge(self, a: ChareKey, b: ChareKey, nbytes: float) -> None:
        """Add (or accumulate onto) the edge between ``a`` and ``b``."""
        check_non_negative("nbytes", nbytes)
        if a == b:
            raise ValueError(f"self-communication edge on {a}")
        key = _norm(a, b)
        self._edges[key] = self._edges.get(key, 0.0) + float(nbytes)
        self._adj.setdefault(a, {})[b] = self._edges[key]
        self._adj.setdefault(b, {})[a] = self._edges[key]

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def bytes_between(self, a: ChareKey, b: ChareKey) -> float:
        """Bytes per iteration exchanged between ``a`` and ``b``."""
        return self._edges.get(_norm(a, b), 0.0)

    def neighbors(self, chare: ChareKey) -> Dict[ChareKey, float]:
        """``other -> bytes`` for every chare ``chare`` talks to."""
        return dict(self._adj.get(chare, {}))

    def total_bytes(self) -> float:
        """Total per-iteration communication volume."""
        return sum(self._edges.values())

    def chares(self) -> Iterable[ChareKey]:
        """All chares appearing in at least one edge."""
        return self._adj.keys()

    # ------------------------------------------------------------------
    # mapping-dependent quantities
    # ------------------------------------------------------------------
    def per_core_external_bytes(
        self,
        mapping: Mapping[ChareKey, int],
        *,
        node_of: Optional[Mapping[int, int]] = None,
        local_factor: float = 0.25,
    ) -> Dict[int, float]:
        """Effective external bytes each core sends+receives per iteration.

        An edge whose endpoints share a core costs nothing (in-memory
        delivery). Endpoints on distinct cores of the same node cost
        ``local_factor`` of the wire price (shared-memory transport);
        distinct nodes cost full price. Each external edge charges both
        endpoint cores (each drives its half of the exchange).

        Parameters
        ----------
        mapping:
            chare -> core. Every edge endpoint must be mapped.
        node_of:
            core -> node; if omitted, every distinct-core edge is remote.
        local_factor:
            Relative cost of intra-node communication.
        """
        check_non_negative("local_factor", local_factor)
        per_core: Dict[int, float] = {cid: 0.0 for cid in set(mapping.values())}
        for (a, b), nbytes in self._edges.items():
            try:
                ca, cb = mapping[a], mapping[b]
            except KeyError as exc:
                raise ValueError(f"comm edge endpoint {exc} is not mapped") from None
            if ca == cb:
                continue
            factor = 1.0
            if node_of is not None and node_of.get(ca) == node_of.get(cb):
                factor = local_factor
            cost = nbytes * factor
            per_core[ca] += cost
            per_core[cb] += cost
        return per_core

    def cut_bytes(self, mapping: Mapping[ChareKey, int]) -> float:
        """Total bytes crossing core boundaries under ``mapping``."""
        total = 0.0
        for (a, b), nbytes in self._edges.items():
            if mapping[a] != mapping[b]:
                total += nbytes
        return total

    # ------------------------------------------------------------------
    # constructors for common topologies
    # ------------------------------------------------------------------
    @classmethod
    def chain(
        cls, array_name: str, num_chares: int, bytes_per_edge: float
    ) -> "CommGraph":
        """Nearest-neighbour chain — the stencil strip topology."""
        g = cls()
        for i in range(num_chares - 1):
            g.add_edge((array_name, i), (array_name, i + 1), bytes_per_edge)
        return g

    @classmethod
    def ring(
        cls, array_name: str, num_chares: int, bytes_per_edge: float
    ) -> "CommGraph":
        """Chain plus the wrap-around edge — periodic boundaries."""
        g = cls.chain(array_name, num_chares, bytes_per_edge)
        if num_chares > 2:
            g.add_edge((array_name, num_chares - 1), (array_name, 0), bytes_per_edge)
        return g

"""Projections-style execution traces.

The paper analyses behaviour with Projections timelines (Figures 1 and 3).
:class:`TraceLog` records the same primitive events — per-task execution
intervals, iteration boundaries, LB steps, migrations — which
:mod:`repro.projections` turns into per-core timelines, idle statistics
and ASCII renderings.

Tracing is optional (``Runtime(..., tracing=True)``); a disabled log
accepts events and drops them, so call sites stay unconditional.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TaskEvent",
    "IterationEvent",
    "LBStepEvent",
    "MigrationEvent",
    "TraceLog",
]

ChareKey = Tuple[str, int]

# one event per entry-method execution when tracing — worth __slots__
# (dataclass support landed in 3.10; plain dicts on 3.9)
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class TaskEvent:
    """One entry-method execution interval on a core.

    ``end - start`` is the task's *wall* time (stretched by interference);
    ``cpu_time`` is what the LB database records.
    """

    core_id: int
    chare: ChareKey
    iteration: int
    start: float
    end: float
    cpu_time: float


@dataclass(frozen=True, **_SLOTS)
class IterationEvent:
    """Completion of one application iteration."""

    iteration: int
    start: float
    end: float


@dataclass(frozen=True, **_SLOTS)
class LBStepEvent:
    """One load-balancing step."""

    time: float
    iteration: int
    num_migrations: int
    migration_cost_s: float
    t_avg: float
    max_load: float


@dataclass(frozen=True, **_SLOTS)
class MigrationEvent:
    """One object migration."""

    time: float
    chare: ChareKey
    src: int
    dst: int
    state_bytes: float


class TraceLog:
    """Append-only event log for one runtime.

    Parameters
    ----------
    enabled:
        When False every ``add_*`` is a no-op (zero overhead beyond the
        call).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.tasks: List[TaskEvent] = []
        self.iterations: List[IterationEvent] = []
        self.lb_steps: List[LBStepEvent] = []
        self.migrations: List[MigrationEvent] = []
        #: Optional display names per ``core_id`` for trace exporters
        #: (the fabric flight recorder maps worker ids onto "cores");
        #: unnamed cores fall back to ``core <id>``.
        self.core_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def add_task(self, ev: TaskEvent) -> None:
        if self.enabled:
            self.tasks.append(ev)

    def add_iteration(self, ev: IterationEvent) -> None:
        if self.enabled:
            self.iterations.append(ev)

    def add_lb_step(self, ev: LBStepEvent) -> None:
        if self.enabled:
            self.lb_steps.append(ev)

    def add_migration(self, ev: MigrationEvent) -> None:
        if self.enabled:
            self.migrations.append(ev)

    # ------------------------------------------------------------------
    def tasks_on_core(self, core_id: int) -> List[TaskEvent]:
        """Task events on one core, in start-time order."""
        return sorted(
            (t for t in self.tasks if t.core_id == core_id),
            key=lambda t: t.start,
        )

    def iteration_span(self, iteration: int) -> Optional[IterationEvent]:
        """The record for ``iteration``, or None if absent."""
        for ev in self.iterations:
            if ev.iteration == iteration:
                return ev
        return None

    def total_migrations(self) -> int:
        """Total migrations across all LB steps."""
        return len(self.migrations)

"""Charm++-style reductions.

Tightly coupled iterative codes end each step with a global combine —
residual norms (Jacobi), total energy (MD). Charm++ expresses these as
*reductions*: every chare contributes a value, a spanning tree combines
them, and the result is delivered to a client callback.

:class:`Reduction` reproduces the semantics (contribute / combine /
deliver, with completeness checking); its latency is part of the
runtime's per-iteration communication delay (a log₂(P) message chain,
see :meth:`Reduction.tree_latency`).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.netmodel import NetworkModel

__all__ = ["REDUCERS", "Reduction"]

ChareKey = Tuple[str, int]

#: Built-in combiners, by name (mirrors CkReduction's sum/max/min/prod).
REDUCERS: Dict[str, Callable[[float, float], float]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
    "prod": lambda a, b: a * b,
}


class Reduction:
    """One reduction instance over a fixed set of contributors.

    Parameters
    ----------
    contributors:
        The chare keys expected to contribute exactly once each.
    reducer:
        Name in :data:`REDUCERS` or a custom associative-commutative
        binary callable.
    client:
        Optional callback receiving the combined value on completion.
    """

    def __init__(
        self,
        contributors: List[ChareKey],
        reducer: Callable[[float, float], float] = REDUCERS["sum"],
        client: Optional[Callable[[float], None]] = None,
    ) -> None:
        if not contributors:
            raise ValueError("Reduction needs at least one contributor")
        if isinstance(reducer, str):
            try:
                reducer = REDUCERS[reducer]
            except KeyError:
                raise ValueError(
                    f"unknown reducer {reducer!r}; known: {sorted(REDUCERS)}"
                ) from None
        self._expected = set(contributors)
        self._seen: Dict[ChareKey, float] = {}
        self._reducer = reducer
        self._client = client
        self._acc: Optional[float] = None
        self.result: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """Have all contributors reported?"""
        return len(self._seen) == len(self._expected)

    @property
    def pending(self) -> int:
        """Contributors still missing."""
        return len(self._expected) - len(self._seen)

    def contribute(self, chare: ChareKey, value: float) -> None:
        """Add one contribution; delivers to the client on the last one."""
        if chare not in self._expected:
            raise ValueError(f"{chare} is not a contributor to this reduction")
        if chare in self._seen:
            raise ValueError(f"{chare} contributed twice")
        self._seen[chare] = value
        self._acc = value if self._acc is None else self._reducer(self._acc, value)
        if self.complete:
            self.result = self._acc
            if self._client is not None:
                self._client(self.result)

    # ------------------------------------------------------------------
    @staticmethod
    def tree_latency(num_cores: int, net: NetworkModel, payload_bytes: float = 8.0) -> float:
        """Latency of a binary combining tree over ``num_cores`` cores.

        ``ceil(log2 P)`` sequential message hops of ``payload_bytes`` each
        (contributions within a core are free).
        """
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        hops = math.ceil(math.log2(num_cores)) if num_cores > 1 else 0
        return hops * net.message_time(payload_bytes)

"""Chares: migratable, instrumented work objects.

A :class:`Chare` is the unit of decomposition, instrumentation and
migration — the paper's "charm++ objects or chares ... medium grained
pieces". Applications subclass it and implement :meth:`Chare.work`, the
CPU-seconds one iteration of this object costs (typically from the
object's share of the grid/particles; see :mod:`repro.apps`). Optionally
:meth:`Chare.execute` performs *real* computation (NumPy kernels) so the
simulated costs stay anchored to genuine numerics.

A :class:`ChareArray` groups chares under one name with a default
block mapping onto cores — the Charm++ chare-array idiom, "the number of
objects needs to be more than the number of available processors"
(overdecomposition).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util import check_non_negative, check_positive

__all__ = ["Chare", "ChareArray"]

ChareKey = Tuple[str, int]

_INF = float("inf")


class Chare:
    """One migratable object.

    Parameters
    ----------
    index:
        Index within the owning array.
    state_bytes:
        Serialised size; migration of this chare transfers this much data.

    Subclasses override :meth:`work` (mandatory: the CPU cost model) and
    may override :meth:`execute` (real computation hook, default no-op)
    and :meth:`on_migrate`.
    """

    def __init__(self, index: int, *, state_bytes: float = 0.0) -> None:
        # constructed per chare per run: inline comparisons accept the
        # common case, the full checkers handle everything else
        if not (
            type(index) is int
            and index >= 0
            and type(state_bytes) is float
            and 0.0 <= state_bytes < _INF
        ):
            check_non_negative("index", index)
            check_non_negative("state_bytes", state_bytes)
        self.index = int(index)
        self.state_bytes = float(state_bytes)
        #: set by the owning array on registration
        self.array_name: str = ""
        #: maintained by the runtime
        self.current_core: Optional[int] = None
        #: lifetime statistics
        self.executions: int = 0
        self.total_cpu_time: float = 0.0
        self.migrations: int = 0

    # -- identity ------------------------------------------------------
    @property
    def key(self) -> ChareKey:
        """Hashable identity ``(array_name, index)``."""
        return (self.array_name, self.index)

    # -- behaviour (override points) ------------------------------------
    def work(self, iteration: int) -> float:
        """CPU-seconds this chare's entry method costs at ``iteration``.

        Must be non-negative and deterministic for a given iteration.
        """
        raise NotImplementedError

    def execute(self, iteration: int) -> None:
        """Perform the real computation for ``iteration`` (optional).

        The runtime calls this when constructed with ``run_kernels=True``;
        the default is a no-op so large simulations stay fast.
        """

    def on_migrate(self, src_core: int, dst_core: int) -> None:
        """Hook invoked after this chare is migrated (default no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.array_name}[{self.index}])"


class ChareArray:
    """A named collection of chares with an initial block mapping.

    Parameters
    ----------
    name:
        Array name, unique within a runtime.
    chares:
        The member objects; their ``array_name`` is set here.
    """

    def __init__(self, name: str, chares: Sequence[Chare]) -> None:
        if not name:
            raise ValueError("ChareArray name must be non-empty")
        if not chares:
            raise ValueError(f"ChareArray {name!r} needs at least one chare")
        indices = [c.index for c in chares]
        if len(set(indices)) != len(indices):
            raise ValueError(f"ChareArray {name!r} has duplicate indices")
        self.name = name
        self.chares: List[Chare] = sorted(chares, key=lambda c: c.index)
        for c in self.chares:
            c.array_name = name

    def __len__(self) -> int:
        return len(self.chares)

    def __iter__(self):
        return iter(self.chares)

    def __getitem__(self, index: int) -> Chare:
        for c in self.chares:
            if c.index == index:
                return c
        raise KeyError(f"{self.name}[{index}]")

    def block_mapping(self, core_ids: Sequence[int]) -> Dict[ChareKey, int]:
        """Initial mapping: contiguous blocks of chares per core.

        This is Charm++'s default array placement and the static mapping
        the "noLB" runs keep forever. Cores receive ``ceil``/``floor``
        blocks so the imbalance of the *initial* mapping is at most one
        chare.
        """
        if not core_ids:
            raise ValueError("block_mapping needs at least one core")
        n, p = len(self.chares), len(core_ids)
        mapping: Dict[ChareKey, int] = {}
        base, extra = divmod(n, p)
        pos = 0
        for rank, cid in enumerate(core_ids):
            count = base + (1 if rank < extra else 0)
            for c in self.chares[pos : pos + count]:
                mapping[c.key] = cid
            pos += count
        return mapping

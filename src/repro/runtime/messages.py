"""Messages driving the runtime.

Charm++ execution is message-driven: an entry method runs only when a
message for it reaches the object's core. The reproduction keeps that
structure — the iteration driver *enqueues messages*, per-core schedulers
*execute* them — because it is precisely what makes migration trivial
(re-route future messages) and instrumentation natural (measure per
message execution).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Tuple

__all__ = ["ComputeMsg", "MigrateMsg"]

ChareKey = Tuple[str, int]

# messages are allocated per entry-method execution — worth __slots__
# (dataclass support landed in 3.10; plain dicts on 3.9)
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class ComputeMsg:
    """Run one iteration's entry method on a chare.

    Attributes
    ----------
    chare:
        Target object.
    iteration:
        Iteration number the entry method belongs to (0-based).
    """

    chare: ChareKey
    iteration: int


@dataclass(frozen=True, **_SLOTS)
class MigrateMsg:
    """Record of a chare state transfer (for traces; cost handled by runtime).

    Attributes
    ----------
    chare:
        Object being moved.
    src, dst:
        Source and destination cores.
    state_bytes:
        Serialised payload size.
    """

    chare: ChareKey
    src: int
    dst: int
    state_bytes: float

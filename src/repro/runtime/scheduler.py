"""Per-core message scheduler.

One :class:`CoreScheduler` per (runtime, core): a FIFO of pending
:class:`~repro.runtime.messages.ComputeMsg`, executing **one entry method
at a time** as a :class:`~repro.sim.process.SimProcess` on the underlying
:class:`~repro.sim.cpu.SharedCore`. This mirrors a Charm++ PE's scheduler
loop and has the observable consequence the paper's Figure 1 shows: under
interference each *task's wall time* stretches (the process advances at a
fractional rate) while its *CPU time* — what the LB database records —
stays the task's intrinsic cost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.runtime.messages import ComputeMsg
from repro.sim.cpu import SharedCore
from repro.sim.process import SimProcess

__all__ = ["CoreScheduler"]


class CoreScheduler:
    """FIFO entry-method executor for one core of one job.

    Parameters
    ----------
    core:
        The physical core this scheduler occupies when it has work.
    owner:
        Accounting tag of the job (forwarded to processes).
    weight:
        OS scheduling weight of the job's processes on this core.
    work_of:
        ``msg -> CPU-seconds`` cost oracle (the runtime resolves the
        chare and evaluates its work model).
    on_task_done:
        ``(msg, process) -> None`` — instrumentation/trace callback.
    on_drain:
        ``() -> None`` — called when the queue empties (barrier arrival).
    """

    def __init__(
        self,
        core: SharedCore,
        *,
        owner: str,
        weight: float,
        work_of: Callable[[ComputeMsg], float],
        on_task_done: Callable[[ComputeMsg, SimProcess], None],
        on_drain: Callable[[], None],
    ) -> None:
        self.core = core
        self.owner = owner
        self.weight = weight
        self._work_of = work_of
        self._on_task_done = on_task_done
        self._on_drain = on_drain
        self._queue: Deque[ComputeMsg] = deque()
        self._current: Optional[ComputeMsg] = None
        self.tasks_executed = 0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Is an entry method currently executing?"""
        return self._current is not None

    @property
    def queued(self) -> int:
        """Messages waiting behind the current one."""
        return len(self._queue)

    def enqueue(self, msg: ComputeMsg) -> None:
        """Deliver a message; starts executing immediately if idle."""
        self._queue.append(msg)
        if not self.busy:
            self._start_next()

    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        msg = self._queue.popleft()
        self._current = msg
        demand = self._work_of(msg)
        proc = SimProcess(
            name=f"{self.owner}:{msg.chare[0]}[{msg.chare[1]}]@it{msg.iteration}",
            demand=demand,
            weight=self.weight,
            owner=self.owner,
            on_complete=self._task_complete,
            key=msg.chare,
        )
        self.core.dispatch(proc)

    def _task_complete(self, proc: SimProcess) -> None:
        msg = self._current
        assert msg is not None
        self._current = None
        self.tasks_executed += 1
        self._on_task_done(msg, proc)
        if self._queue:
            self._start_next()
        else:
            self._on_drain()

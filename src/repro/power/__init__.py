"""Power and energy modelling.

The paper's energy argument rests on two numbers from its testbed: a node
draws **40 W at idle (base power)** and **170 W fully loaded**. Idle cores
waiting at a barrier therefore still burn most of a node's power, which is
why shortening the run (load balancing) saves energy even though average
power *rises* (Figure 4).

* :mod:`repro.power.model` — :class:`PowerModel`: node power as an affine
  function of busy-core count.
* :mod:`repro.power.meter` — :class:`PowerMeter`: per-node energy
  integration from the cores' exact busy-time counters, plus a sampled
  power time-series reconstructed from busy intervals (the per-second
  readings the testbed's meters provided).
"""

from repro.power.model import PowerModel
from repro.power.meter import EnergyReading, PowerMeter

__all__ = ["PowerModel", "PowerMeter", "EnergyReading"]

"""Power metering over a simulated cluster.

:class:`PowerMeter` plays the role of the testbed's per-node watt meters.
Energy is computed *exactly* from each core's integrated busy time (the
power model is affine in busy cores, so no sampling error is introduced);
a per-second power series — what the real meters reported — can be
reconstructed from the cores' busy-interval logs for plots and timelines.

Typical usage::

    meter = PowerMeter(cluster, PowerModel(), nodes=cluster.nodes)
    mark = meter.reading()           # before the run
    ...                              # simulate
    done = meter.reading()
    window = done - mark             # EnergyReading supports subtraction
    window.average_power_w
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.power.model import PowerModel
from repro.util import check_positive

__all__ = ["EnergyReading", "PowerMeter"]


@dataclass(frozen=True)
class EnergyReading:
    """Cumulative meter state at one instant (supports windowing by ``-``).

    Attributes
    ----------
    time:
        Simulated time of the reading.
    energy_j:
        Cumulative energy since t=0 for the metered nodes.
    busy_core_seconds:
        Cumulative Σ busy time over metered cores.
    """

    time: float
    energy_j: float
    busy_core_seconds: float

    def __sub__(self, earlier: "EnergyReading") -> "EnergyReading":
        if earlier.time > self.time:
            raise ValueError("subtracting a newer reading from an older one")
        return EnergyReading(
            time=self.time - earlier.time,
            energy_j=self.energy_j - earlier.energy_j,
            busy_core_seconds=self.busy_core_seconds - earlier.busy_core_seconds,
        )

    @property
    def average_power_w(self) -> float:
        """Mean power over the window (0 for an empty window)."""
        if self.time <= 0:
            return 0.0
        return self.energy_j / self.time


class PowerMeter:
    """Meters a set of nodes of a cluster under a :class:`PowerModel`.

    Parameters
    ----------
    cluster:
        The simulated cluster.
    model:
        Power model; its ``cores_per_node`` must match the cluster's.
    nodes:
        Metered subset (default: all nodes). Figure 2's 4-core runs only
        power the nodes the job actually uses — pass that subset to match
        the paper's per-run energy accounting.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: Optional[PowerModel] = None,
        nodes: Optional[Sequence[Node]] = None,
    ) -> None:
        self.cluster = cluster
        self.model = model or PowerModel(cores_per_node=cluster.cores_per_node)
        if self.model.cores_per_node != cluster.cores_per_node:
            raise ValueError(
                f"model.cores_per_node ({self.model.cores_per_node}) != "
                f"cluster.cores_per_node ({cluster.cores_per_node})"
            )
        self.nodes: List[Node] = list(nodes) if nodes is not None else list(cluster.nodes)
        if not self.nodes:
            raise ValueError("PowerMeter needs at least one node")

    # ------------------------------------------------------------------
    # exact integration
    # ------------------------------------------------------------------
    def reading(self) -> EnergyReading:
        """Exact cumulative reading at the current simulated time."""
        now = self.cluster.engine.now
        busy = 0.0
        for node in self.nodes:
            busy += node.total_busy_time()
        energy = self.model.energy(now, busy, len(self.nodes)) if now > 0 else 0.0
        return EnergyReading(time=now, energy_j=energy, busy_core_seconds=busy)

    # ------------------------------------------------------------------
    # reconstructed time series (requires record_intervals=True)
    # ------------------------------------------------------------------
    def power_series(
        self, t_end: float, dt: float = 1.0, t_start: float = 0.0
    ) -> "np.ndarray":
        """Per-sample total power (W) over [t_start, t_end), step ``dt``.

        Each sample is the *time-averaged* power over its interval, i.e.
        what a watt meter integrating over ``dt`` (the paper's meters
        reported per-second values) would display. Requires the cluster to
        have been built with ``record_intervals=True``.
        """
        check_positive("dt", dt)
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        edges = np.arange(t_start, t_end + dt / 2, dt)
        n_bins = len(edges) - 1
        busy_per_bin = np.zeros(n_bins)
        recorded = False
        for node in self.nodes:
            for core in node.cores:
                if core.record_intervals:
                    recorded = True
                for (s, e, _n) in core.busy_intervals:
                    # overlap of [s, e) with each bin
                    lo = np.clip(edges[:-1], s, e)
                    hi = np.clip(edges[1:], s, e)
                    busy_per_bin += np.maximum(hi - lo, 0.0)
        if not recorded:
            raise RuntimeError(
                "power_series needs cores built with record_intervals=True"
            )
        base = len(self.nodes) * self.model.base_w
        return base + self.model.dynamic_per_core_w * busy_per_bin / dt

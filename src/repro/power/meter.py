"""Power metering over a simulated cluster.

:class:`PowerMeter` plays the role of the testbed's per-node watt meters.
Energy is computed *exactly* from each core's integrated busy time (the
power model is affine in busy cores, so no sampling error is introduced);
a per-second power series — what the real meters reported — can be
reconstructed from the cores' busy-interval logs for plots and timelines.

Typical usage::

    meter = PowerMeter(cluster, PowerModel(), nodes=cluster.nodes)
    mark = meter.reading()           # before the run
    ...                              # simulate
    done = meter.reading()
    window = done - mark             # EnergyReading supports subtraction
    window.average_power_w
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.power.model import PowerModel
from repro.util import check_positive

__all__ = [
    "EnergyReading",
    "PowerMeter",
    "decompose_energy",
    "exact_dynamic_split",
]


@dataclass(frozen=True)
class EnergyReading:
    """Cumulative meter state at one instant (supports windowing by ``-``).

    Attributes
    ----------
    time:
        Simulated time of the reading.
    energy_j:
        Cumulative energy since t=0 for the metered nodes.
    busy_core_seconds:
        Cumulative Σ busy time over metered cores.
    """

    time: float
    energy_j: float
    busy_core_seconds: float

    def __sub__(self, earlier: "EnergyReading") -> "EnergyReading":
        if earlier.time > self.time:
            raise ValueError("subtracting a newer reading from an older one")
        return EnergyReading(
            time=self.time - earlier.time,
            energy_j=self.energy_j - earlier.energy_j,
            busy_core_seconds=self.busy_core_seconds - earlier.busy_core_seconds,
        )

    @property
    def average_power_w(self) -> float:
        """Mean power over the window (0 for an empty window)."""
        if self.time <= 0:
            return 0.0
        return self.energy_j / self.time


class PowerMeter:
    """Meters a set of nodes of a cluster under a :class:`PowerModel`.

    Parameters
    ----------
    cluster:
        The simulated cluster.
    model:
        Power model; its ``cores_per_node`` must match the cluster's.
    nodes:
        Metered subset (default: all nodes). Figure 2's 4-core runs only
        power the nodes the job actually uses — pass that subset to match
        the paper's per-run energy accounting.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: Optional[PowerModel] = None,
        nodes: Optional[Sequence[Node]] = None,
    ) -> None:
        self.cluster = cluster
        self.model = model or PowerModel(cores_per_node=cluster.cores_per_node)
        if self.model.cores_per_node != cluster.cores_per_node:
            raise ValueError(
                f"model.cores_per_node ({self.model.cores_per_node}) != "
                f"cluster.cores_per_node ({cluster.cores_per_node})"
            )
        self.nodes: List[Node] = list(nodes) if nodes is not None else list(cluster.nodes)
        if not self.nodes:
            raise ValueError("PowerMeter needs at least one node")

    # ------------------------------------------------------------------
    # exact integration
    # ------------------------------------------------------------------
    def reading(self) -> EnergyReading:
        """Exact cumulative reading at the current simulated time."""
        now = self.cluster.engine.now
        busy = 0.0
        for node in self.nodes:
            busy += node.total_busy_time()
        energy = self.model.energy(now, busy, len(self.nodes)) if now > 0 else 0.0
        return EnergyReading(time=now, energy_j=energy, busy_core_seconds=busy)

    # ------------------------------------------------------------------
    # reconstructed time series (requires record_intervals=True)
    # ------------------------------------------------------------------
    def power_series(
        self, t_end: float, dt: float = 1.0, t_start: float = 0.0
    ) -> "np.ndarray":
        """Per-sample total power (W) over [t_start, t_end), step ``dt``.

        Each sample is the *time-averaged* power over its interval, i.e.
        what a watt meter integrating over ``dt`` (the paper's meters
        reported per-second values) would display. Requires the cluster to
        have been built with ``record_intervals=True``.
        """
        check_positive("dt", dt)
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        edges = np.arange(t_start, t_end + dt / 2, dt)
        n_bins = len(edges) - 1
        busy_per_bin = np.zeros(n_bins)
        recorded = False
        for node in self.nodes:
            for core in node.cores:
                if core.record_intervals:
                    recorded = True
                for (s, e, _n) in core.busy_intervals:
                    # overlap of [s, e) with each bin
                    lo = np.clip(edges[:-1], s, e)
                    hi = np.clip(edges[1:], s, e)
                    busy_per_bin += np.maximum(hi - lo, 0.0)
        if not recorded:
            raise RuntimeError(
                "power_series needs cores built with record_intervals=True"
            )
        base = len(self.nodes) * self.model.base_w
        return base + self.model.dynamic_per_core_w * busy_per_bin / dt


# ---------------------------------------------------------------------------
# energy decomposition (the ledger's joule attribution)
# ---------------------------------------------------------------------------
def exact_dynamic_split(
    dynamic_j: float, busy_by_bucket: Mapping[str, Any]
) -> Dict[str, Fraction]:
    """Split dynamic joules across ledger buckets, exactly.

    ``busy_by_bucket`` maps bucket name -> busy core-seconds (float or
    Fraction, e.g. :meth:`repro.obs.ledger.TimeLedger.busy_exact`). The
    shares are ``dynamic_j * busy_b / total_busy`` in exact rational
    arithmetic, so they sum to ``Fraction(dynamic_j)`` with zero residue.
    All-zero busy time yields all-zero shares.
    """
    busy = {b: Fraction(v) for b, v in busy_by_bucket.items()}
    total = sum(busy.values(), Fraction(0))
    if total == 0:
        return {b: Fraction(0) for b in busy}
    dyn = Fraction(dynamic_j)
    return {b: dyn * v / total for b, v in busy.items()}


def decompose_energy(
    model: PowerModel,
    *,
    duration_s: float,
    busy_core_seconds: float,
    nodes: int,
    busy_by_bucket: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Decompose an energy window into base/dynamic (and ledger buckets).

    The base and dynamic terms use :meth:`PowerModel.base_energy` /
    :meth:`PowerModel.dynamic_energy`, which mirror :meth:`PowerModel.
    energy` operand for operand — so ``base_j + dynamic_j`` reconciles
    **bit-exactly** with the ``energy_j`` a :class:`PowerMeter` reading
    reports for the same window (including the empty-window 0.0 special
    case).

    With ``busy_by_bucket`` (the ledger's exact busy split), the dynamic
    term is further attributed per bucket via :func:`exact_dynamic_split`;
    the returned per-bucket floats are rounded from exact shares that sum
    to the dynamic term with zero residue.
    """
    if duration_s > 0:
        base_j = model.base_energy(duration_s, nodes)
        dynamic_j = model.dynamic_energy(busy_core_seconds)
    else:
        base_j = 0.0
        dynamic_j = 0.0
    out: Dict[str, Any] = {
        "energy_j": base_j + dynamic_j,
        "base_j": base_j,
        "dynamic_j": dynamic_j,
        "dynamic_by_bucket": None,
    }
    if busy_by_bucket is not None:
        shares = exact_dynamic_split(dynamic_j, busy_by_bucket)
        out["dynamic_by_bucket"] = {b: float(v) for b, v in shares.items()}
    return out

"""Node power model.

Affine in busy-core count::

    P_node(k) = base_w + k * (peak_w - base_w) / cores_per_node

with ``k`` the number of cores currently executing at least one process.
Defaults are the paper's testbed numbers: base 40 W, peak 170 W, 4 cores
per node, so each busy core adds 32.5 W.

The affine form is the standard first-order CPU power model (dynamic power
proportional to utilisation) and is exactly the structure the paper's
argument needs: a large utilisation-independent base term plus a dynamic
term that load balancing redistributes but does not grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import check_positive, check_non_negative

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Affine busy-core power model (defaults: the paper's testbed).

    Attributes
    ----------
    base_w:
        Node power with all cores idle (paper: 40 W).
    peak_w:
        Node power with all cores busy (paper: 170 W).
    cores_per_node:
        Cores per node (paper: 4).
    """

    base_w: float = 40.0
    peak_w: float = 170.0
    cores_per_node: int = 4

    def __post_init__(self) -> None:
        check_non_negative("base_w", self.base_w)
        check_positive("peak_w", self.peak_w)
        check_positive("cores_per_node", self.cores_per_node)
        if self.peak_w < self.base_w:
            raise ValueError(
                f"peak_w ({self.peak_w}) must be >= base_w ({self.base_w})"
            )

    @property
    def dynamic_per_core_w(self) -> float:
        """Additional watts drawn by one busy core (paper: 32.5 W)."""
        return (self.peak_w - self.base_w) / self.cores_per_node

    def node_power(self, busy_cores: int) -> float:
        """Instantaneous node power with ``busy_cores`` cores busy."""
        if not 0 <= busy_cores <= self.cores_per_node:
            raise ValueError(
                f"busy_cores must be in [0, {self.cores_per_node}], got {busy_cores}"
            )
        return self.base_w + busy_cores * self.dynamic_per_core_w

    def energy(self, duration_s: float, busy_core_seconds: float, nodes: int) -> float:
        """Exact energy (J) over a window, from integrated counters.

        Because power is affine in busy cores, the integral needs only the
        window length and the total busy core-seconds::

            E = nodes * base_w * T + dynamic_per_core_w * sum_busy

        Parameters
        ----------
        duration_s:
            Window length ``T``.
        busy_core_seconds:
            Σ over cores of busy wall-time within the window.
        nodes:
            Number of powered nodes.
        """
        check_non_negative("duration_s", duration_s)
        check_non_negative("busy_core_seconds", busy_core_seconds)
        check_positive("nodes", nodes)
        if busy_core_seconds > duration_s * nodes * self.cores_per_node + 1e-9:
            raise ValueError(
                "busy_core_seconds exceeds window capacity: "
                f"{busy_core_seconds} > {duration_s * nodes * self.cores_per_node}"
            )
        return nodes * self.base_w * duration_s + self.dynamic_per_core_w * busy_core_seconds

    def base_energy(self, duration_s: float, nodes: int) -> float:
        """The utilisation-independent term of :meth:`energy`.

        The expression mirrors :meth:`energy`'s first addend operand for
        operand, so ``base_energy(T, n) + dynamic_energy(b)`` equals
        ``energy(T, b, n)`` bit-exactly.
        """
        check_non_negative("duration_s", duration_s)
        check_positive("nodes", nodes)
        return nodes * self.base_w * duration_s

    def dynamic_energy(self, busy_core_seconds: float) -> float:
        """The busy-core term of :meth:`energy` (same bit-exact mirror)."""
        check_non_negative("busy_core_seconds", busy_core_seconds)
        return self.dynamic_per_core_w * busy_core_seconds

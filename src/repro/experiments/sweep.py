"""Parallel scenario-sweep engine.

Every figure and ablation in this reproduction is, at heart, a sweep:
run :func:`~repro.experiments.runner.run_scenario` over a grid of
scenario parameters and tabulate summaries. This module makes that a
first-class, parallel, cached operation:

* :class:`SweepSpec` — a **declarative** sweep: a ``base`` parameter
  dict, cartesian ``axes`` (field -> list of values), and/or explicit
  ``points``. Specs are plain JSON-able data (:meth:`SweepSpec.from_file`
  loads one from disk), so sweeps can be versioned and shared.
* :func:`run_point` — execute one normalised parameter dict on a fresh
  simulated cluster and reduce it to a :class:`ScenarioSummary` (plain
  scalars — picklable, JSON-able, comparable bit-for-bit).
* :func:`run_sweep` — fan points out over a process pool
  (``workers > 1``) or run them inline (``workers = 1``); either way the
  per-point summaries are **identical**, because each point is a pure
  function of its parameters (fresh engine, fresh cluster, fresh
  balancer, seed threaded explicitly). An optional
  :class:`~repro.experiments.cache.ResultCache` makes a second identical
  run a pure cache hit.

Scenario parameter vocabulary (all JSON scalars; see
:data:`PARAM_DEFAULTS` for defaults):

==================  =====================================================
``app``             ``jacobi2d`` / ``wave2d`` / ``mol3d`` / ``bg`` (the
                    paper's 2-core background Wave2D, run as the app)
``scale``           problem-size multiplier (1.0 = paper scale)
``cores``           application cores
``iterations``      application iterations
``seed``            run-to-run variation seed; the string ``"auto"``
                    derives a per-point seed from the point's content
``balancer``        ``none`` / ``refine-vm`` / ``refine`` / ``greedy`` /
                    ``greedy-aware``
``epsilon``         Eq. (3) slack for the refinement balancers
``lb_period``       LB cadence in iterations
``decision_overhead_s``  per-step strategy cost charged by the policy
``bg``              add the paper's 2-core interfering Wave2D on cores
                    0-1, sized to outlast the run
``bg_weight``       OS share weight of the background job (null = the
                    paper's per-app default)
``bg_overlap``      background duration as a multiple of the estimated
                    app duration (null = ``1.2 * (1 + weight)``)
``cores_per_node``  node width (paper testbed: 4)
==================  =====================================================
"""

from __future__ import annotations

import itertools
import math
import os
import re
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - annotation only (no runtime import)
    from repro.obs.registry import RunRegistry

import json

from repro.core import GreedyLB, RefineLB, RefineVMInterferenceLB
from repro.core.balancer import LoadBalancer
from repro.core.policies import LBPolicy
from repro.experiments.cache import (
    ResultCache,
    canonical_json,
    code_fingerprint,
    point_key,
)
from repro.experiments.fabric.shards import default_shard_count, plan_shards
from repro.experiments.progress import EventLog, SweepMetrics
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenario import BackgroundSpec, Scenario
from repro.experiments.tables import format_table
from repro.perf.profiler import profiled
from repro.projections.export import write_chrome_trace
from repro.runtime.tracing import TraceLog
from repro.telemetry import Telemetry, audit_summary, write_audit_jsonl
from repro.util import derive_seed, get_logger

__all__ = [
    "PARAM_DEFAULTS",
    "normalize_params",
    "build_scenario",
    "background_iterations",
    "ScenarioSummary",
    "summarize_result",
    "run_point",
    "run_point_audited",
    "run_point_ledgered",
    "run_point_lineaged",
    "run_shard",
    "SweepPoint",
    "SweepSpec",
    "PointResult",
    "SweepResult",
    "run_sweep",
]

_log = get_logger(__name__)

#: Default value of every scenario parameter (the normalised form always
#: carries every key, so cache keys never shift when defaults are spelled
#: out explicitly).
PARAM_DEFAULTS: Dict[str, Any] = {
    "app": "jacobi2d",
    "scale": 1.0,
    "cores": 8,
    "iterations": 50,
    "seed": 0,
    "balancer": "none",
    "epsilon": 0.05,
    "lb_period": 5,
    "decision_overhead_s": 2e-4,
    "bg": False,
    "bg_weight": None,
    "bg_overlap": None,
    "cores_per_node": 4,
}

_APP_NAMES = ("jacobi2d", "wave2d", "mol3d", "bg")
_BALANCER_NAMES = ("none", "refine-vm", "refine", "greedy", "greedy-aware")


def normalize_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonical, fully defaulted, validated form of a point's params.

    The result is what gets content-hashed for the cache key and what
    :func:`build_scenario` consumes, so two spellings of the same
    scenario (defaults implicit vs explicit) always collide on the same
    key. ``seed="auto"`` is resolved here to a content-derived seed.
    """
    unknown = set(params) - set(PARAM_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown scenario parameter(s) {sorted(unknown)}; "
            f"known: {sorted(PARAM_DEFAULTS)}"
        )
    p: Dict[str, Any] = dict(PARAM_DEFAULTS)
    p.update(params)

    if p["balancer"] is None:
        p["balancer"] = "none"
    if p["app"] not in _APP_NAMES:
        raise ValueError(f"unknown app {p['app']!r}; known: {_APP_NAMES}")
    if p["balancer"] not in _BALANCER_NAMES:
        raise ValueError(
            f"unknown balancer {p['balancer']!r}; known: {_BALANCER_NAMES}"
        )
    p["scale"] = float(p["scale"])
    p["cores"] = int(p["cores"])
    p["iterations"] = int(p["iterations"])
    p["epsilon"] = float(p["epsilon"])
    p["lb_period"] = int(p["lb_period"])
    p["decision_overhead_s"] = float(p["decision_overhead_s"])
    p["bg"] = bool(p["bg"])
    p["bg_weight"] = None if p["bg_weight"] is None else float(p["bg_weight"])
    p["bg_overlap"] = None if p["bg_overlap"] is None else float(p["bg_overlap"])
    p["cores_per_node"] = int(p["cores_per_node"])
    if p["seed"] == "auto":
        content = dict(p)
        del content["seed"]
        p["seed"] = derive_seed(0, canonical_json(content))
    else:
        p["seed"] = int(p["seed"])
    return dict(sorted(p.items()))


def _make_balancer(name: str, epsilon: float) -> Optional[LoadBalancer]:
    if name == "none":
        return None
    if name == "refine-vm":
        return RefineVMInterferenceLB(epsilon)
    if name == "refine":
        return RefineLB(epsilon)
    if name == "greedy":
        return GreedyLB()
    if name == "greedy-aware":
        return GreedyLB(aware=True)
    raise ValueError(f"unknown balancer {name!r}")  # pragma: no cover


def _app_model(name: str, scale: float, seed: int):
    from repro.experiments.figures import _bg_model, paper_app

    if name == "bg":
        return _bg_model(scale)
    return paper_app(name, scale, seed=seed)


def _bg_weight_default(app_name: str) -> float:
    from repro.experiments.figures import _BG_WEIGHT

    return _BG_WEIGHT.get(app_name, 1.0)


#: canonical params JSON -> background iteration count (pure function)
_BG_ITERATIONS_MEMO: Dict[str, int] = {}


def background_iterations(params: Mapping[str, Any]) -> int:
    """Iterations of the 2-core background job for a ``bg=True`` point.

    Sized exactly as :func:`~repro.experiments.figures.run_case` sizes
    it: the job alone must last ``overlap`` x the application's estimated
    interference-free duration (default overlap ``1.2 * (1 + weight)``),
    so the interference persists for the whole stretched run.
    Deterministic in the point's parameters, which keeps sweep points
    pure and lets the Fig. 2 preset compute the matching ``bg``-alone
    run up front. That determinism also makes the result memoisable:
    the estimate builds throwaway model instances, which would otherwise
    dominate repeated ``build_scenario`` calls on the same point.
    """
    from repro.experiments.figures import _bg_model, _estimate_iteration_time

    p = normalize_params(dict(params))
    memo_key = canonical_json(p)
    hit = _BG_ITERATIONS_MEMO.get(memo_key)
    if hit is not None:
        return hit
    weight = p["bg_weight"]
    if weight is None:
        weight = _bg_weight_default(p["app"])
    overlap = p["bg_overlap"]
    if overlap is None:
        overlap = 1.2 * (1.0 + weight)
    model = _app_model(p["app"], p["scale"], p["seed"])
    app_est = _estimate_iteration_time(model, p["cores"]) * p["iterations"]
    bg_iter_est = _estimate_iteration_time(_bg_model(p["scale"]), 2)
    n = max(int(math.ceil(overlap * app_est / bg_iter_est)), 1)
    if len(_BG_ITERATIONS_MEMO) >= 4096:  # unbounded-growth backstop
        _BG_ITERATIONS_MEMO.clear()
    _BG_ITERATIONS_MEMO[memo_key] = n
    return n


def build_scenario(params: Mapping[str, Any]) -> Scenario:
    """Materialise a normalised parameter dict as a fresh :class:`Scenario`.

    Every call builds new model/balancer/policy objects, so concurrent
    and back-to-back runs can never share mutable state.
    """
    p = normalize_params(dict(params))
    model = _app_model(p["app"], p["scale"], p["seed"])
    balancer = _make_balancer(p["balancer"], p["epsilon"])
    policy = LBPolicy(
        period_iterations=p["lb_period"],
        decision_overhead_s=p["decision_overhead_s"],
    )
    bg = None
    if p["bg"]:
        from repro.experiments.figures import _bg_model

        weight = p["bg_weight"]
        if weight is None:
            weight = _bg_weight_default(p["app"])
        bg = BackgroundSpec(
            model=_bg_model(p["scale"]),
            core_ids=(0, 1),
            iterations=background_iterations(p),
            weight=weight,
        )
    return Scenario(
        app=model,
        num_cores=p["cores"],
        iterations=p["iterations"],
        balancer=balancer,
        policy=policy,
        bg=bg,
        cores_per_node=p["cores_per_node"],
    )


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSummary:
    """The sweep-facing reduction of one :class:`ExperimentResult`.

    Plain scalars only: picklable across worker processes, JSON-able for
    the on-disk cache, and comparable with ``==`` — which is what lets
    the engine guarantee bit-identical results between serial, parallel,
    and cached execution of the same point.
    """

    app_time: float
    bg_time: Optional[float]
    energy_j: float
    avg_power_w: float
    busy_core_seconds: float
    iterations: int
    lb_steps: int
    total_migrations: int
    total_migration_cost_s: float
    total_task_cpu_s: float
    final_mapping_digest: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app_time": self.app_time,
            "bg_time": self.bg_time,
            "energy_j": self.energy_j,
            "avg_power_w": self.avg_power_w,
            "busy_core_seconds": self.busy_core_seconds,
            "iterations": self.iterations,
            "lb_steps": self.lb_steps,
            "total_migrations": self.total_migrations,
            "total_migration_cost_s": self.total_migration_cost_s,
            "total_task_cpu_s": self.total_task_cpu_s,
            "final_mapping_digest": self.final_mapping_digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSummary":
        return cls(
            app_time=float(data["app_time"]),
            bg_time=None if data["bg_time"] is None else float(data["bg_time"]),
            energy_j=float(data["energy_j"]),
            avg_power_w=float(data["avg_power_w"]),
            busy_core_seconds=float(data["busy_core_seconds"]),
            iterations=int(data["iterations"]),
            lb_steps=int(data["lb_steps"]),
            total_migrations=int(data["total_migrations"]),
            total_migration_cost_s=float(data["total_migration_cost_s"]),
            total_task_cpu_s=float(data["total_task_cpu_s"]),
            final_mapping_digest=str(data["final_mapping_digest"]),
        )


def summarize_result(result: ExperimentResult) -> ScenarioSummary:
    """Reduce a full :class:`ExperimentResult` to its scalar summary."""
    import hashlib

    mapping_blob = canonical_json(
        sorted(
            ([name, index], core)
            for (name, index), core in result.final_mapping.items()
        )
    )
    return ScenarioSummary(
        app_time=float(result.app_time),
        bg_time=None if result.bg_time is None else float(result.bg_time),
        energy_j=float(result.energy.energy_j),
        avg_power_w=float(result.energy.average_power_w),
        busy_core_seconds=float(result.energy.busy_core_seconds),
        iterations=int(result.app.iterations),
        lb_steps=int(result.app.lb_steps),
        total_migrations=int(result.app.total_migrations),
        total_migration_cost_s=float(result.app.total_migration_cost_s),
        total_task_cpu_s=float(result.app.total_task_cpu_s),
        final_mapping_digest=hashlib.sha256(mapping_blob.encode()).hexdigest()[:16],
    )


def run_point(params: Mapping[str, Any], *, backend: str = "auto") -> ScenarioSummary:
    """Execute one parameter dict hermetically and summarise it.

    ``backend`` selects the simulation backend (see
    :func:`repro.experiments.runner.run_scenario`); summaries are
    bit-identical across backends, so it never enters the cache key.
    """
    return summarize_result(run_scenario(build_scenario(params), backend=backend))


def run_point_audited(
    params: Mapping[str, Any], *, backend: str = "auto"
) -> Tuple[ScenarioSummary, List[Dict[str, Any]], TraceLog, Dict[str, Any]]:
    """Execute one point with telemetry and the phase profiler attached.

    Returns ``(summary, audit_records, trace, profile)``. The summary is
    bit-identical to :func:`run_point`'s — telemetry, tracing and
    profiling are strictly observational — so audited and plain runs
    share cache entries. The audit records carry only simulated
    quantities and are therefore deterministic across serial/parallel/
    warm-cache execution; the trace feeds the Chrome/Perfetto export.
    ``profile`` is the exported host wall-clock phase breakdown
    (:meth:`repro.perf.PhaseProfiler.export`) — nondeterministic by
    nature, so it is written next to traces but never cached.

    Audited points trace every task, which the fast backend cannot do:
    ``backend="auto"`` therefore resolves to the event engine here, and
    ``backend="fast"`` raises
    :class:`~repro.sim.fastpath.FastpathUnsupported`.
    """
    telemetry = Telemetry()
    scenario = replace(build_scenario(params), tracing=True)
    with profiled(record_intervals=True) as prof:
        result = run_scenario(scenario, telemetry=telemetry, backend=backend)
    return (
        summarize_result(result),
        telemetry.audit.records,
        result.trace,
        prof.export(),
    )


def _execute_point_audited(
    payload: Tuple[int, Dict[str, Any], str],
) -> Tuple[int, Dict[str, Any], List[Dict[str, Any]], TraceLog, Dict[str, Any], float, str]:
    """Worker entry point for audited runs (picklable, top-level)."""
    index, params, backend = payload
    t0 = time.perf_counter()
    summary, records, trace, profile = run_point_audited(params, backend=backend)
    wall = time.perf_counter() - t0
    return index, summary.to_dict(), records, trace, profile, wall, f"pid:{os.getpid()}"


def run_point_ledgered(
    params: Mapping[str, Any], *, backend: str = "auto"
) -> Tuple[ScenarioSummary, Dict[str, Any]]:
    """Execute one point with a time-attribution ledger attached.

    Returns ``(summary, ledger_summary)`` where ``ledger_summary`` is the
    JSON-safe :meth:`repro.obs.ledger.TimeLedger.summary` dict. The
    scenario summary is bit-identical to :func:`run_point`'s (the ledger
    is strictly observational), and the ledger itself is bit-identical
    across backends — the parity suite enforces both.
    """
    from repro.obs.ledger import TimeLedger

    scenario = build_scenario(params)
    ledger = TimeLedger(job="app", core_ids=scenario.app_core_ids)
    result = run_scenario(scenario, backend=backend, ledger=ledger)
    return summarize_result(result), ledger.summary()


def _execute_point_ledgered(
    payload: Tuple[int, Dict[str, Any], str],
) -> Tuple[int, Dict[str, Any], Dict[str, Any], float, str]:
    """Worker entry point for ledgered runs (picklable, top-level)."""
    index, params, backend = payload
    t0 = time.perf_counter()
    summary, ledger = run_point_ledgered(params, backend=backend)
    wall = time.perf_counter() - t0
    return index, summary.to_dict(), ledger, wall, f"pid:{os.getpid()}"


def run_point_lineaged(
    params: Mapping[str, Any], *, backend: str = "auto"
) -> Tuple[ScenarioSummary, Dict[str, Any]]:
    """Execute one point with the chare-lineage observatory attached.

    Returns ``(summary, lineage_payload)`` where ``lineage_payload`` is
    the JSON-safe :meth:`repro.obs.lineage.LineageRecorder.payload`
    dict, with each LB step joined against the run's audit trail (a
    :class:`~repro.telemetry.Telemetry` rides along for the join — both
    are strictly observational, so the scenario summary is bit-identical
    to :func:`run_point`'s and lineaged runs share cache entries with
    plain ones). The payload itself is bit-identical across backends —
    the parity suite enforces both properties.
    """
    from repro.obs.lineage import LineageRecorder

    telemetry = Telemetry()
    scenario = build_scenario(params)
    lineage = LineageRecorder(job="app", core_ids=scenario.app_core_ids)
    result = run_scenario(
        scenario, backend=backend, telemetry=telemetry, lineage=lineage
    )
    return summarize_result(result), lineage.payload(audit=telemetry.audit.records)


def _execute_point_lineaged(
    payload: Tuple[int, Dict[str, Any], str],
) -> Tuple[int, Dict[str, Any], Dict[str, Any], float, str]:
    """Worker entry point for lineaged runs (picklable, top-level)."""
    index, params, backend = payload
    t0 = time.perf_counter()
    summary, lineage = run_point_lineaged(params, backend=backend)
    wall = time.perf_counter() - t0
    return index, summary.to_dict(), lineage, wall, f"pid:{os.getpid()}"


def run_shard(
    shard_points: Sequence[Tuple[int, Dict[str, Any]]],
    *,
    backend: str = "auto",
    worker: Optional[str] = None,
):
    """Execute an ordered shard of ``(index, params)`` pairs lazily.

    This generator is the single execution core every sweep driver runs
    on: the in-process serial path, the local process pool
    (:func:`_execute_shard`) and the distributed fabric worker
    (:mod:`repro.experiments.fabric.worker`) all feed it the same pairs
    and consume the same ``(index, summary_dict, wall_s, worker_tag)``
    tuples — which is why their summaries are bit-identical by
    construction. Each point is simulated when its tuple is pulled, so
    callers can interleave progress events, cache writes and fault
    boundaries between points. ``worker`` overrides the default
    ``pid:<n>`` provenance tag.

    ``backend="batch"`` trades that laziness for throughput: the whole
    shard's scenarios are built up front, grouped by shape signature
    (:func:`repro.sim.batch.batch_groups`) and executed as single batch
    calls sharing one process and one work table per group — the first
    pull therefore simulates the entire shard. Tuples still come back
    one per point, in shard order, bit-identical to the lazy path.
    """
    tag = worker if worker is not None else f"pid:{os.getpid()}"
    if backend == "batch":
        from repro.sim.batch import run_scenarios_batch

        scenarios = [build_scenario(params) for _, params in shard_points]
        walls = [0.0] * len(scenarios)
        results = run_scenarios_batch(scenarios, walls=walls)
        for (index, _), result, wall in zip(shard_points, results, walls):
            yield index, summarize_result(result).to_dict(), wall, tag
        return
    for index, params in shard_points:
        t0 = time.perf_counter()
        summary = run_point(params, backend=backend)
        yield index, summary.to_dict(), time.perf_counter() - t0, tag


def _execute_shard(
    payload: Tuple[List[Tuple[int, Dict[str, Any]]], str],
) -> List[Tuple[int, Dict[str, Any], float, str]]:
    """Pool entry point: drain one shard through :func:`run_shard`."""
    shard_points, backend = payload
    return list(run_shard(shard_points, backend=backend))


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One expanded scenario of a sweep: label + canonical parameters."""

    index: int
    label: str
    params: Dict[str, Any]


@dataclass(frozen=True)
class SweepSpec:
    """Declarative sweep description.

    Attributes
    ----------
    name:
        Sweep identifier (used in reports and artefact names).
    base:
        Parameters shared by every point.
    axes:
        ``field -> list of values``; the cartesian product over all axes
        is swept (ordered as given, last axis fastest).
    points:
        Explicit extra points (each a partial param dict merged over
        ``base``); appended after the grid. A point dict may carry a
        ``label`` key, which names it in reports but does not affect the
        cache key.
    """

    name: str
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, Sequence[Any]] = field(default_factory=dict)
    points: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        for axis, values in self.axes.items():
            if axis not in PARAM_DEFAULTS and axis != "label":
                raise ValueError(f"unknown sweep axis {axis!r}")
            if not list(values):
                raise ValueError(f"axis {axis!r} has no values")

    # ------------------------------------------------------------------
    def expand(self) -> List[SweepPoint]:
        """The ordered scenario list this spec describes."""
        raw: List[Dict[str, Any]] = []
        if self.axes:
            keys = list(self.axes)
            for combo in itertools.product(*(self.axes[k] for k in keys)):
                raw.append(dict(zip(keys, combo)))
        for extra in self.points:
            raw.append(dict(extra))
        if not raw:
            raw.append({})

        expanded: List[SweepPoint] = []
        seen_labels: Dict[str, int] = {}
        for i, overrides in enumerate(raw):
            label = overrides.pop("label", None)
            merged = {**self.base, **overrides}
            merged.pop("label", None)
            params = normalize_params(merged)
            if label is None:
                varying = [k for k in overrides if k in PARAM_DEFAULTS]
                label = (
                    ",".join(f"{k}={params[k]}" for k in varying)
                    or f"point{i}"
                )
            if label in seen_labels:
                seen_labels[label] += 1
                label = f"{label}#{seen_labels[label]}"
            else:
                seen_labels[label] = 0
            expanded.append(SweepPoint(index=i, label=label, params=params))
        return expanded

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "points": [dict(p) for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        if "name" not in data:
            raise ValueError("sweep spec needs a 'name'")
        unknown = set(data) - {"name", "base", "axes", "points"}
        if unknown:
            raise ValueError(f"unknown sweep spec key(s) {sorted(unknown)}")
        return cls(
            name=str(data["name"]),
            base=dict(data.get("base", {})),
            axes={k: list(v) for k, v in data.get("axes", {}).items()},
            points=tuple(dict(p) for p in data.get("points", [])),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a JSON file."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point.

    ``wall_s`` is the simulation wall time (0.0 for cache hits);
    ``worker`` identifies where it ran (``main``, ``pid:<n>``, or
    ``cache``). ``audit`` is the point's deterministic audit summary
    (see :func:`repro.telemetry.audit_summary`) when the sweep ran with
    ``audit_dir``, else None. ``ledger`` is the point's time-attribution
    ledger summary (see :meth:`repro.obs.ledger.TimeLedger.summary`)
    when the sweep ran with ``ledger=True``, else None. ``lineage`` is
    the point's chare-lineage payload (see
    :meth:`repro.obs.lineage.LineageRecorder.payload`) when the sweep
    ran with ``lineage=True``, else None.
    """

    index: int
    label: str
    params: Dict[str, Any]
    key: str
    summary: ScenarioSummary
    cached: bool
    wall_s: float
    worker: str
    audit: Optional[Dict[str, Any]] = None
    ledger: Optional[Dict[str, Any]] = None
    lineage: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep produced: ordered results + aggregate metrics."""

    spec_name: str
    results: Tuple[PointResult, ...]
    metrics: SweepMetrics

    def summaries(self) -> Dict[str, ScenarioSummary]:
        """``label -> summary`` for every point."""
        return {r.label: r.summary for r in self.results}

    def __getitem__(self, label: str) -> ScenarioSummary:
        for r in self.results:
            if r.label == label:
                return r.summary
        raise KeyError(f"no sweep point labelled {label!r}")

    def text(self) -> str:
        """Human-readable table of per-point summaries + sweep metrics."""
        rows = [
            (
                r.label,
                r.summary.app_time,
                "-" if r.summary.bg_time is None else f"{r.summary.bg_time:.3f}",
                r.summary.energy_j,
                r.summary.avg_power_w,
                r.summary.total_migrations,
                "hit" if r.cached else f"{r.wall_s:.2f}s",
            )
            for r in self.results
        ]
        table = format_table(
            ["scenario", "app time (s)", "bg time (s)", "energy (J)",
             "power (W)", "migrations", "run"],
            rows,
            title=f"sweep {self.spec_name} — {self.metrics.points} scenarios",
            float_fmt="{:.3f}",
        )
        m = self.metrics
        footer = (
            f"workers={m.workers} executed={m.executed} "
            f"cache_hits={m.cache_hits} ({100.0 * m.hit_rate:.0f}%) "
            f"elapsed={m.elapsed_s:.2f}s "
            f"utilization={100.0 * m.worker_utilization:.0f}%"
        )
        return table + "\n" + footer


def _point_slug(label: str) -> str:
    """Filesystem-safe stem for a point's audit artefacts."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-")
    return slug or "point"


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    log: Optional[EventLog] = None,
    audit_dir: Optional[Union[str, Path]] = None,
    registry: Optional["RunRegistry"] = None,
    backend: str = "auto",
    driver: str = "local",
    fabric_dir: Optional[Union[str, Path]] = None,
    fabric_options: Optional[Dict[str, Any]] = None,
    ledger: bool = False,
    lineage: bool = False,
) -> SweepResult:
    """Execute every point of ``spec``; returns ordered results + metrics.

    Parameters
    ----------
    workers:
        Process-pool width. 1 runs in-process (no pool); either way the
        per-point summaries are identical for the same spec.
    cache:
        Optional on-disk result cache; hits skip simulation entirely and
        misses are stored after running.
    log:
        Structured event sink (see :mod:`repro.experiments.progress`).
    audit_dir:
        When given, every point runs with telemetry attached: its LB
        audit trail is written to ``<audit_dir>/<index>-<label>.jsonl``
        (plus a Chrome/Perfetto trace with counter tracks for executed
        points) and its audit summary is carried on the
        :class:`PointResult` and cached alongside the summary. Cache hits
        lacking an audit payload are re-executed; hits carrying one
        rewrite byte-identical JSONL from the cached records (no trace —
        traces are only produced by actual execution). Audit records
        contain only simulated quantities, so their bytes are identical
        across serial, parallel, and warm-cache runs.
    registry:
        Optional :class:`repro.obs.registry.RunRegistry`; when given the
        completed sweep is ingested as one run record (after
        ``sweep_done``) and a ``run_registered`` event carrying the new
        ``run_id`` is emitted. Ingest is strictly post-hoc — the
        per-point execution path never sees the registry.
    backend:
        Simulation backend for executed points (``"auto"``, ``"events"``,
        ``"fast"`` or ``"batch"``; see
        :func:`repro.experiments.runner.run_scenario`). ``"batch"``
        executes shape-homogeneous point groups as single
        structure-of-arrays batch calls (:mod:`repro.sim.batch`) instead
        of one simulation per point; heterogeneous points degrade to the
        per-point fast path. Summaries are bit-identical across
        backends, so the cache key — and therefore hits — are
        backend-independent. Audited points (``audit_dir``) require
        per-task tracing and always run on the event engine under
        ``"auto"``.
    driver:
        ``"local"`` (default) executes here — in-process or via a
        process pool; ``"fabric"`` delegates to the distributed
        coordinator (:func:`repro.experiments.fabric.run_fabric_sweep`),
        which runs the same shard core across worker processes with
        crash recovery and resume. Both drivers produce bit-identical
        summaries for the same spec.
    fabric_dir:
        Job directory for the fabric driver (defaults to
        ``.repro-fabric/<spec name>``); re-running on a directory with
        partial results resumes it.
    fabric_options:
        Extra keyword arguments forwarded verbatim to
        :func:`~repro.experiments.fabric.run_fabric_sweep`
        (``num_shards``, ``faults``, ``lease_timeout_s``, ...).
    ledger:
        When True every point runs with a time-attribution ledger
        attached (:mod:`repro.obs.ledger`): its conservation-checked
        summary rides the :class:`PointResult`, the cache entry (as a
        ``ledger`` extra — hits lacking one are re-executed) and the
        registry record. Summaries stay bit-identical to un-ledgered
        runs. Mutually exclusive with ``audit_dir`` and the fabric
        driver.
    lineage:
        When True every point runs with a chare-lineage recorder
        attached (:mod:`repro.obs.lineage`): per-chare load samples,
        migration residencies, per-iteration imbalance metrics and
        counterfactual LB bounds ride the :class:`PointResult`, the
        cache entry (as a ``lineage`` extra — hits lacking one are
        re-executed) and the registry record. Summaries stay
        bit-identical to un-lineaged runs. Mutually exclusive with
        ``audit_dir``, ``ledger`` and the fabric driver.
    """
    if driver not in ("local", "fabric"):
        raise ValueError(f"unknown driver {driver!r}")
    if ledger and audit_dir is not None:
        raise ValueError(
            "ledger=True and audit_dir are mutually exclusive: each "
            "requests its own per-point instrumentation run"
        )
    if lineage and audit_dir is not None:
        raise ValueError(
            "lineage=True and audit_dir are mutually exclusive: each "
            "requests its own per-point instrumentation run"
        )
    if lineage and ledger:
        raise ValueError(
            "lineage=True and ledger=True are mutually exclusive: each "
            "requests its own per-point instrumentation run"
        )
    if driver == "fabric":
        if ledger:
            raise ValueError(
                "ledger=True requires driver='local': ledger payloads do "
                "not travel through shard result files"
            )
        if lineage:
            raise ValueError(
                "lineage=True requires driver='local': lineage payloads "
                "do not travel through shard result files"
            )
        if audit_dir is not None:
            raise ValueError(
                "audit_dir requires driver='local': audit trails carry "
                "per-task tracing payloads that do not travel through "
                "shard result files"
            )
        from repro.experiments.fabric.coordinator import run_fabric_sweep

        return run_fabric_sweep(
            spec,
            fabric_dir=Path(fabric_dir) if fabric_dir is not None else None,
            workers=workers,
            cache=cache,
            log=log,
            registry=registry,
            backend=backend,
            **(fabric_options or {}),
        )
    if fabric_dir is not None or fabric_options is not None:
        raise ValueError("fabric_dir/fabric_options require driver='fabric'")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in ("auto", "events", "fast", "batch"):
        raise ValueError(f"unknown backend {backend!r}")
    log = log if log is not None else EventLog()
    t_start = time.perf_counter()

    audit_path: Optional[Path] = None
    if audit_dir is not None:
        audit_path = Path(audit_dir)
        audit_path.mkdir(parents=True, exist_ok=True)

    points = spec.expand()
    fingerprint = code_fingerprint()
    keys = {p.index: point_key(p.params, fingerprint=fingerprint) for p in points}

    def audit_stem(p: SweepPoint) -> str:
        return f"{p.index:03d}-{_point_slug(p.label)}"

    outcomes: Dict[int, PointResult] = {}
    misses: List[SweepPoint] = []
    for p in points:
        hit = cache.get(keys[p.index]) if cache is not None else None
        cached_audit: Optional[Dict[str, Any]] = None
        cached_ledger: Optional[Dict[str, Any]] = None
        cached_lineage: Optional[Dict[str, Any]] = None
        if hit is not None and audit_path is not None:
            extras = cache.get_extras(keys[p.index])
            cached_audit = extras.get("audit") if extras else None
            if cached_audit is None:
                # the entry predates auditing; the records must be
                # regenerated, so treat it as a miss
                hit = None
        if hit is not None and ledger:
            extras = cache.get_extras(keys[p.index])
            cached_ledger = extras.get("ledger") if extras else None
            if cached_ledger is None:
                # no ledger payload cached for this entry: re-execute
                hit = None
        if hit is not None and lineage:
            extras = cache.get_extras(keys[p.index])
            cached_lineage = extras.get("lineage") if extras else None
            if cached_lineage is None:
                # no lineage payload cached for this entry: re-execute
                hit = None
        if hit is not None:
            if cached_audit is not None:
                write_audit_jsonl(
                    cached_audit["records"],
                    audit_path / f"{audit_stem(p)}.jsonl",
                )
            outcomes[p.index] = PointResult(
                index=p.index,
                label=p.label,
                params=p.params,
                key=keys[p.index],
                summary=ScenarioSummary.from_dict(hit),
                cached=True,
                wall_s=0.0,
                worker="cache",
                audit=cached_audit["summary"] if cached_audit else None,
                ledger=cached_ledger,
                lineage=cached_lineage,
            )
        else:
            misses.append(p)

    log.emit(
        "sweep_start",
        spec=spec.name,
        points=len(points),
        workers=workers,
        cached=len(outcomes),
    )
    for p in points:
        if p.index in outcomes:
            log.emit(
                "point_done",
                label=p.label,
                key=keys[p.index],
                cached=True,
                wall_s=0.0,
                worker="cache",
            )

    def finish(
        p: SweepPoint,
        summary: ScenarioSummary,
        wall: float,
        worker: str,
        records: Optional[List[Dict[str, Any]]] = None,
        trace: Optional[TraceLog] = None,
        profile: Optional[Dict[str, Any]] = None,
        ledger_summary: Optional[Dict[str, Any]] = None,
        lineage_payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        audit_sum = audit_summary(records) if records is not None else None
        outcomes[p.index] = PointResult(
            index=p.index,
            label=p.label,
            params=p.params,
            key=keys[p.index],
            summary=summary,
            cached=False,
            wall_s=wall,
            worker=worker,
            audit=audit_sum,
            ledger=ledger_summary,
            lineage=lineage_payload,
        )
        if cache is not None:
            extras = None
            if records is not None:
                extras = {"audit": {"summary": audit_sum, "records": records}}
            if ledger_summary is not None:
                extras = {**(extras or {}), "ledger": ledger_summary}
            if lineage_payload is not None:
                extras = {**(extras or {}), "lineage": lineage_payload}
            cache.put(keys[p.index], p.params, summary.to_dict(), extras=extras)
        if audit_path is not None and records is not None:
            stem = audit_stem(p)
            n = write_audit_jsonl(records, audit_path / f"{stem}.jsonl")
            if trace is not None:
                write_chrome_trace(
                    trace,
                    str(audit_path / f"{stem}.trace.json"),
                    job_name=p.label,
                    audit=records,
                    profile=profile,
                )
            _log.debug("%s: wrote %d audit records", p.label, n)
        log.emit(
            "point_done",
            label=p.label,
            key=keys[p.index],
            cached=False,
            wall_s=round(wall, 6),
            worker=worker,
        )

    by_index = {p.index: p for p in misses}
    if misses and workers == 1:
        if audit_path is not None:
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                t0 = time.perf_counter()
                summary, records, trace, profile = run_point_audited(
                    p.params, backend=backend
                )
                finish(
                    p, summary, time.perf_counter() - t0, "main",
                    records=records, trace=trace, profile=profile,
                )
        elif ledger:
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                t0 = time.perf_counter()
                summary, ledger_sum = run_point_ledgered(
                    p.params, backend=backend
                )
                finish(
                    p, summary, time.perf_counter() - t0, "main",
                    ledger_summary=ledger_sum,
                )
        elif lineage:
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                t0 = time.perf_counter()
                summary, lineage_payload = run_point_lineaged(
                    p.params, backend=backend
                )
                finish(
                    p, summary, time.perf_counter() - t0, "main",
                    lineage_payload=lineage_payload,
                )
        else:
            # one lazy shard: each next() simulates one point, so the
            # point_start / point_done interleaving is unchanged
            results = run_shard(
                [(p.index, p.params) for p in misses],
                backend=backend,
                worker="main",
            )
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                index, summary_dict, wall, worker = next(results)
                finish(
                    by_index[index],
                    ScenarioSummary.from_dict(summary_dict),
                    wall,
                    worker,
                )
    elif misses and audit_path is not None:
        # audited pool path: per-point tasks (audit payloads are heavy
        # enough that shard-granular batching buys nothing)
        with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
            futures = {}
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                task = (p.index, p.params, backend)
                futures[pool.submit(_execute_point_audited, task)] = p.index
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    (
                        index, summary_dict, records, trace, profile,
                        wall, worker,
                    ) = fut.result()
                    finish(
                        by_index[index],
                        ScenarioSummary.from_dict(summary_dict),
                        wall,
                        worker,
                        records=records,
                        trace=trace,
                        profile=profile,
                    )
    elif misses and ledger:
        # ledgered pool path: per-point tasks, like the audited path —
        # each point carries its own ledger summary back
        with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
            futures = {}
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                task = (p.index, p.params, backend)
                futures[pool.submit(_execute_point_ledgered, task)] = p.index
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    index, summary_dict, ledger_sum, wall, worker = fut.result()
                    finish(
                        by_index[index],
                        ScenarioSummary.from_dict(summary_dict),
                        wall,
                        worker,
                        ledger_summary=ledger_sum,
                    )
    elif misses and lineage:
        # lineaged pool path: per-point tasks — each point carries its
        # own lineage payload back
        with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
            futures = {}
            for p in misses:
                log.emit("point_start", label=p.label, key=keys[p.index])
                task = (p.index, p.params, backend)
                futures[pool.submit(_execute_point_lineaged, task)] = p.index
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    index, summary_dict, lin_payload, wall, worker = fut.result()
                    finish(
                        by_index[index],
                        ScenarioSummary.from_dict(summary_dict),
                        wall,
                        worker,
                        lineage_payload=lin_payload,
                    )
    elif misses:
        # the local pool is a fabric in miniature: the same shard plan
        # the distributed coordinator publishes, executed by pool
        # processes through the same run_shard core
        shards = plan_shards(
            [p.index for p in misses],
            default_shard_count(len(misses), workers),
        )
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            futures = {}
            for shard in shards:
                for index in shard.point_indices:
                    p = by_index[index]
                    log.emit("point_start", label=p.label, key=keys[p.index])
                task = (
                    [(i, by_index[i].params) for i in shard.point_indices],
                    backend,
                )
                futures[pool.submit(_execute_shard, task)] = shard.shard_id
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    for index, summary_dict, wall, worker in fut.result():
                        finish(
                            by_index[index],
                            ScenarioSummary.from_dict(summary_dict),
                            wall,
                            worker,
                        )

    elapsed = time.perf_counter() - t_start
    executed = [r for r in outcomes.values() if not r.cached]
    executed_wall = sum(r.wall_s for r in executed)
    metrics = SweepMetrics(
        points=len(points),
        executed=len(executed),
        cache_hits=len(points) - len(executed),
        elapsed_s=elapsed,
        executed_wall_s=executed_wall,
        workers=workers,
        worker_utilization=(
            executed_wall / (workers * elapsed) if executed and elapsed > 0 else 0.0
        ),
    )
    log.emit("sweep_done", **metrics.to_dict())
    ordered = tuple(outcomes[p.index] for p in points)
    result = SweepResult(spec_name=spec.name, results=ordered, metrics=metrics)
    if registry is not None:
        extra = None
        if ledger:
            extra = {"ledger": _ledger_aggregate(ordered)}
        if lineage:
            extra = {**(extra or {}), "lineage": _lineage_aggregate(ordered)}
        record = registry.ingest_sweep(
            spec,
            result,
            artifacts={"audit_dir": audit_path} if audit_path else None,
            extra=extra,
        )
        log.emit("run_registered", run_id=record["run_id"])
    return result


def _ledger_aggregate(results: Sequence[PointResult]) -> Dict[str, Any]:
    """Sweep-level roll-up of the per-point ledger summaries."""
    summaries = [r.ledger for r in results if r.ledger is not None]
    agg: Dict[str, Any] = {
        "points": len(summaries),
        "all_conserved": all(s["conserved"] for s in summaries),
    }
    if summaries:
        agg["mean_fractions"] = {
            b: sum(s["fractions"][b] for s in summaries) / len(summaries)
            for b in summaries[0]["fractions"]
        }
    return agg


def _lineage_aggregate(results: Sequence[PointResult]) -> Dict[str, Any]:
    """Sweep-level roll-up of the per-point lineage run blocks."""
    runs = [r.lineage["run"] for r in results if r.lineage is not None]
    agg: Dict[str, Any] = {
        "points": len(runs),
        "lb_steps": sum(r["lb_steps"] for r in runs),
        "migrations": sum(r["migrations"] for r in runs),
        "all_sane": all(r["sane"] for r in runs),
    }
    efficiencies = [
        r["efficiency"] for r in runs if r["efficiency"] is not None
    ]
    if efficiencies:
        agg["mean_efficiency"] = sum(efficiencies) / len(efficiencies)
        agg["min_efficiency"] = min(efficiencies)
    return agg

"""Canonical sweeps expressed as :class:`~repro.experiments.sweep.SweepSpec`.

These port the paper's evaluation loops onto the parallel sweep engine:

* :func:`fig2_sweep_spec` — the full Figure 2/4 run matrix (every
  (app, cores) cell's five runs: base, balanced base, interfered noLB,
  interfered LB, and the background job alone) as independent sweep
  points, so a 4-worker pool runs the whole figure ~4x faster and a
  re-run is a pure cache hit. :func:`fig2_rows_from_sweep` /
  :func:`fig4_rows_from_sweep` reassemble the paper's penalty and
  energy tables from the summaries.
* :func:`ablation_epsilon_spec` / :func:`ablation_period_spec` — the
  ABL-EPS and ABL-PERIOD benchmark sweeps (interference run with the
  paper's balancer, sweeping ε / the LB period).
* :func:`smoke_spec` — a tiny 4-scenario sweep for CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.penalty import percent_increase
from repro.experiments.sweep import (
    SweepResult,
    SweepSpec,
    background_iterations,
)
from repro.experiments.tables import format_table

__all__ = [
    "fig2_sweep_spec",
    "fig2_rows_from_sweep",
    "fig2_table_from_sweep",
    "fig4_rows_from_sweep",
    "fig4_table_from_sweep",
    "ablation_epsilon_spec",
    "ablation_period_spec",
    "smoke_spec",
]

#: The five runs behind one Figure 2/4 cell (matrix variant -> overrides).
_FIG2_VARIANTS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("base", {}),
    ("base_lb", {"balancer": "refine-vm"}),
    ("nolb", {"bg": True}),
    ("lb", {"bg": True, "balancer": "refine-vm"}),
)


def fig2_sweep_spec(
    *,
    apps: Optional[Sequence[str]] = None,
    core_counts: Optional[Sequence[int]] = None,
    scale: float = 1.0,
    iterations: int = 200,
    lb_period: int = 5,
    epsilon: float = 0.05,
    seed: int = 0,
) -> SweepSpec:
    """The Figure 2/4 matrix as one flat sweep (5 points per cell)."""
    from repro.experiments.figures import PAPER_CORE_COUNTS, paper_app_names

    apps = tuple(apps) if apps is not None else paper_app_names()
    core_counts = tuple(core_counts) if core_counts is not None else PAPER_CORE_COUNTS
    base = {
        "scale": scale,
        "iterations": iterations,
        "lb_period": lb_period,
        "epsilon": epsilon,
        "seed": seed,
    }
    points: List[Dict[str, object]] = []
    for app in apps:
        for cores in core_counts:
            cell = {"app": app, "cores": cores}
            for variant, overrides in _FIG2_VARIANTS:
                points.append(
                    {
                        **cell,
                        **overrides,
                        "label": f"{app}/{cores}/{variant}",
                    }
                )
            # the background job alone, sized exactly as the interfered
            # runs of this cell size it
            bg_iters = background_iterations({**base, **cell, "bg": True})
            points.append(
                {
                    "app": "bg",
                    "cores": 2,
                    "iterations": bg_iters,
                    "label": f"{app}/{cores}/bg_alone",
                }
            )
    return SweepSpec(name="fig2", base=base, points=tuple(points))


def _fig2_cells(result: SweepResult) -> List[Tuple[str, int]]:
    cells = []
    for r in result.results:
        parts = r.label.split("/")
        if len(parts) == 3 and parts[2] == "base":
            cells.append((parts[0], int(parts[1])))
    return cells


def fig2_rows_from_sweep(result: SweepResult) -> List[Tuple[str, int, float, float, float, float]]:
    """Figure 2 penalty rows ``(app, cores, noLB, LB, bg_noLB, bg_LB)``.

    Penalties follow :class:`~repro.experiments.figures.CaseResult`: each
    variant is compared against the matching baseline (LB run vs the
    *balanced* interference-free run) so the number isolates
    interference.
    """
    rows = []
    for app, cores in _fig2_cells(result):
        get = lambda variant: result[f"{app}/{cores}/{variant}"]
        base, base_lb = get("base"), get("base_lb")
        nolb, lb, bg_alone = get("nolb"), get("lb"), get("bg_alone")
        rows.append(
            (
                app,
                cores,
                percent_increase(nolb.app_time, base.app_time),
                percent_increase(lb.app_time, base_lb.app_time),
                percent_increase(nolb.bg_time, bg_alone.app_time),
                percent_increase(lb.bg_time, bg_alone.app_time),
            )
        )
    return rows


def fig2_table_from_sweep(result: SweepResult) -> str:
    """The Figure 2 penalty table, regenerated from sweep summaries."""
    return format_table(
        ["app", "cores", "noLB %", "LB %", "BG noLB %", "BG LB %"],
        fig2_rows_from_sweep(result),
        title="Figure 2 — timing penalty vs. interference (percent, via sweep)",
    )


def fig4_rows_from_sweep(result: SweepResult) -> List[Tuple[str, int, float, float, float, float]]:
    """Figure 4 rows ``(app, cores, noLB W, LB W, noLB energy %, LB energy %)``."""
    rows = []
    for app, cores in _fig2_cells(result):
        get = lambda variant: result[f"{app}/{cores}/{variant}"]
        base, base_lb = get("base"), get("base_lb")
        nolb, lb = get("nolb"), get("lb")
        rows.append(
            (
                app,
                cores,
                nolb.avg_power_w,
                lb.avg_power_w,
                percent_increase(nolb.energy_j, base.energy_j),
                percent_increase(lb.energy_j, base_lb.energy_j),
            )
        )
    return rows


def fig4_table_from_sweep(result: SweepResult) -> str:
    """The Figure 4 power/energy table, regenerated from sweep summaries."""
    return format_table(
        ["app", "cores", "noLB power W", "LB power W", "noLB energy %", "LB energy %"],
        fig4_rows_from_sweep(result),
        title="Figure 4 — power draw and energy overhead (via sweep)",
    )


# ---------------------------------------------------------------------------
# ablations
# ---------------------------------------------------------------------------

#: The ABL-* interference setup (mirrors benchmarks/ablation_common.py).
_ABLATION_BASE: Dict[str, object] = {
    "app": "jacobi2d",
    "cores": 16,
    "scale": 0.5,
    "iterations": 100,
    "bg": True,
    "balancer": "refine-vm",
    "lb_period": 5,
    "bg_weight": 1.0,
}


def ablation_epsilon_spec(
    epsilons: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    **base_overrides: object,
) -> SweepSpec:
    """ABL-EPS: the Eq. (3) slack ε vs run time and migration churn."""
    return SweepSpec(
        name="ablation_epsilon",
        base={**_ABLATION_BASE, **base_overrides},
        axes={"epsilon": list(epsilons)},
    )


def ablation_period_spec(
    periods: Sequence[int] = (2, 5, 10, 25, 50),
    **base_overrides: object,
) -> SweepSpec:
    """ABL-PERIOD: the balancing cadence vs reaction time and overhead."""
    return SweepSpec(
        name="ablation_period",
        base={**_ABLATION_BASE, **base_overrides},
        axes={"lb_period": list(periods)},
    )


def smoke_spec() -> SweepSpec:
    """A 4-scenario sweep small enough for CI (seconds, not minutes)."""
    return SweepSpec(
        name="smoke",
        base={"app": "jacobi2d", "scale": 0.05, "iterations": 10, "bg": True},
        axes={"cores": [4, 8], "balancer": ["none", "refine-vm"]},
    )

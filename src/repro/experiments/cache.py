"""On-disk result cache for scenario sweeps.

A sweep re-run with the same spec should not re-simulate anything: every
scenario's summary is cached on disk under a key derived from

* the **canonical scenario parameters** (the normalised point dict the
  sweep engine builds scenarios from), and
* a **code fingerprint** — a SHA-256 over every ``repro`` source file —
  so any change to the simulator automatically invalidates all entries
  (stale results can never be served after a code edit).

Entries are one JSON file each, written atomically (tmp file +
``os.replace``), so concurrent workers and interrupted runs can never
leave a truncated entry that later parses as a result. A corrupt or
unreadable entry is treated as a miss.

The default location is ``.repro-cache/sweeps`` under the current
directory; override per call or with ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.perf.profiler import active as _profiler

__all__ = [
    "CACHE_FORMAT",
    "code_fingerprint",
    "canonical_json",
    "point_key",
    "ResultCache",
    "default_cache_dir",
]

#: Bump to invalidate every existing cache entry on a schema change.
CACHE_FORMAT = 1

_fingerprint_memo: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over all ``repro`` package sources (memoised per process).

    Hashes each module's package-relative path and contents, in sorted
    order, so the fingerprint is independent of install location but
    changes whenever any simulator code changes.
    """
    global _fingerprint_memo
    if _fingerprint_memo is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\x00")
        _fingerprint_memo = h.hexdigest()
    return _fingerprint_memo


def canonical_json(data: Any) -> str:
    """Deterministic JSON form (sorted keys, no whitespace variance)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def point_key(params: Dict[str, Any], *, fingerprint: Optional[str] = None) -> str:
    """Cache key for one scenario point: content hash of params + code."""
    payload = canonical_json(
        {
            "format": CACHE_FORMAT,
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
            "params": params,
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``.repro-cache/sweeps`` in cwd."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.cwd() / ".repro-cache" / "sweeps"


class ResultCache:
    """Content-addressed store of scenario summaries.

    Parameters
    ----------
    root:
        Directory holding the entries (created lazily on first write).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        # two-level fan-out keeps directories small on big sweeps
        return self.root / key[:2] / f"{key}.json"

    def _entry(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        with _profiler().phase("cache.get"):
            try:
                with open(path) as fh:
                    entry = json.load(fh)
            except (OSError, json.JSONDecodeError):
                return None
        if entry.get("format") != CACHE_FORMAT or entry.get("key") != key:
            return None
        return entry

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached summary dict for ``key``, or None on a miss."""
        entry = self._entry(key)
        if entry is None:
            return None
        summary = entry.get("summary")
        return summary if isinstance(summary, dict) else None

    def get_extras(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry's extras section (e.g. telemetry audit), or None.

        Entries written before extras existed — or without them — simply
        return None; callers needing extras treat that as a miss.
        """
        entry = self._entry(key)
        if entry is None:
            return None
        extras = entry.get("extras")
        return extras if isinstance(extras, dict) else None

    def get_provenance(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry's provenance stamp, or None (pre-stamp entries)."""
        entry = self._entry(key)
        if entry is None:
            return None
        provenance = entry.get("provenance")
        return provenance if isinstance(provenance, dict) else None

    def put(
        self,
        key: str,
        params: Dict[str, Any],
        summary: Dict[str, Any],
        *,
        extras: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store ``summary`` for ``key`` (atomic; params kept for humans).

        ``extras`` carries optional JSON-able side payloads (the telemetry
        audit section) without touching the summary schema the golden
        tests pin.

        Every entry is stamped with a ``provenance`` section (schema
        version, git SHA, the point's RNG seed, short code fingerprint)
        so registry ingest and post-hoc audits can attribute a cached
        point to the exact source tree and seed that produced it.
        Provenance is informational only — it never participates in the
        cache key or in hit/miss decisions.
        """
        from repro.util.provenance import git_sha

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "params": params,
            "summary": summary,
            "provenance": {
                "schema": CACHE_FORMAT,
                "git_sha": git_sha(),
                "seed": params.get("seed"),
                "code_fingerprint": code_fingerprint()[:16],
            },
        }
        if extras is not None:
            entry["extras"] = extras
        with _profiler().phase("cache.put"):
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(entry, fh, indent=1, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("*/*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

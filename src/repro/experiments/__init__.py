"""Experiment harness: scenarios, runs, penalties, and figure generators.

This package turns the library into the paper's evaluation:

* :mod:`repro.experiments.scenario` — declarative run descriptions
  (application, core count, background job, balancer, network).
* :mod:`repro.experiments.runner` — execute a scenario on a fresh
  simulated cluster; returns timings, energy and traces.
* :mod:`repro.experiments.penalty` — the paper's derived quantities:
  timing penalty % and normalised energy overhead %.
* :mod:`repro.experiments.figures` — one generator per paper figure
  (``fig1`` … ``fig4``) plus the headline ≥50 %-reduction check; each
  returns structured data and a formatted text table.
* :mod:`repro.experiments.tables` — plain-text table rendering.
* :mod:`repro.experiments.sweep` — declarative scenario sweeps run in
  parallel over a process pool, with per-point summaries.
* :mod:`repro.experiments.cache` — on-disk result cache keyed by a
  content hash of the scenario parameters + a code fingerprint.
* :mod:`repro.experiments.progress` — structured (JSON-lines) sweep
  progress events and aggregate metrics.
* :mod:`repro.experiments.sweep_presets` — the paper's sweeps (Figure
  2/4 matrix, ablations) expressed as sweep specs.
"""

from repro.experiments.scenario import BackgroundSpec, Scenario
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.penalty import percent_increase
from repro.experiments.figures import (
    CaseResult,
    Fig2Row,
    Fig4Row,
    PAPER_CORE_COUNTS,
    fig1,
    fig2,
    fig3,
    fig4,
    headline_reductions,
    paper_app,
    paper_app_names,
    run_case,
)
from repro.experiments.repeat import RepeatedCase, RunStatistics, repeat_case, summarize
from repro.experiments.tables import format_table
from repro.experiments.cache import ResultCache, code_fingerprint, point_key
from repro.experiments.progress import EventLog, SweepMetrics
from repro.experiments.sweep import (
    ScenarioSummary,
    SweepResult,
    SweepSpec,
    build_scenario,
    run_point,
    run_sweep,
)

__all__ = [
    "BackgroundSpec",
    "Scenario",
    "ExperimentResult",
    "run_scenario",
    "percent_increase",
    "CaseResult",
    "Fig2Row",
    "Fig4Row",
    "PAPER_CORE_COUNTS",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "headline_reductions",
    "paper_app",
    "paper_app_names",
    "run_case",
    "format_table",
    "RepeatedCase",
    "RunStatistics",
    "repeat_case",
    "summarize",
    "ResultCache",
    "code_fingerprint",
    "point_key",
    "EventLog",
    "SweepMetrics",
    "ScenarioSummary",
    "SweepResult",
    "SweepSpec",
    "build_scenario",
    "run_point",
    "run_sweep",
]

"""File-based fabric transport: one shared job directory, many hosts.

The coordinator and its workers never talk directly — they rendezvous
through a *job directory* that only needs atomic ``rename`` and
``O_EXCL`` create to be safe, which every local filesystem and most
network filesystems provide. That makes the same transport work for N
processes on one machine and for N hosts sharing a directory, with no
sockets, no daemons and no third-party broker::

    <job dir>/
      job.json            # the immutable job: spec, points, shard plan
      queue/<shard>.json  # one marker per planned shard (never deleted)
      leases/<shard>.json # live claim: {worker, ts}; heartbeat-refreshed
      results/<shard>.json# completed shard: per-point records (atomic)
      events/<worker>.jsonl  # per-worker "schema":1 progress streams
      workers/<worker>.json  # registration: pid, host, start time
      stop                # coordinator's shutdown flag for idle workers

Ownership protocol: a shard is *available* when it has a queue marker,
no result, and no fresh lease. Claiming is an ``O_EXCL`` lease create;
a lease whose heartbeat timestamp is older than the job's lease timeout
is *stale* and may be broken (deleted) by anyone — that single rule is
both crash recovery and work stealing. Races are tolerated rather than
prevented: if two workers ever execute the same shard (a stolen lease
whose owner was merely slow), both produce byte-identical results via
the shared content-addressed cache, and the duplicate result write is
an atomic overwrite with the same bytes. Correctness never depends on
exclusion, only on idempotency.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.experiments.progress import parse_progress_line
from repro.util import get_logger, utc_timestamp

__all__ = ["JOB_SCHEMA", "FileTransport", "EventTailer"]

#: Version stamp on ``job.json``; bump on incompatible layout changes.
JOB_SCHEMA = 1

_log = get_logger(__name__)


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


class FileTransport:
    """All coordinator/worker operations over one job directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        # lease-staleness observation memory: shard -> ((ts, mono),
        # observer monotonic time of the last content change). See
        # lease_is_stale for why staleness is judged per *observer*.
        self._lease_obs: Dict[str, Tuple[Tuple[Any, Any], float]] = {}

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def job_path(self) -> Path:
        return self.root / "job.json"

    @property
    def stop_path(self) -> Path:
        return self.root / "stop"

    def queue_path(self, shard_id: str) -> Path:
        return self.root / "queue" / f"{shard_id}.json"

    def lease_path(self, shard_id: str) -> Path:
        return self.root / "leases" / f"{shard_id}.json"

    def result_path(self, shard_id: str) -> Path:
        return self.root / "results" / f"{shard_id}.json"

    def events_path(self, worker_id: str) -> Path:
        return self.root / "events" / f"{worker_id}.jsonl"

    def worker_path(self, worker_id: str) -> Path:
        return self.root / "workers" / f"{worker_id}.json"

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def has_job(self) -> bool:
        return self.job_path.is_file()

    def publish_job(self, job: Mapping[str, Any]) -> None:
        """Write the immutable job description + one queue marker per shard."""
        if self.has_job():
            raise ValueError(f"{self.job_path} already holds a job")
        _atomic_write_json(self.job_path, dict(job))
        for shard in job.get("shards", ()):
            _atomic_write_json(
                self.queue_path(shard["shard_id"]),
                {"shard_id": shard["shard_id"]},
            )

    def read_job(self) -> Dict[str, Any]:
        job = _read_json(self.job_path)
        if job is None:
            raise ValueError(f"no readable job at {self.job_path}")
        if job.get("schema") != JOB_SCHEMA:
            raise ValueError(
                f"{self.job_path}: unsupported job schema "
                f"{job.get('schema')!r} (supported: {JOB_SCHEMA})"
            )
        return job

    def write_stop(self) -> None:
        self.stop_path.touch()

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    def stopped(self) -> bool:
        return self.stop_path.exists()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str) -> None:
        _atomic_write_json(
            self.worker_path(worker_id),
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "started_utc": utc_timestamp(),
            },
        )

    # ------------------------------------------------------------------
    # leases: claim / heartbeat / steal
    # ------------------------------------------------------------------
    def _read_lease(self, shard_id: str) -> Optional[Dict[str, Any]]:
        return _read_json(self.lease_path(shard_id))

    def heartbeat(self, shard_id: str, worker_id: str) -> None:
        """Refresh (or write) the lease's liveness timestamps atomically.

        Both clocks travel in the lease: ``ts`` (wall) is comparable
        across hosts when clocks are sane, ``mono`` (the writer's
        monotonic clock) only ever advances — so a *changing* lease is
        proof of life even when the writer's wall clock is skewed or
        stepped relative to the observer's.
        """
        _atomic_write_json(
            self.lease_path(shard_id),
            {
                "shard": shard_id,
                "worker": worker_id,
                "ts": time.time(),
                "mono": time.monotonic(),
            },
        )

    def lease_is_stale(self, shard_id: str, timeout_s: float) -> bool:
        """True once the lease holder has provably stopped heartbeating.

        Two regimes, keyed on whether the lease carries the ``mono``
        field a real heartbeat always writes:

        * a lease **without** ``mono`` (hand-written, legacy, or with a
          corrupt ``ts``) is judged by wall-clock age alone — corrupt
          timestamps count as stale immediately;
        * a lease **with** ``mono`` is judged by *observation*: it is
          stale only once its content has sat unchanged for
          ``timeout_s`` on this observer's own monotonic clock. A
          heartbeating worker changes the lease every beat, so it is
          never stolen no matter how far its wall clock is skewed or
          stepped from ours; a dead worker's lease freezes and expires
          one observer-timeout after we first see it.
        """
        lease = self._read_lease(shard_id)
        if lease is None:
            self._lease_obs.pop(shard_id, None)
            return False
        ts = lease.get("ts")
        if not isinstance(ts, (int, float)):
            self._lease_obs.pop(shard_id, None)
            return True
        mono = lease.get("mono")
        if not isinstance(mono, (int, float)):
            self._lease_obs.pop(shard_id, None)
            return (time.time() - ts) > timeout_s
        content = (ts, mono)
        now = time.monotonic()
        prev = self._lease_obs.get(shard_id)
        if prev is None or prev[0] != content:
            self._lease_obs[shard_id] = (content, now)
            return False
        return (now - prev[1]) > timeout_s

    def break_lease(self, shard_id: str) -> bool:
        """Delete a lease (stale expiry / dead-worker cleanup)."""
        try:
            self.lease_path(shard_id).unlink()
            return True
        except FileNotFoundError:
            return False

    def leases_of(self, worker_id: str) -> List[str]:
        """Shard ids currently leased to ``worker_id``."""
        held = []
        for path in sorted((self.root / "leases").glob("*.json")):
            lease = _read_json(path)
            if lease is not None and lease.get("worker") == worker_id:
                held.append(path.stem)
        return held

    def queued_shard_ids(self) -> List[str]:
        queue = self.root / "queue"
        if not queue.is_dir():
            return []
        return sorted(p.stem for p in queue.glob("*.json"))

    def claim_shard(
        self, worker_id: str, *, lease_timeout_s: float
    ) -> Optional[str]:
        """Atomically claim one available shard; None when nothing claimable.

        Scans the plan in shard-id order, skipping completed shards and
        fresh leases. A stale lease is broken here — the *next* scan (by
        this or any other worker) races on the vacated ``O_EXCL`` create,
        which is the work-stealing handoff.
        """
        for shard_id in self.queued_shard_ids():
            if self.result_path(shard_id).exists():
                continue
            lease = self.lease_path(shard_id)
            lease.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(str(lease), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self.lease_is_stale(shard_id, lease_timeout_s):
                    self.break_lease(shard_id)
                    _log.info(
                        "%s: broke stale lease on %s", worker_id, shard_id
                    )
                continue
            with os.fdopen(fd, "w") as fh:
                json.dump(
                    {
                        "shard": shard_id,
                        "worker": worker_id,
                        "ts": time.time(),
                        "mono": time.monotonic(),
                    },
                    fh,
                )
            return shard_id
        return None

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def submit_result(
        self,
        shard_id: str,
        worker_id: str,
        records: List[Dict[str, Any]],
    ) -> None:
        """Atomically publish a completed shard's per-point records.

        Duplicate submissions overwrite with identical content (records
        are pure functions of the points), so redelivery is harmless.
        """
        _atomic_write_json(
            self.result_path(shard_id),
            {
                "schema": JOB_SCHEMA,
                "shard": shard_id,
                "worker": worker_id,
                "records": records,
            },
        )

    def completed_shard_ids(self) -> List[str]:
        results = self.root / "results"
        if not results.is_dir():
            return []
        return sorted(p.stem for p in results.glob("*.json"))

    def load_result(self, shard_id: str) -> Optional[Dict[str, Any]]:
        result = _read_json(self.result_path(shard_id))
        if result is None or result.get("schema") != JOB_SCHEMA:
            return None
        records = result.get("records")
        return result if isinstance(records, list) else None

    def all_done(self, shard_ids: List[str]) -> bool:
        return all(self.result_path(s).exists() for s in shard_ids)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def open_event_stream(self, worker_id: str):
        """An append-mode text stream for a worker's progress events."""
        path = self.events_path(worker_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        return open(path, "a")

    def event_tailer(self, *, skip_existing: bool = False) -> "EventTailer":
        return EventTailer(self.root / "events", skip_existing=skip_existing)


class EventTailer:
    """Incrementally drains every worker's progress stream in a job dir.

    Tracks a byte offset per file and only consumes *complete* lines
    (a worker may be mid-write), so each event is yielded exactly once
    across any number of :meth:`drain` calls. ``skip_existing`` fast-
    forwards past content already present at construction — the resume
    path, where a previous coordinator already reported those events.
    """

    def __init__(self, events_dir: Path, *, skip_existing: bool = False) -> None:
        self._dir = Path(events_dir)
        self._offsets: Dict[Path, int] = {}
        if skip_existing and self._dir.is_dir():
            for path in self._dir.glob("*.jsonl"):
                self._offsets[path] = path.stat().st_size

    def drain(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(worker_id, event)`` for every newly completed line."""
        if not self._dir.is_dir():
            return
        for path in sorted(self._dir.glob("*.jsonl")):
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[path] = offset + end + 1
            for line in chunk[: end + 1].decode("utf-8", "replace").splitlines():
                try:
                    event = parse_progress_line(line)
                except ValueError:
                    continue  # foreign/corrupt line: not ours to crash on
                if event is not None:
                    yield path.stem, event

"""Deterministic shard planning for distributed sweeps.

A *shard* is the unit of distribution: an ordered slice of a sweep's
expanded point indices that one worker executes as a whole before
reporting back. Shards — not points — are what gets queued, leased,
heartbeated, stolen and resubmitted, so the partitioning must be a pure
function of ``(point indices, shard count)``:

* **exactly once** — concatenating the shards in id order reproduces
  the input index sequence exactly (no point dropped or duplicated);
* **balanced** — shard sizes differ by at most one point;
* **stable** — the *set* of covered points is invariant under the
  shard count, so re-planning a resumed job with a different worker
  fleet can never change what gets computed, only how it is grouped.

This module is deliberately free of sweep/engine imports (it is shared
by the sweep engine and the fabric coordinator/worker, which sit on
opposite sides of the process boundary), so everything here is plain
data: indices in, :class:`Shard` tuples out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Shard", "plan_shards", "default_shard_count"]


@dataclass(frozen=True)
class Shard:
    """One distributable slice of a sweep.

    Attributes
    ----------
    index:
        Position of this shard in the plan (0-based).
    shard_id:
        Stable identifier used for queue/lease/result filenames
        (lexicographic order == plan order).
    point_indices:
        The sweep-point indices this shard executes, in sweep order.
    """

    index: int
    shard_id: str
    point_indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.point_indices)


def default_shard_count(num_points: int, workers: int) -> int:
    """Shards to plan for ``num_points`` across ``workers`` processes.

    Four shards per worker keeps the work-stealing granularity fine
    enough that a dead worker forfeits at most ~25% of its fair share,
    without drowning the transport in per-point files. With no managed
    workers (external-worker mode) the plan falls back to eight shards.
    """
    if num_points <= 0:
        return 0
    target = workers * 4 if workers > 0 else 8
    return max(1, min(num_points, target))


def plan_shards(
    point_indices: Sequence[int], num_shards: int
) -> Tuple[Shard, ...]:
    """Partition ``point_indices`` into at most ``num_shards`` shards.

    Contiguous balanced blocks: with ``n`` points and ``k`` shards the
    first ``n % k`` shards carry ``n // k + 1`` points and the rest
    ``n // k`` — never an empty shard, and asking for more shards than
    points simply yields one shard per point.
    """
    indices = [int(i) for i in point_indices]
    if len(set(indices)) != len(indices):
        raise ValueError("point indices must be unique")
    if not indices:
        return ()
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    k = min(num_shards, len(indices))
    base, extra = divmod(len(indices), k)
    shards: List[Shard] = []
    start = 0
    for s in range(k):
        size = base + (1 if s < extra else 0)
        shards.append(
            Shard(
                index=s,
                shard_id=f"s{s:04d}",
                point_indices=tuple(indices[start : start + size]),
            )
        )
        start += size
    return tuple(shards)

"""Deterministic fault injection for the sweep fabric.

The fabric's recovery paths — lease expiry, work stealing, duplicate
shard delivery, coordinator resume — are only trustworthy if they run
in CI, not just in prose. This module gives the worker a seeded,
declarative way to misbehave at an exact point in its execution:

* ``kill`` — ``os._exit(137)`` (no cleanup, no lease release: exactly
  what a SIGKILL or an evicted cloud instance looks like to the rest of
  the fabric) after completing ``point_offset`` points of the worker's
  ``shard_ordinal``-th claimed shard;
* ``hang`` — stop heartbeating and idle at the same boundary, so the
  shard's lease goes stale and another worker steals it;
* ``dup`` — after submitting the ``shard_ordinal``-th shard, re-execute
  and re-submit it, exercising idempotency (the re-run is a pure cache
  hit and the result file rewrite is byte-identical).

Fault specs are plain data (``kind:worker:shard_ordinal[:point_offset]``
strings, JSON dicts in ``job.json``), so a fault plan travels with the
job and every worker deterministically knows its own misfortune.
:func:`seeded_fault_plan` derives a plan from a seed for randomized
soak runs; the same seed always yields the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util import derive_seed, resolve_rng

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "parse_fault",
    "seeded_fault_plan",
    "FaultInjector",
]

FAULT_KINDS = ("kill", "hang", "dup")


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure, pinned to a worker and a shard boundary.

    ``point_offset`` counts completed points within the triggering
    shard: 0 fires at the shard's start (a clean shard-boundary fault),
    any larger value fires mid-shard after that many points. ``dup``
    ignores the offset — it always fires after the shard is submitted.
    """

    kind: str
    worker: str
    shard_ordinal: int
    point_offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.shard_ordinal < 0:
            raise ValueError("shard_ordinal must be >= 0")
        if self.point_offset < 0:
            raise ValueError("point_offset must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "shard_ordinal": self.shard_ordinal,
            "point_offset": self.point_offset,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            worker=str(data["worker"]),
            shard_ordinal=int(data["shard_ordinal"]),
            point_offset=int(data.get("point_offset", 0)),
        )


def parse_fault(text: str) -> FaultSpec:
    """Parse a ``kind:worker:shard_ordinal[:point_offset]`` CLI spec."""
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"bad fault spec {text!r}; expected "
            "kind:worker:shard_ordinal[:point_offset]"
        )
    try:
        ordinal = int(parts[2])
        offset = int(parts[3]) if len(parts) == 4 else 0
    except ValueError as exc:
        raise ValueError(f"bad fault spec {text!r}: {exc}") from exc
    return FaultSpec(
        kind=parts[0], worker=parts[1], shard_ordinal=ordinal,
        point_offset=offset,
    )


def seeded_fault_plan(
    seed: int,
    worker_ids: Sequence[str],
    *,
    shard_size: int = 1,
    kinds: Sequence[str] = FAULT_KINDS,
) -> Tuple[FaultSpec, ...]:
    """One deterministic fault derived from ``seed``.

    The victim worker, fault kind, shard ordinal (0 or 1) and mid-shard
    offset are all drawn from a :func:`~repro.util.derive_seed`-keyed
    RNG, so a soak harness can sweep seeds and replay any failure it
    finds bit-for-bit.
    """
    if not worker_ids:
        return ()
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = resolve_rng(derive_seed(seed, "fabric-fault-plan"))
    kind = kinds[int(rng.integers(len(kinds)))]
    worker = worker_ids[int(rng.integers(len(worker_ids)))]
    ordinal = int(rng.integers(2))
    offset = int(rng.integers(max(1, shard_size))) if kind != "dup" else 0
    return (
        FaultSpec(
            kind=kind, worker=worker, shard_ordinal=ordinal,
            point_offset=offset,
        ),
    )


class FaultInjector:
    """The worker-side trigger: folds a fault plan into boundary checks.

    The worker calls :meth:`at_boundary` at every shard start and after
    every completed point, and :meth:`duplicate_after_submit` once per
    submitted shard; each fault fires at most once.
    """

    def __init__(self, faults: Sequence[FaultSpec], worker_id: str) -> None:
        self._pending: List[FaultSpec] = [
            f for f in faults if f.worker == worker_id
        ]

    @classmethod
    def from_dicts(
        cls, faults: Optional[Sequence[Mapping[str, Any]]], worker_id: str
    ) -> "FaultInjector":
        return cls(
            tuple(FaultSpec.from_dict(f) for f in (faults or ())), worker_id
        )

    def _take(self, kinds: Tuple[str, ...], ordinal: int, offset: Optional[int]) -> Optional[FaultSpec]:
        for fault in self._pending:
            if fault.kind not in kinds or fault.shard_ordinal != ordinal:
                continue
            if offset is not None and fault.point_offset != offset:
                continue
            self._pending.remove(fault)
            return fault
        return None

    def at_boundary(self, shard_ordinal: int, completed_points: int) -> Optional[str]:
        """``"kill"``/``"hang"`` if a fault fires here, else None.

        The *caller* performs the exit/idle — keeping the process
        mechanics in the worker makes this class trivially testable.
        """
        fault = self._take(("kill", "hang"), shard_ordinal, completed_points)
        return fault.kind if fault is not None else None

    def duplicate_after_submit(self, shard_ordinal: int) -> bool:
        """True if the just-submitted shard must be re-run and re-sent."""
        return self._take(("dup",), shard_ordinal, None) is not None

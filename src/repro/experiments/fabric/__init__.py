"""Distributed sweep fabric: sharded coordinator/worker execution.

The fabric turns a parameter sweep into a fleet job: the sweep is
partitioned into deterministic shards (:mod:`.shards`), published to a
shared job directory (:mod:`.transport` — plain files, so it spans
processes and shared-filesystem hosts alike), executed by worker
processes (:mod:`.worker`) under heartbeat-refreshed leases, and
aggregated by the coordinator (:mod:`.coordinator`) into the same
``SweepResult`` the local pool produces — bit-identical summaries,
whatever fails along the way. :mod:`.faults` injects deterministic
worker failures so the recovery paths run in CI.
"""

from repro.experiments.fabric.coordinator import (
    FabricIncomplete,
    default_fabric_dir,
    run_fabric_sweep,
)
from repro.experiments.fabric.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    parse_fault,
    seeded_fault_plan,
)
from repro.experiments.fabric.shards import (
    Shard,
    default_shard_count,
    plan_shards,
)
from repro.experiments.fabric.transport import (
    JOB_SCHEMA,
    EventTailer,
    FileTransport,
)
from repro.experiments.fabric.worker import worker_main

__all__ = [
    "FAULT_KINDS",
    "JOB_SCHEMA",
    "EventTailer",
    "FabricIncomplete",
    "FaultInjector",
    "FaultSpec",
    "FileTransport",
    "Shard",
    "default_fabric_dir",
    "default_shard_count",
    "parse_fault",
    "plan_shards",
    "run_fabric_sweep",
    "seeded_fault_plan",
    "worker_main",
]

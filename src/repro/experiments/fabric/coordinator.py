"""The fabric coordinator: plan, spawn, monitor, recover, aggregate.

:func:`run_fabric_sweep` is the distributed twin of
:func:`repro.experiments.sweep.run_sweep` — same spec in, same
:class:`~repro.experiments.sweep.SweepResult` out, **bit-identical
summaries** (every point is a pure function of its parameters, so where
it runs can never change what it computes). What differs is the engine
underneath: the sweep is partitioned into deterministic shards
(:mod:`repro.experiments.fabric.shards`), published to a job directory
(:mod:`repro.experiments.fabric.transport`), and executed by worker
processes — locally spawned ones, externally joined ones
(``repro fabric worker <dir>``), or both.

The coordinator's monitoring loop is the fabric's recovery engine:

* worker progress streams are merged into the job-wide
  :class:`~repro.experiments.progress.EventLog` (so ``--jsonl``,
  ``--live``, ``repro watch`` and the run registry see one stream);
* a spawned worker that dies has its leases broken immediately
  (``worker_dead`` + ``shard_reassigned`` events), and any lease whose
  heartbeat goes stale — hung worker, lost host — is expired the same
  way, returning the shard to the queue for work stealing;
* if every managed worker is dead while shards are still pending, a
  bounded number of replacement workers is spawned; past that budget
  the run raises :class:`FabricIncomplete` — and a later
  ``run_fabric_sweep`` on the same directory *resumes*: completed
  shards are folded in from their result files, partially executed
  shards re-run as cache hits, and only genuinely missing points are
  simulated.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.cache import (
    ResultCache,
    canonical_json,
    code_fingerprint,
    point_key,
)
from repro.experiments.fabric.faults import FaultSpec
from repro.experiments.fabric.shards import (
    Shard,
    default_shard_count,
    plan_shards,
)
from repro.experiments.fabric.transport import JOB_SCHEMA, FileTransport
from repro.experiments.fabric.worker import worker_main
from repro.experiments.progress import EventLog, SweepMetrics
from repro.util import get_logger

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.obs.registry import RunRegistry

__all__ = ["FabricIncomplete", "run_fabric_sweep", "default_fabric_dir"]

_log = get_logger(__name__)


class FabricIncomplete(RuntimeError):
    """A fabric run ended with shards still unexecuted.

    Carries enough state to report progress; the job directory is left
    intact, so re-running :func:`run_fabric_sweep` on it resumes.
    """

    def __init__(self, fabric_dir: Path, done: int, total: int, reason: str):
        self.fabric_dir = Path(fabric_dir)
        self.done = done
        self.total = total
        self.reason = reason
        super().__init__(
            f"fabric job at {fabric_dir} incomplete: {done}/{total} shards "
            f"done ({reason}); re-run on the same directory to resume"
        )


def default_fabric_dir(spec_name: str) -> Path:
    """``.repro-fabric/<spec>`` under the current directory."""
    return Path.cwd() / ".repro-fabric" / spec_name


def _spec_digest(spec_dict: Dict[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json({"format": JOB_SCHEMA, "spec": spec_dict}).encode()
    ).hexdigest()[:16]


def _spawn_worker(
    fabric_dir: Path, worker_id: str, poll_s: float
) -> multiprocessing.Process:
    proc = multiprocessing.Process(
        target=worker_main,
        args=(str(fabric_dir), worker_id),
        kwargs={"poll_s": poll_s},
        name=f"fabric-{worker_id}",
        daemon=True,
    )
    proc.start()
    return proc


#: Cap on per-run attempt/shard detail persisted to the registry — keeps
#: run records small for million-point studies while preserving full
#: detail for the shard counts a dashboard actually draws.
_FABRIC_DETAIL_CAP = 200


def _fabric_stats(
    log: EventLog,
    *,
    fabric_dir: Path,
    shards: Sequence[Shard],
    outcomes: Dict[int, Any],
    workers: int,
    max_respawns: int,
    trace: bool,
) -> Dict[str, Any]:
    """Condense the coordinator's merged stream into a fabric summary.

    Computed from the coordinator's **own** :class:`EventLog` (relayed
    worker events carry coordinator-clock ``t``), so the block needs no
    import from :mod:`repro.obs` — the registry just stores it, and the
    anomaly rules / report read it back. Attempts are reconstructed the
    same way :mod:`repro.obs.fabtrace` does, but against relay times:
    a ``shard_claimed`` opens an attempt; ``shard_done``, a ``fault``,
    or a ``shard_reassigned`` steal closes it.
    """
    attempts: List[Dict[str, Any]] = []
    open_by_shard: Dict[str, List[Dict[str, Any]]] = {}
    workers_seen: set = set()
    for e in log.events:
        kind = e.get("event")
        shard = e.get("shard")
        if kind == "shard_claimed":
            attempt = {
                "shard": shard,
                "worker": e.get("worker"),
                "t0": e.get("t"),
                "t1": None,
                "outcome": "running",
            }
            attempts.append(attempt)
            open_by_shard.setdefault(str(shard), []).append(attempt)
            workers_seen.add(str(e.get("worker")))
        elif kind in ("shard_done", "fault"):
            for attempt in open_by_shard.get(str(shard), []):
                if (
                    attempt["outcome"] == "running"
                    and attempt["worker"] == e.get("worker")
                ):
                    attempt["t1"] = e.get("t")
                    if kind == "shard_done":
                        attempt["outcome"] = "done"
                    else:
                        attempt["outcome"] = (
                            "killed" if e.get("kind") == "kill" else "hung"
                        )
                    break
        elif kind == "shard_reassigned":
            for attempt in open_by_shard.get(str(shard), []):
                if attempt["outcome"] == "running":
                    attempt["t1"] = e.get("t")
                    attempt["outcome"] = "stolen"
    shard_walls: Dict[str, float] = {}
    for s in shards[:_FABRIC_DETAIL_CAP]:
        shard_walls[s.shard_id] = round(
            sum(
                outcomes[i].wall_s
                for i in s.point_indices
                if i in outcomes and not outcomes[i].cached
            ),
            6,
        )
    return {
        "fabric_dir": str(fabric_dir),
        "workers": workers,
        "workers_seen": sorted(workers_seen),
        "shards": len(shards),
        "steals": len(log.of_type("shard_reassigned")),
        "respawns": sum(
            1 for e in log.of_type("worker_spawned") if e.get("respawn")
        ),
        "max_respawns": max_respawns,
        "worker_deaths": len(log.of_type("worker_dead")),
        "trace": trace,
        "shard_walls": shard_walls,
        "attempts": attempts[:_FABRIC_DETAIL_CAP],
    }


def run_fabric_sweep(
    spec: "SweepSpec",
    *,
    fabric_dir: Optional[Path] = None,
    workers: int = 2,
    cache: Optional[ResultCache] = None,
    log: Optional[EventLog] = None,
    registry: Optional["RunRegistry"] = None,
    backend: str = "auto",
    num_shards: Optional[int] = None,
    shard_size: Optional[int] = None,
    faults: Sequence[FaultSpec] = (),
    heartbeat_s: float = 0.5,
    lease_timeout_s: float = 5.0,
    poll_s: float = 0.05,
    worker_poll_s: float = 0.05,
    respawn: bool = True,
    max_respawns: int = 2,
    timeout_s: float = 600.0,
    trace: bool = True,
) -> "SweepResult":
    """Execute ``spec`` across sharded workers; summaries match
    :func:`~repro.experiments.sweep.run_sweep` bit for bit.

    Parameters mirror ``run_sweep`` where shared (``cache``, ``log``,
    ``registry``, ``backend``); the rest shape the fabric:

    ``workers``
        Local worker processes to spawn. 0 spawns none — the job waits
        for external ``repro fabric worker`` processes to join.
    ``num_shards`` / ``shard_size``
        Partitioning override (mutually exclusive); the default is
        :func:`~repro.experiments.fabric.shards.default_shard_count`.
    ``faults``
        Fault plan published in ``job.json`` (CI's recovery drills).
    ``heartbeat_s`` / ``lease_timeout_s``
        Worker lease cadence and the staleness bound past which a shard
        is stolen.
    ``respawn`` / ``max_respawns``
        Replacement-worker budget once *all* managed workers are dead.
    ``timeout_s``
        Hard deadline; on expiry (or an exhausted respawn budget) the
        run raises :class:`FabricIncomplete` and the directory resumes
        on the next call.

    The ``audit_dir`` mode of ``run_sweep`` is deliberately
    unsupported here: audit trails require per-task tracing payloads
    that do not fit shard result files; run audited sweeps locally.
    """
    from repro.experiments.sweep import (
        PointResult,
        ScenarioSummary,
        SweepResult,
        run_sweep,  # noqa: F401  (documented twin; not called)
    )

    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if backend not in ("auto", "events", "fast", "batch"):
        raise ValueError(f"unknown backend {backend!r}")
    if num_shards is not None and shard_size is not None:
        raise ValueError("num_shards and shard_size are mutually exclusive")
    log = log if log is not None else EventLog()
    t_start = time.perf_counter()

    points = spec.expand()
    fingerprint = code_fingerprint()
    keys = {p.index: point_key(p.params, fingerprint=fingerprint) for p in points}
    fabric_dir = Path(fabric_dir) if fabric_dir else default_fabric_dir(spec.name)
    transport = FileTransport(fabric_dir)

    # ------------------------------------------------------------------
    # probe the shared cache: hits never enter the shard plan
    # ------------------------------------------------------------------
    outcomes: Dict[int, PointResult] = {}
    misses: List[int] = []
    for p in points:
        hit = cache.get(keys[p.index]) if cache is not None else None
        if hit is not None:
            outcomes[p.index] = PointResult(
                index=p.index,
                label=p.label,
                params=p.params,
                key=keys[p.index],
                summary=ScenarioSummary.from_dict(hit),
                cached=True,
                wall_s=0.0,
                worker="cache",
            )
        else:
            misses.append(p.index)

    # ------------------------------------------------------------------
    # publish or resume the job
    # ------------------------------------------------------------------
    spec_dict = spec.to_dict()
    digest = _spec_digest(spec_dict)
    resuming = transport.has_job()
    if resuming:
        job = transport.read_job()
        if job.get("spec_digest") != digest:
            raise ValueError(
                f"{fabric_dir} holds a different job "
                f"(spec digest {job.get('spec_digest')!r} != {digest!r}); "
                "use a fresh --dir"
            )
        if job.get("code_fingerprint") != fingerprint[:16]:
            raise ValueError(
                f"{fabric_dir} was planned against different code; "
                "cache keys have shifted — use a fresh --dir"
            )
        transport.clear_stop()
        shards = tuple(
            Shard(
                index=int(s["index"]),
                shard_id=str(s["shard_id"]),
                point_indices=tuple(int(i) for i in s["point_indices"]),
            )
            for s in job["shards"]
        )
    else:
        if shard_size is not None:
            if shard_size < 1:
                raise ValueError(f"shard_size must be >= 1, got {shard_size}")
            planned = max(1, -(-len(misses) // shard_size)) if misses else 0
        else:
            planned = (
                num_shards
                if num_shards is not None
                else default_shard_count(len(misses), workers)
            )
        shards = plan_shards(misses, planned) if misses else ()
        job = {
            "schema": JOB_SCHEMA,
            "name": spec.name,
            "spec": spec_dict,
            "spec_digest": digest,
            "code_fingerprint": fingerprint[:16],
            "backend": backend,
            "cache_dir": None if cache is None else str(cache.root),
            "points": [
                {
                    "index": p.index,
                    "label": p.label,
                    "key": keys[p.index],
                    "params": p.params,
                }
                for p in points
            ],
            "shards": [
                {
                    "index": s.index,
                    "shard_id": s.shard_id,
                    "point_indices": list(s.point_indices),
                }
                for s in shards
            ],
            "faults": [f.to_dict() for f in faults],
            "config": {
                "heartbeat_s": heartbeat_s,
                "lease_timeout_s": lease_timeout_s,
                "poll_s": worker_poll_s,
                "trace": trace,
            },
        }
        if misses:
            transport.publish_job(job)

    # flight recorder: with tracing on (the default), the coordinator's
    # own span stream is dual-stamped (t_wall/t_mono) and teed into
    # <fabric_dir>/coordinator.jsonl — job root, NOT events/, so the
    # worker-stream tailer never re-ingests it. With tracing off nothing
    # is written and events stay wall-clock-free; summaries are a pure
    # function of the points either way.
    coord_stream = None
    if trace and transport.has_job():
        coord_stream = open(
            fabric_dir / "coordinator.jsonl", "a", encoding="utf-8"
        )
        log.add_mirror(coord_stream)
        log.enable_clock()

    log.emit(
        "sweep_start",
        spec=spec.name,
        points=len(points),
        workers=workers,
        cached=len(outcomes),
        driver="fabric",
        shards=len(shards),
        fabric_dir=str(fabric_dir),
    )
    if resuming:
        log.emit(
            "job_resumed",
            fabric_dir=str(fabric_dir),
            shards=len(shards),
        )
    elif misses:
        log.emit(
            "job_published",
            fabric_dir=str(fabric_dir),
            shards=len(shards),
            points=len(misses),
        )
    for p in points:
        if p.index in outcomes:
            log.emit(
                "point_done",
                label=p.label,
                key=keys[p.index],
                cached=True,
                wall_s=0.0,
                worker="cache",
            )

    def fold_result(shard_id: str) -> bool:
        """Absorb one shard result file into ``outcomes``."""
        result = transport.load_result(shard_id)
        if result is None:
            return False
        for rec in result["records"]:
            idx = int(rec["index"])
            outcomes[idx] = PointResult(
                index=idx,
                label=str(rec["label"]),
                params=dict(rec["params"]),
                key=str(rec["key"]),
                summary=ScenarioSummary.from_dict(rec["summary"]),
                cached=bool(rec["cached"]),
                wall_s=float(rec["wall_s"]),
                worker=str(rec["worker"]),
            )
        return True

    # fold shards completed by a previous coordinator (resume path) and
    # replay their point_done events so the merged stream stays complete
    shard_ids = [s.shard_id for s in shards]
    done_shards = set()
    for shard_id in shard_ids:
        if transport.result_path(shard_id).exists() and fold_result(shard_id):
            done_shards.add(shard_id)
    if resuming:
        for shard_id in sorted(done_shards):
            result = transport.load_result(shard_id)
            for rec in result["records"]:
                log.emit(
                    "point_done",
                    label=rec["label"],
                    key=rec["key"],
                    cached=bool(rec["cached"]),
                    wall_s=float(rec["wall_s"]),
                    worker=str(rec["worker"]),
                    shard=shard_id,
                    resumed=True,
                )

    pending = [s for s in shard_ids if s not in done_shards]
    procs: List[Tuple[str, multiprocessing.Process]] = []
    dead_reported: set = set()
    respawns_left = max_respawns

    # pre-existing event bytes were reported by the previous coordinator
    tailer = transport.event_tailer(skip_existing=resuming)

    def drain_events() -> None:
        for _worker, event in tailer.drain():
            kind = event.get("event")
            if kind in ("worker_start", "worker_exit", "lease_heartbeat"):
                # lifecycle/heartbeat noise stays in the per-worker
                # streams (the flight recorder reads those directly);
                # the merged stream keeps points and shard transitions
                continue
            fields = {
                k: v
                for k, v in event.items()
                if k not in ("schema", "event", "t", "t_wall", "t_mono")
            }
            log.emit(kind, **fields)

    def shutdown_workers(grace_s: float = 2.0) -> None:
        transport.write_stop()
        deadline = time.monotonic() + grace_s
        for _wid, proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for _wid, proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)

    try:
        if pending:
            next_worker = 0
            for _ in range(workers):
                wid = f"w{next_worker}"
                next_worker += 1
                procs.append((wid, _spawn_worker(fabric_dir, wid, worker_poll_s)))
            deadline = time.monotonic() + timeout_s
            while pending:
                drain_events()
                for shard_id in list(pending):
                    if transport.result_path(shard_id).exists() and fold_result(
                        shard_id
                    ):
                        pending.remove(shard_id)
                        done_shards.add(shard_id)
                        log.emit(
                            "shard_complete",
                            shard=shard_id,
                            done=len(done_shards),
                            total=len(shard_ids),
                        )
                if not pending:
                    break

                # dead managed workers forfeit their leases immediately
                for wid, proc in procs:
                    if proc.is_alive() or wid in dead_reported:
                        continue
                    dead_reported.add(wid)
                    held = transport.leases_of(wid)
                    for shard_id in held:
                        transport.break_lease(shard_id)
                        log.emit("shard_reassigned", shard=shard_id, worker=wid)
                    if proc.exitcode not in (0, None):
                        log.emit(
                            "worker_dead",
                            worker=wid,
                            exitcode=proc.exitcode,
                            leases_broken=len(held),
                        )

                # stale leases (hung/lost workers, managed or not)
                for shard_id in list(pending):
                    if transport.lease_is_stale(shard_id, lease_timeout_s):
                        transport.break_lease(shard_id)
                        log.emit(
                            "shard_reassigned", shard=shard_id, worker="stale"
                        )

                if workers > 0 and all(not p.is_alive() for _w, p in procs):
                    if respawn and respawns_left > 0:
                        respawns_left -= 1
                        wid = f"w{next_worker}"
                        next_worker += 1
                        procs.append(
                            (wid, _spawn_worker(fabric_dir, wid, worker_poll_s))
                        )
                        log.emit("worker_spawned", worker=wid, respawn=True)
                    else:
                        raise FabricIncomplete(
                            fabric_dir,
                            len(done_shards),
                            len(shard_ids),
                            "all workers dead and respawn budget exhausted",
                        )
                if time.monotonic() > deadline:
                    raise FabricIncomplete(
                        fabric_dir,
                        len(done_shards),
                        len(shard_ids),
                        f"timeout after {timeout_s}s",
                    )
                time.sleep(poll_s)
    finally:
        # a fully-cached sweep never published a job directory — there
        # is nothing to stop and nothing to drain
        if transport.has_job():
            shutdown_workers()
            drain_events()
        # on an exception (FabricIncomplete, simulator error) detach the
        # mirror NOW: a resume may reuse this EventLog, and a stale
        # mirror would double-write the next run's stream. The success
        # path keeps it attached so sweep_done/run_registered land too.
        if coord_stream is not None and sys.exc_info()[0] is not None:
            log.remove_mirror(coord_stream)
            coord_stream.close()
            coord_stream = None

    missing = [i for p in points if (i := p.index) not in outcomes]
    if missing:  # pragma: no cover - guarded by the pending loop
        raise FabricIncomplete(
            fabric_dir, len(done_shards), len(shard_ids),
            f"{len(missing)} point(s) without results",
        )

    elapsed = time.perf_counter() - t_start
    executed = [r for r in outcomes.values() if not r.cached]
    executed_wall = sum(r.wall_s for r in executed)
    pool = max(1, workers)
    metrics = SweepMetrics(
        points=len(points),
        executed=len(executed),
        cache_hits=len(points) - len(executed),
        elapsed_s=elapsed,
        executed_wall_s=executed_wall,
        workers=workers,
        worker_utilization=(
            executed_wall / (pool * elapsed) if executed and elapsed > 0 else 0.0
        ),
    )
    log.emit("sweep_done", **metrics.to_dict())
    ordered = tuple(outcomes[p.index] for p in points)
    result = SweepResult(spec_name=spec.name, results=ordered, metrics=metrics)
    if registry is not None:
        fabric_block = _fabric_stats(
            log,
            fabric_dir=fabric_dir,
            shards=shards,
            outcomes=outcomes,
            workers=workers,
            max_respawns=max_respawns,
            trace=trace,
        )
        record = registry.ingest_sweep(
            spec,
            result,
            artifacts={"fabric_dir": fabric_dir},
            extra={"fabric": fabric_block},
        )
        log.emit("run_registered", run_id=record["run_id"])
    if coord_stream is not None:
        log.remove_mirror(coord_stream)
        coord_stream.close()
    return result

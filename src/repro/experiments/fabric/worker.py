"""The fabric worker: claim shards, execute points, heartbeat, report.

A worker is a plain process (``repro fabric worker <dir>``, or one the
coordinator spawns locally) that loops over the job directory: claim an
available shard, execute its points through the *shared* sweep core
(:func:`repro.experiments.sweep.run_shard` — the exact code the local
pool runs), publish the result, release the lease, repeat. Everything a
worker produces is idempotent:

* executed points land in the shared content-addressed
  :class:`~repro.experiments.cache.ResultCache` (provenance-stamped by
  ``cache.put``), so a re-executed shard — stolen, duplicated, resumed —
  is a pure cache hit;
* shard results are atomic whole-file writes keyed by shard id, so
  redelivery overwrites bytes with the same bytes.

While executing, a daemon thread refreshes the shard's lease every
``heartbeat_s``; a worker that dies (or is fault-injected dead) simply
stops refreshing, its lease goes stale, and the shard is stolen. The
worker narrates itself as ``"schema": 1`` progress events into its own
``events/<worker>.jsonl`` stream, which the coordinator merges into the
job-wide stream for ``repro watch`` / ``--live`` / the run registry.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.cache import ResultCache
from repro.experiments.fabric.faults import FaultInjector
from repro.experiments.fabric.transport import FileTransport
from repro.experiments.progress import EventLog
from repro.util import get_logger

__all__ = ["worker_main", "LeaseHeartbeat"]

_log = get_logger(__name__)


class LeaseHeartbeat:
    """Daemon thread refreshing one shard lease at a fixed cadence.

    ``on_beat`` (the flight-recorder hook) fires after every successful
    lease refresh — the worker uses it to emit ``lease_heartbeat`` span
    events into its stream when tracing is on. :class:`EventLog` emits
    under a lock, so the callback is safe from this daemon thread.
    """

    def __init__(
        self,
        transport: FileTransport,
        shard_id: str,
        worker_id: str,
        interval_s: float,
        on_beat: Optional[Callable[[], None]] = None,
    ) -> None:
        self._transport = transport
        self._shard_id = shard_id
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{shard_id}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._transport.heartbeat(self._shard_id, self._worker_id)
            except OSError:  # pragma: no cover - transient fs error
                _log.warning(
                    "heartbeat failed for %s/%s", self._worker_id, self._shard_id
                )
                continue
            if self._on_beat is not None:
                self._on_beat()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def _execute_shard_points(
    indices: List[int],
    points_by_index: Dict[int, Dict[str, Any]],
    *,
    cache: Optional[ResultCache],
    backend: str,
    worker_id: str,
    shard_id: str,
    events: EventLog,
    injector: FaultInjector,
    shard_ordinal: int,
) -> Optional[List[Dict[str, Any]]]:
    """Run one shard's points; None means a fault ended this worker's run.

    Imports the sweep core lazily so a worker process only pays for the
    simulator once it actually has work.
    """
    from repro.experiments.sweep import ScenarioSummary, run_shard

    records: List[Dict[str, Any]] = []

    def fault_at(completed: int) -> Optional[str]:
        action = injector.at_boundary(shard_ordinal, completed)
        if action == "kill":
            _log.info("%s: injected kill at %s+%d", worker_id, shard_id, completed)
            # the span lands before the exit: emit flushes the stream,
            # so the flight recorder sees the kill even though nothing
            # after os._exit ever runs
            events.emit(
                "fault",
                kind="kill",
                worker=worker_id,
                shard=shard_id,
                completed=completed,
            )
            os._exit(137)
        if action == "hang":
            # Stop participating without exiting: the lease goes stale
            # (the caller stops the heartbeat), the shard gets stolen,
            # and this process idles until the coordinator says stop.
            _log.info("%s: injected hang at %s+%d", worker_id, shard_id, completed)
            events.emit(
                "fault",
                kind="hang",
                worker=worker_id,
                shard=shard_id,
                completed=completed,
            )
            return "hang"
        return None

    if fault_at(0) == "hang":
        return None

    todo: List[tuple] = []
    for idx in indices:
        point = points_by_index[idx]
        events.emit(
            "point_start",
            label=point["label"],
            key=point["key"],
            worker=worker_id,
            shard=shard_id,
        )
        hit = cache.get(point["key"]) if cache is not None else None
        if hit is not None:
            record = {
                "index": idx,
                "label": point["label"],
                "key": point["key"],
                "params": point["params"],
                "summary": ScenarioSummary.from_dict(hit).to_dict(),
                "cached": True,
                "wall_s": 0.0,
                "worker": "cache",
            }
            records.append(record)
            events.emit(
                "point_done",
                label=point["label"],
                key=point["key"],
                cached=True,
                wall_s=0.0,
                worker="cache",
                shard=shard_id,
            )
            if fault_at(len(records)) == "hang":
                return None
        else:
            todo.append((idx, point["params"]))

    # run_shard yields per point in order; interleave cache writes,
    # events and fault boundaries as each point lands.
    done_before_misses = len(records)
    for n, (idx, summary_dict, wall_s, _tag) in enumerate(
        run_shard(todo, backend=backend, worker=worker_id), start=1
    ):
        point = points_by_index[idx]
        if cache is not None:
            cache.put(point["key"], point["params"], summary_dict)
        record = {
            "index": idx,
            "label": point["label"],
            "key": point["key"],
            "params": point["params"],
            "summary": summary_dict,
            "cached": False,
            "wall_s": wall_s,
            "worker": worker_id,
        }
        records.append(record)
        events.emit(
            "point_done",
            label=point["label"],
            key=point["key"],
            cached=False,
            wall_s=round(wall_s, 6),
            worker=worker_id,
            shard=shard_id,
        )
        if fault_at(done_before_misses + n) == "hang":
            return None

    records.sort(key=lambda r: r["index"])
    return records


def worker_main(
    root: str,
    worker_id: Optional[str] = None,
    *,
    poll_s: Optional[float] = None,
) -> int:
    """Worker process entry point; returns an exit code.

    Exits 0 when every shard in the job has a result (or the coordinator
    raised the stop flag); the only other ways out are the fault
    injector's ``os._exit`` and an unhandled simulator error.
    """
    transport = FileTransport(Path(root))
    job = transport.read_job()
    worker_id = worker_id or f"w{os.getpid()}"
    config = job.get("config", {})
    poll = poll_s if poll_s is not None else float(config.get("poll_s", 0.2))
    heartbeat_s = float(config.get("heartbeat_s", 1.0))
    lease_timeout_s = float(config.get("lease_timeout_s", 10.0))
    backend = str(job.get("backend", "auto"))
    cache_dir = job.get("cache_dir")
    cache = ResultCache(Path(cache_dir)) if cache_dir else None
    points_by_index = {int(p["index"]): p for p in job["points"]}
    shard_indices = {
        s["shard_id"]: [int(i) for i in s["point_indices"]]
        for s in job["shards"]
    }
    all_shard_ids = sorted(shard_indices)
    injector = FaultInjector.from_dicts(job.get("faults"), worker_id)

    # tracing (on by default) adds t_wall/t_mono to every event and
    # narrates lease heartbeats; with it off the stream is exactly the
    # pre-flight-recorder vocabulary. Either way summaries are a pure
    # function of the points — events never feed back into execution.
    trace = bool(config.get("trace", True))

    transport.register_worker(worker_id)
    shard_ordinal = 0
    hung = False
    with transport.open_event_stream(worker_id) as stream:
        events = EventLog(stream=stream, clock=trace)
        events.emit("worker_start", worker=worker_id, pid=os.getpid())
        while not transport.stopped():
            if hung or transport.all_done(all_shard_ids):
                if hung:
                    # idle silently until the coordinator stops the job
                    time.sleep(poll)
                    continue
                break
            shard_id = transport.claim_shard(
                worker_id, lease_timeout_s=lease_timeout_s
            )
            if shard_id is None:
                time.sleep(poll)
                continue
            events.emit("shard_claimed", shard=shard_id, worker=worker_id)
            on_beat = None
            if trace:

                def on_beat(shard: str = shard_id) -> None:
                    events.emit(
                        "lease_heartbeat", shard=shard, worker=worker_id
                    )

            heartbeat = LeaseHeartbeat(
                transport, shard_id, worker_id, heartbeat_s, on_beat
            )
            try:
                records = _execute_shard_points(
                    shard_indices[shard_id],
                    points_by_index,
                    cache=cache,
                    backend=backend,
                    worker_id=worker_id,
                    shard_id=shard_id,
                    events=events,
                    injector=injector,
                    shard_ordinal=shard_ordinal,
                )
            finally:
                heartbeat.stop()
            if records is None:  # hang fault: abandon the lease mid-shard
                hung = True
                continue
            transport.submit_result(shard_id, worker_id, records)
            transport.break_lease(shard_id)
            events.emit(
                "shard_done",
                shard=shard_id,
                worker=worker_id,
                points=len(records),
            )
            if injector.duplicate_after_submit(shard_ordinal):
                # redeliver: re-execute (pure cache hits) and re-submit
                events.emit(
                    "shard_duplicate", shard=shard_id, worker=worker_id
                )
                dup = _execute_shard_points(
                    shard_indices[shard_id],
                    points_by_index,
                    cache=cache,
                    backend=backend,
                    worker_id=worker_id,
                    shard_id=shard_id,
                    events=events,
                    injector=injector,
                    shard_ordinal=shard_ordinal,
                )
                if dup is not None:
                    transport.submit_result(shard_id, worker_id, dup)
            shard_ordinal += 1
        events.emit("worker_exit", worker=worker_id, shards=shard_ordinal)
    return 0

"""Structured sweep progress: JSON-lines events and aggregate metrics.

The sweep engine narrates a run as a stream of flat JSON objects — one
line per event — so long sweeps can be monitored (``tail -f``) and
post-processed (wall-time per scenario, worker utilisation, cache hit
rate) without parsing human-oriented tables. Events carry a monotonic
``t`` offset in seconds from sweep start, never wall-clock dates, so
logs diff cleanly between runs.

Event vocabulary (all fields JSON scalars):

* ``sweep_start`` — ``spec``, ``points``, ``workers``, ``cached``
* ``point_start`` — ``label``, ``key``
* ``point_done`` — ``label``, ``key``, ``cached``, ``wall_s``, ``worker``
* ``sweep_done`` — the :class:`SweepMetrics` fields

Every event carries ``"schema": 1`` (:data:`PROGRESS_SCHEMA`) so log
consumers can detect vocabulary changes; the number bumps on any
incompatible change to event names or fields.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["PROGRESS_SCHEMA", "SweepMetrics", "EventLog"]

#: Version stamp on every progress event.
PROGRESS_SCHEMA = 1


@dataclass(frozen=True)
class SweepMetrics:
    """Aggregate measurements of one sweep execution.

    Attributes
    ----------
    points:
        Total scenarios in the expanded spec.
    executed:
        Scenarios actually simulated (misses).
    cache_hits:
        Scenarios served from the on-disk cache.
    elapsed_s:
        Wall-clock of the whole sweep (expansion to last result).
    executed_wall_s:
        Summed per-scenario simulation wall time (across all workers).
    workers:
        Worker processes requested (1 = in-process serial).
    worker_utilization:
        ``executed_wall_s / (workers * elapsed_s)`` — the fraction of the
        worker pool's capacity spent simulating. 0.0 when nothing ran.
    """

    points: int
    executed: int
    cache_hits: int
    elapsed_s: float
    executed_wall_s: float
    workers: int
    worker_utilization: float

    @property
    def hit_rate(self) -> float:
        """Cache hits / points (0.0 for an empty sweep)."""
        return self.cache_hits / self.points if self.points else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "points": self.points,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
            "elapsed_s": self.elapsed_s,
            "executed_wall_s": self.executed_wall_s,
            "workers": self.workers,
            "worker_utilization": self.worker_utilization,
        }


class EventLog:
    """Accumulates sweep events; optionally mirrors them as JSON lines.

    Parameters
    ----------
    stream:
        Writable text stream for the JSONL mirror (e.g. an open file or
        ``sys.stderr``). None keeps events in memory only.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream
        self._t0 = time.monotonic()
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record (and optionally write) one event; returns the record."""
        record = {
            "schema": PROGRESS_SCHEMA,
            "event": event,
            "t": round(time.monotonic() - self._t0, 6),
        }
        record.update(fields)
        self.events.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._stream.flush()
        return record

    def of_type(self, event: str) -> List[Dict[str, Any]]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if e["event"] == event]

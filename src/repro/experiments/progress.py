"""Structured sweep progress: JSON-lines events and aggregate metrics.

The sweep engine narrates a run as a stream of flat JSON objects — one
line per event — so long sweeps can be monitored (``tail -f``) and
post-processed (wall-time per scenario, worker utilisation, cache hit
rate) without parsing human-oriented tables. Events carry a monotonic
``t`` offset in seconds from sweep start, never wall-clock dates, so
logs diff cleanly between runs.

Event vocabulary (all fields JSON scalars):

* ``sweep_start`` — ``spec``, ``points``, ``workers``, ``cached``
* ``point_start`` — ``label``, ``key``
* ``point_done`` — ``label``, ``key``, ``cached``, ``wall_s``, ``worker``
* ``sweep_done`` — the :class:`SweepMetrics` fields

Every event carries ``"schema": 1`` (:data:`PROGRESS_SCHEMA`) so log
consumers can detect vocabulary changes; the number bumps on any
incompatible change to event names or fields. *Additive* changes — new
event types, new fields on existing events — keep the number, so
consumers (``repro watch``, the run registry) must ignore anything they
do not recognise (:func:`parse_progress_line` enforces only the
envelope, never the full vocabulary).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TextIO, Union

from repro.util import get_logger

__all__ = [
    "PROGRESS_SCHEMA",
    "SweepMetrics",
    "EventLog",
    "parse_progress_line",
    "read_progress_jsonl",
]

#: Version stamp on every progress event.
PROGRESS_SCHEMA = 1

_log = get_logger(__name__)


@dataclass(frozen=True)
class SweepMetrics:
    """Aggregate measurements of one sweep execution.

    Attributes
    ----------
    points:
        Total scenarios in the expanded spec.
    executed:
        Scenarios actually simulated (misses).
    cache_hits:
        Scenarios served from the on-disk cache.
    elapsed_s:
        Wall-clock of the whole sweep (expansion to last result).
    executed_wall_s:
        Summed per-scenario simulation wall time (across all workers).
    workers:
        Worker processes requested (1 = in-process serial).
    worker_utilization:
        ``executed_wall_s / (workers * elapsed_s)`` — the fraction of the
        worker pool's capacity spent simulating. 0.0 when nothing ran.
    """

    points: int
    executed: int
    cache_hits: int
    elapsed_s: float
    executed_wall_s: float
    workers: int
    worker_utilization: float

    @property
    def hit_rate(self) -> float:
        """Cache hits / points (0.0 for an empty sweep)."""
        return self.cache_hits / self.points if self.points else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "points": self.points,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
            "elapsed_s": self.elapsed_s,
            "executed_wall_s": self.executed_wall_s,
            "workers": self.workers,
            "worker_utilization": self.worker_utilization,
        }


class EventLog:
    """Accumulates sweep events; optionally mirrors them as JSON lines.

    Parameters
    ----------
    stream:
        Writable text stream for the JSONL mirror (e.g. an open file or
        ``sys.stderr``). None keeps events in memory only.
    on_event:
        Optional callback fired with every record as it is emitted (the
        live-monitoring ingest hook: ``repro sweep --live`` attaches the
        TTY renderer here). None — the default — keeps the emit path at
        a single falsy check, so observation stays opt-in exactly like
        the null profiler.
    clock:
        When True every record additionally carries ``t_wall``
        (``time.time()``) and ``t_mono`` (``time.monotonic()``) — the
        dual timestamps the fabric flight recorder needs to rebase
        inter-host clock skew (:mod:`repro.obs.fabtrace`). Off by
        default: plain sweep logs stay wall-clock-free so they diff
        cleanly between runs.

    Emission is thread-safe: a fabric worker's lease-heartbeat thread
    emits ``lease_heartbeat`` spans concurrently with the main loop, so
    the append + stream write + callback runs under one lock.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: bool = False,
    ) -> None:
        self._stream = stream
        self._mirrors: List[TextIO] = []
        self._on_event = on_event
        self._clock = bool(clock)
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self.events: List[Dict[str, Any]] = []

    def enable_clock(self) -> None:
        """Stamp ``t_wall``/``t_mono`` on every subsequent record."""
        self._clock = True

    def add_mirror(self, stream: TextIO) -> None:
        """Tee every subsequent record into ``stream`` as JSON lines.

        The fabric coordinator mirrors its own span stream into
        ``<job dir>/coordinator.jsonl`` without disturbing whatever
        stream/callback the caller attached.
        """
        self._mirrors.append(stream)

    def remove_mirror(self, stream: TextIO) -> None:
        """Detach a mirror added by :meth:`add_mirror` (no-op if absent)."""
        try:
            self._mirrors.remove(stream)
        except ValueError:
            pass

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record (and optionally write) one event; returns the record."""
        record = {
            "schema": PROGRESS_SCHEMA,
            "event": event,
            "t": round(time.monotonic() - self._t0, 6),
        }
        if self._clock:
            record["t_wall"] = time.time()
            record["t_mono"] = time.monotonic()
        record.update(fields)
        with self._lock:
            self.events.append(record)
            if self._stream is not None or self._mirrors:
                line = json.dumps(record, sort_keys=True) + "\n"
                if self._stream is not None:
                    self._stream.write(line)
                    self._stream.flush()
                for mirror in self._mirrors:
                    mirror.write(line)
                    mirror.flush()
            if self._on_event is not None:
                self._on_event(record)
        return record

    def of_type(self, event: str) -> List[Dict[str, Any]]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if e["event"] == event]


# ---------------------------------------------------------------------------
# consuming a progress stream
# ---------------------------------------------------------------------------


def parse_progress_line(line: str) -> Optional[Dict[str, Any]]:
    """One JSONL progress line -> event dict (None for a blank line).

    Validates only the **envelope** — a JSON object with a string
    ``event`` name and a supported ``schema`` stamp — never the per-event
    field vocabulary, so events that grow new fields (or entirely new
    event types) still parse: forward compatibility is the consumer's
    contract. Raises ``ValueError`` on non-JSON, a non-object record, a
    missing/non-string ``event``, or an unsupported ``schema``.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise ValueError("progress event is not a JSON object")
    if not isinstance(record.get("event"), str):
        raise ValueError("progress event has no string 'event' field")
    schema = record.get("schema")
    if schema != PROGRESS_SCHEMA:
        raise ValueError(
            f"unsupported progress schema {schema!r} "
            f"(supported: {PROGRESS_SCHEMA})"
        )
    return record


def read_progress_jsonl(path: Union[str, "os.PathLike[str]"]) -> List[Dict[str, Any]]:
    """Load a progress JSONL file back into a list of event dicts.

    Mirrors the audit reader's truncation policy: a malformed **final**
    line after at least one valid event (a writer killed mid-line) is
    skipped with a warning; a malformed line anywhere else raises
    ``ValueError`` — the file is not a progress log.
    """
    with open(path) as fh:
        lines = fh.readlines()
    last_content = 0
    for line_no, line in enumerate(lines, start=1):
        if line.strip():
            last_content = line_no
    events: List[Dict[str, Any]] = []
    for line_no, line in enumerate(lines, start=1):
        try:
            record = parse_progress_line(line)
        except ValueError as exc:
            if line_no == last_content and events:
                _log.warning(
                    "%s:%d: skipping malformed trailing line (%s) — "
                    "likely a truncated write", path, line_no, exc,
                )
                break
            raise ValueError(f"{path}:{line_no}: {exc}") from exc
        if record is not None:
            events.append(record)
    return events

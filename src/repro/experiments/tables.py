"""Plain-text table rendering for the figure harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render an aligned monospace table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``. Columns are right-aligned except the first.
    """
    def cell(v: object) -> str:
        if isinstance(v, bool) or v is None:
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, c in enumerate(cells):
            parts.append(c.ljust(widths[i]) if i == 0 else c.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)

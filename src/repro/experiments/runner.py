"""Scenario execution.

:func:`run_scenario` builds a fresh engine + cluster, instantiates the
application (and background job, if any), runs the simulation to
completion of *both* jobs, and collects:

* both jobs' :class:`~repro.runtime.runtime.RunStats`;
* the energy/power window **up to the application's completion**, metered
  on the nodes the application occupies — matching the paper's
  methodology (per-node watt meters, run-scoped integration);
* the application's trace and final object mapping for timeline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.experiments.scenario import Scenario
from repro.power.meter import EnergyReading, PowerMeter
from repro.power.model import PowerModel
from repro.runtime.runtime import RunStats, Runtime
from repro.runtime.tracing import TraceLog
from repro.sim.engine import SimulationEngine
from repro.telemetry import Telemetry

__all__ = ["ExperimentResult", "run_scenario"]

ChareKey = Tuple[str, int]


@dataclass(frozen=True)
class ExperimentResult:
    """Everything measured from one scenario run.

    Attributes
    ----------
    scenario:
        The executed description.
    app:
        Application run statistics (``finished_at`` is its wall time —
        both jobs launch at t = 0 unless the background start says
        otherwise).
    bg:
        Background job statistics, or None when the scenario had none.
    energy:
        Energy window ``[0, app.finished_at]`` on the application's nodes.
    trace:
        The application's trace log (empty unless ``tracing=True``).
    final_mapping:
        chare -> core mapping at application completion.
    """

    scenario: Scenario
    app: RunStats
    bg: Optional[RunStats]
    energy: EnergyReading
    trace: TraceLog
    final_mapping: Dict[ChareKey, int]

    @property
    def app_time(self) -> float:
        """Application wall-clock (seconds)."""
        return self.app.finished_at

    @property
    def bg_time(self) -> Optional[float]:
        """Background job wall-clock, measured from its own launch."""
        if self.bg is None:
            return None
        return self.bg.finished_at - (
            self.scenario.bg.start if self.scenario.bg else 0.0
        )

    @property
    def avg_power_w(self) -> float:
        """Mean power over the application's run."""
        return self.energy.average_power_w


def run_scenario(
    scenario: Scenario,
    *,
    telemetry: Optional[Telemetry] = None,
    backend: str = "auto",
    ledger=None,
    lineage=None,
) -> ExperimentResult:
    """Execute ``scenario`` on a fresh simulated cluster.

    ``telemetry`` (optional) is attached to the *application* runtime: it
    collects per-LB-step audit records and run metrics without affecting
    the simulation (results are bit-identical with or without it).

    ``ledger`` (optional, a :class:`~repro.obs.ledger.TimeLedger`) is
    attached over the application's cores on either backend and closed —
    with its conservation check — at application finish. Like telemetry,
    it never affects the simulation.

    ``lineage`` (optional, a
    :class:`~repro.obs.lineage.LineageRecorder`) observes the
    application's per-chare load samples and LB migrations on either
    backend and is closed at application finish. Like telemetry, it
    never affects the simulation.

    ``backend`` selects the simulation backend:

    * ``"events"`` — the discrete-event engine (always available);
    * ``"fast"`` — the vectorized fast path (:mod:`repro.sim.fastpath`);
      raises :class:`~repro.sim.fastpath.FastpathUnsupported` if the
      scenario needs per-event artifacts;
    * ``"batch"`` — the structure-of-arrays batch backend
      (:mod:`repro.sim.batch`); for a single scenario this is a batch of
      one, so it shares the fast path's support envelope. Sweeps are
      where batching pays: :func:`repro.experiments.sweep.run_sweep`
      executes whole shape-homogeneous point groups per batch call;
    * ``"auto"`` (default) — the fast path when supported, else events.

    All backends are bit-identical on every result field; the parity
    suite (``tests/experiments/test_backend_parity.py``) enforces this.
    """
    if backend not in ("auto", "events", "fast", "batch"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "batch":
        from repro.sim.batch import run_scenarios_batch

        return run_scenarios_batch(
            [scenario],
            telemetries=[telemetry],
            ledgers=[ledger],
            lineages=[lineage],
        )[0]
    if backend != "events":
        from repro.sim.fastpath import (
            fastpath_unsupported_reason,
            run_scenario_fast,
        )

        if backend == "fast" or fastpath_unsupported_reason(scenario) is None:
            return run_scenario_fast(
                scenario, telemetry=telemetry, ledger=ledger, lineage=lineage
            )
    engine = SimulationEngine()
    cluster = Cluster(
        engine,
        num_nodes=scenario.num_nodes,
        cores_per_node=scenario.cores_per_node,
        record_intervals=scenario.record_intervals,
    )
    app_rt = scenario.app.instantiate(
        engine,
        cluster,
        list(scenario.app_core_ids),
        name="app",
        net=scenario.net,
        balancer=scenario.balancer,
        policy=scenario.policy,
        tracing=scenario.tracing,
        use_comm_graph=scenario.use_comm_graph,
        telemetry=telemetry,
    )

    bg_rt: Optional[Runtime] = None
    if scenario.bg is not None:
        bg_rt = scenario.bg.model.instantiate(
            engine,
            cluster,
            list(scenario.bg.core_ids),
            name="bg",
            weight=scenario.bg.weight,
            net=scenario.net,
        )

    app_nodes = cluster.nodes_for(scenario.app_core_ids)
    meter = PowerMeter(
        cluster,
        model=PowerModel(cores_per_node=scenario.cores_per_node),
        nodes=app_nodes,
    )
    reading_at_app_end: list = []
    app_rt.on_finish(lambda rt: reading_at_app_end.append(meter.reading()))

    if ledger is not None:
        app_rt.ledger = ledger
        for cid in scenario.app_core_ids:
            cluster.core(cid).ledger = ledger

        def close_ledger(rt: Runtime) -> None:
            # bring every app core's accounting (and with it the ledger
            # cursor) to the finish time, then seal + conservation-check
            for cid in scenario.app_core_ids:
                cluster.core(cid).sync()
            ledger.close(engine.now)

        app_rt.on_finish(close_ledger)

    if lineage is not None:
        app_rt.lineage = lineage
        lineage.record_placement(app_rt.mapping)

        def close_lineage(rt: Runtime) -> None:
            lineage.close(engine.now, bg_cpu=rt._true_bg_cpu())

        app_rt.on_finish(close_lineage)

    app_rt.start(scenario.iterations)
    if bg_rt is not None:
        bg_rt.start(scenario.bg.iterations, at=scenario.bg.start)

    engine.run()
    if not app_rt.done or (bg_rt is not None and not bg_rt.done):
        raise RuntimeError(
            "simulation drained before both jobs finished — "
            "a scheduling deadlock would be a library bug"
        )
    cluster.finalize_intervals()

    return ExperimentResult(
        scenario=scenario,
        app=app_rt.stats,
        bg=bg_rt.stats if bg_rt is not None else None,
        energy=reading_at_app_end[0],
        trace=app_rt.trace,
        final_mapping=dict(app_rt.mapping),
    )

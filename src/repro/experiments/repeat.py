"""Repeated runs and summary statistics.

The paper: "All the results shown are averages over three similar runs."
Our simulator is deterministic for a given seed, so "similar runs" are
realised by re-seeding the applications' run-to-run variation sources
(stencil jitter phases, Mol3D's density field) and repeating the whole
Figure-2 cell. :func:`repeat_case` returns per-metric
mean/std/min/max across seeds plus a formatted table — the reproduction's
analogue of the paper's error-free averaged bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.experiments.figures import CaseResult, run_case
from repro.experiments.tables import format_table

__all__ = ["RunStatistics", "RepeatedCase", "summarize", "repeat_case"]


@dataclass(frozen=True)
class RunStatistics:
    """Summary of one metric across repeated runs."""

    values: Tuple[float, ...]
    mean: float
    std: float
    min: float
    max: float

    @property
    def n(self) -> int:
        return len(self.values)


def summarize(values: Sequence[float]) -> RunStatistics:
    """Mean / sample std / extrema of ``values`` (n >= 1)."""
    vals = tuple(float(v) for v in values)
    if not vals:
        raise ValueError("summarize needs at least one value")
    mean = sum(vals) / len(vals)
    if len(vals) > 1:
        var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return RunStatistics(
        values=vals, mean=mean, std=std, min=min(vals), max=max(vals)
    )


#: The Figure-2/4 metrics aggregated by :func:`repeat_case`.
_METRICS: Dict[str, Callable[[CaseResult], float]] = {
    "penalty_nolb": lambda c: c.penalty_nolb,
    "penalty_lb": lambda c: c.penalty_lb,
    "bg_penalty_nolb": lambda c: c.bg_penalty_nolb,
    "bg_penalty_lb": lambda c: c.bg_penalty_lb,
    "power_nolb_w": lambda c: c.power_nolb_w,
    "power_lb_w": lambda c: c.power_lb_w,
    "energy_overhead_nolb": lambda c: c.energy_overhead_nolb,
    "energy_overhead_lb": lambda c: c.energy_overhead_lb,
}


@dataclass(frozen=True)
class RepeatedCase:
    """One Figure-2/4 cell averaged over seeds (the paper's methodology)."""

    app_name: str
    cores: int
    seeds: Tuple[int, ...]
    metrics: Dict[str, RunStatistics]

    def text(self) -> str:
        rows = [
            (name, s.mean, s.std, s.min, s.max)
            for name, s in self.metrics.items()
        ]
        return format_table(
            ["metric", "mean", "std", "min", "max"],
            rows,
            title=(
                f"{self.app_name} on {self.cores} cores — "
                f"averages over {len(self.seeds)} runs (seeds {list(self.seeds)})"
            ),
            float_fmt="{:.2f}",
        )


def repeat_case(
    app_name: str,
    cores: int,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    **case_kwargs,
) -> RepeatedCase:
    """Run one Figure-2/4 cell once per seed and aggregate.

    ``case_kwargs`` are forwarded to
    :func:`~repro.experiments.figures.run_case` (scale, iterations,
    lb_period, ...). Three seeds is the paper's own repetition count.
    """
    if not seeds:
        raise ValueError("repeat_case needs at least one seed")
    cases = [
        run_case(app_name, cores, seed=seed, **case_kwargs) for seed in seeds
    ]
    metrics = {
        name: summarize([fn(c) for c in cases]) for name, fn in _METRICS.items()
    }
    return RepeatedCase(
        app_name=app_name,
        cores=cores,
        seeds=tuple(int(s) for s in seeds),
        metrics=metrics,
    )

"""Declarative experiment scenarios.

A :class:`Scenario` is everything needed to reproduce one run of the
paper's evaluation: the application and its core allocation, the optional
interfering background job (itself a small parallel application, per the
paper's 2-core Wave2D), the balancer and its cadence, and the testbed
shape. Scenarios are plain data; :func:`repro.experiments.runner.run_scenario`
executes them on a fresh simulated cluster, so results are independent
and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.apps.base import AppModel
from repro.cluster.netmodel import NetworkModel
from repro.core.balancer import LoadBalancer
from repro.core.policies import LBPolicy
from repro.util import check_positive

__all__ = ["BackgroundSpec", "Scenario"]


@dataclass(frozen=True)
class BackgroundSpec:
    """The interfering job of a scenario.

    Attributes
    ----------
    model:
        Application model of the background job (the paper uses a 2-core
        Wave2D; see :meth:`repro.apps.wave2d.Wave2D.background`).
    core_ids:
        Physical cores the job is pinned to (co-located with the
        application under test).
    iterations:
        Iterations the background job runs.
    weight:
        OS scheduler weight. 1.0 = fair CPU sharing; >1 reproduces the
        host preference toward the background job the paper observed in
        its Mol3D experiments.
    start:
        Simulated launch time (0 = together with the application, as in
        the paper's Figure 2 runs; later values script Figure 1/3-style
        arrivals).
    """

    model: AppModel
    core_ids: Tuple[int, ...]
    iterations: int
    weight: float = 1.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ValueError("background job needs at least one core")
        check_positive("iterations", self.iterations)
        check_positive("weight", self.weight)
        if self.start < 0:
            raise ValueError("start must be >= 0")


@dataclass(frozen=True)
class Scenario:
    """One complete experiment description.

    Attributes
    ----------
    app:
        Application model under test.
    num_cores:
        Cores allocated to the application (ids ``0..num_cores-1``).
    iterations:
        Application iterations.
    balancer:
        Strategy, or None for a run without load balancing (the paper's
        "noLB"). Pass a fresh instance per scenario (strategies with
        internal counters, e.g. :class:`MigrationCostAwareLB`, accumulate
        statistics).
    policy:
        LB cadence and overheads.
    bg:
        Optional interfering job.
    net:
        Network model (default: the testbed's native Ethernet).
    cores_per_node:
        Node width (paper testbed: 4); the cluster allocates
        ``ceil(num_cores / cores_per_node)`` nodes, plus any nodes the
        background job needs.
    tracing:
        Record Projections events for the application.
    record_intervals:
        Record per-core busy intervals (power time-series / timelines).
    use_comm_graph:
        Model the application's communication per-chare (placement-
        dependent delay) instead of the flat per-core volume; requires
        the app to implement
        :meth:`~repro.apps.base.AppModel.comm_graph`.
    """

    app: AppModel
    num_cores: int
    iterations: int
    balancer: Optional[LoadBalancer] = None
    policy: LBPolicy = field(default_factory=LBPolicy)
    bg: Optional[BackgroundSpec] = None
    net: NetworkModel = field(default_factory=NetworkModel.native)
    cores_per_node: int = 4
    tracing: bool = False
    record_intervals: bool = False
    use_comm_graph: bool = False

    def __post_init__(self) -> None:
        check_positive("num_cores", self.num_cores)
        check_positive("iterations", self.iterations)
        check_positive("cores_per_node", self.cores_per_node)

    @property
    def app_core_ids(self) -> Tuple[int, ...]:
        """The application's core allocation (always the first cores)."""
        return tuple(range(self.num_cores))

    @property
    def num_nodes(self) -> int:
        """Nodes needed to host the application and background job."""
        highest = self.num_cores - 1
        if self.bg is not None:
            highest = max(highest, max(self.bg.core_ids))
        return highest // self.cores_per_node + 1

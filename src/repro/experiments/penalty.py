"""The paper's derived quantities.

Timing penalty (§V-A): "the additional time it takes to run the parallel
job with interference ... as a percentage of time taken by the same run
without any interference". Energy overhead (§V-B): energy normalised
"with respect to a base run where the application ran without any
interference from the background load".

Both reduce to :func:`percent_increase`.
"""

from __future__ import annotations

from repro.util import check_positive

__all__ = ["percent_increase"]


def percent_increase(measured: float, baseline: float) -> float:
    """``100 * (measured - baseline) / baseline``.

    Raises
    ------
    ValueError
        If ``baseline`` is not positive (a penalty against a zero-cost
        baseline is undefined).
    """
    check_positive("baseline", baseline)
    return 100.0 * (measured - baseline) / baseline

"""Generators for every figure in the paper's evaluation (§V).

The paper has no numbered tables; its results are Figures 1–4:

* :func:`fig1` — Wave2D on 4 cores, a 1-core interfering job appearing on
  the last core mid-run, no load balancing: per-core timelines of a clean
  and an interfered iteration (paper Figure 1 a/b).
* :func:`fig2` — timing penalty (%) of Jacobi2D / Wave2D / Mol3D and of
  the 2-core background job, with and without the interference-aware
  balancer, across core counts (paper Figure 2 a/b/c).
* :func:`fig3` — Wave2D on 4 cores with the balancer on and interference
  that arrives on core 1, leaves, then arrives on core 3: timelines of
  the five phases (paper Figure 3 a–e).
* :func:`fig4` — average power (W) and normalised energy overhead (%) for
  the same runs as Figure 2 (paper Figure 4 a/b/c).
* :func:`headline_reductions` — the paper's abstract-level claim: load
  balancing cuts the timing penalty and the energy overhead by at least
  5 % for every application (our reproduction typically far exceeds it).

Every generator takes a ``scale`` knob (grid size / particle count
multiplier) so the identical code path runs both as a quick test and as
the full-size benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import Jacobi2D, Mol3D, Wave2D
from repro.apps.base import AppModel
from repro.cluster.background import Interferer
from repro.cluster.cluster import Cluster
from repro.cluster.netmodel import NetworkModel
from repro.core.interference import RefineVMInterferenceLB
from repro.core.policies import LBPolicy
from repro.experiments.penalty import percent_increase
from repro.experiments.runner import ExperimentResult, run_scenario
from repro.experiments.scenario import BackgroundSpec, Scenario
from repro.experiments.tables import format_table
from repro.projections import extract_timelines, render_timelines
from repro.sim.engine import SimulationEngine
from repro.util import check_positive

__all__ = [
    "PAPER_CORE_COUNTS",
    "paper_app_names",
    "paper_app",
    "CaseResult",
    "run_case",
    "run_matrix",
    "Fig1Result",
    "fig1",
    "Fig2Row",
    "Fig2Result",
    "fig2",
    "Fig3Result",
    "fig3",
    "Fig4Row",
    "Fig4Result",
    "fig4",
    "HeadlineRow",
    "headline_reductions",
]

#: Core counts swept in Figure 2/4. The testbed allocates whole 4-core
#: nodes, topping out at 8 nodes = 32 cores; with the background job
#: pinned to 2 cores, 8 is the smallest allocation where shedding the two
#: interfered cores can beat no-LB at all (below that, losing 2 of P
#: cores costs as much as the interference itself).
PAPER_CORE_COUNTS: Tuple[int, ...] = (8, 16, 24, 32)

#: OS share weight of the background job per application scenario. The
#: paper: "we saw a significant preference to the background load in the
#: case of Mol3D" — reproduced as a larger weight for that scenario.
_BG_WEIGHT: Dict[str, float] = {"jacobi2d": 1.0, "wave2d": 1.0, "mol3d": 4.0}


def paper_app_names() -> Tuple[str, ...]:
    """The three evaluated applications, figure order."""
    return ("jacobi2d", "wave2d", "mol3d")


def paper_app(name: str, scale: float = 1.0, *, seed: int = 0) -> AppModel:
    """Build one of the paper's applications at a size multiplier.

    ``scale=1.0`` is the full evaluation size; tests use ~0.1 for speed.
    ``seed`` varies the run-to-run sources (stencil jitter phases,
    Mol3D's density realisation) — the paper's "three similar runs" are
    three seeds (see :mod:`repro.experiments.repeat`).
    """
    check_positive("scale", scale)
    if name == "jacobi2d":
        return Jacobi2D(grid_size=max(int(4096 * scale), 64), jitter_seed=seed)
    if name == "wave2d":
        return Wave2D(grid_size=max(int(4096 * scale), 64), jitter_seed=seed)
    if name == "mol3d":
        return Mol3D(
            total_particles=max(int(48_000 * scale), 512), seed=42 + seed
        )
    raise ValueError(f"unknown paper app {name!r}; known: {paper_app_names()}")


def _bg_model(scale: float) -> Wave2D:
    """The paper's interfering job: a 2-core Wave2D, scaled with the apps."""
    return Wave2D.background(grid_size=max(int(1448 * scale), 32))


def _estimate_iteration_time(model: AppModel, num_cores: int) -> float:
    """Rough per-iteration wall time: total chare work / cores."""
    array = model.build_array(num_cores)
    total = sum(c.work(0) for c in array)
    return total / num_cores


# ---------------------------------------------------------------------------
# shared Figure 2/4 machinery
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CaseResult:
    """All runs for one (application, core count) cell of Figures 2/4.

    ``base`` is the application alone without balancing; ``base_lb`` is
    the application alone *with* the balancer. ``nolb``/``lb`` add the
    2-core background job; ``bg_alone_time`` is the background job by
    itself. Each variant's penalty uses the matching baseline so the
    number isolates *interference*: Mol3D has internal imbalance the
    balancer fixes even without interference, and comparing an LB run
    against an unbalanced base would conflate the two effects (producing
    nonsense like negative penalties).
    """

    app_name: str
    cores: int
    base: ExperimentResult
    base_lb: ExperimentResult
    nolb: ExperimentResult
    lb: ExperimentResult
    bg_alone_time: float

    # -- Figure 2 quantities -------------------------------------------
    @property
    def penalty_nolb(self) -> float:
        """App timing penalty (%) without load balancing."""
        return percent_increase(self.nolb.app_time, self.base.app_time)

    @property
    def penalty_lb(self) -> float:
        """App timing penalty (%) with the interference-aware balancer."""
        return percent_increase(self.lb.app_time, self.base_lb.app_time)

    @property
    def bg_penalty_nolb(self) -> float:
        """Background job's timing penalty (%) in the noLB run."""
        return percent_increase(self.nolb.bg_time, self.bg_alone_time)

    @property
    def bg_penalty_lb(self) -> float:
        """Background job's timing penalty (%) in the LB run."""
        return percent_increase(self.lb.bg_time, self.bg_alone_time)

    # -- Figure 4 quantities -------------------------------------------
    @property
    def power_base_w(self) -> float:
        return self.base.avg_power_w

    @property
    def power_nolb_w(self) -> float:
        return self.nolb.avg_power_w

    @property
    def power_lb_w(self) -> float:
        return self.lb.avg_power_w

    @property
    def energy_overhead_nolb(self) -> float:
        """Energy overhead (%) vs the interference-free base run."""
        return percent_increase(self.nolb.energy.energy_j, self.base.energy.energy_j)

    @property
    def energy_overhead_lb(self) -> float:
        """Energy overhead (%) vs the interference-free *balanced* base."""
        return percent_increase(self.lb.energy.energy_j, self.base_lb.energy.energy_j)


def run_case(
    app_name: str,
    cores: int,
    *,
    scale: float = 1.0,
    iterations: int = 200,
    lb_period: int = 5,
    epsilon: float = 0.05,
    bg_overlap: Optional[float] = None,
    net: Optional[NetworkModel] = None,
    seed: int = 0,
) -> CaseResult:
    """Execute the four runs behind one Figure 2/4 cell.

    The background job (2-core Wave2D on cores 0–1, per the paper) is
    sized so that, alone, it lasts ``bg_overlap`` x the application's
    estimated interference-free duration. The default overlap is
    ``1.2 * (1 + bg_weight)``: an un-balanced application stretches by
    about ``(1 + bg_weight)``, and the background job must keep
    interfering for that whole run (the paper started both jobs together
    and kept the background load present throughout).
    """
    net = net or NetworkModel.native()
    model = paper_app(app_name, scale, seed=seed)
    bg = _bg_model(scale)
    bg_weight = _BG_WEIGHT[app_name]
    policy = LBPolicy(period_iterations=lb_period, decision_overhead_s=2e-4)
    if bg_overlap is None:
        bg_overlap = 1.2 * (1.0 + bg_weight)

    app_est = _estimate_iteration_time(model, cores) * iterations
    bg_iter_est = _estimate_iteration_time(bg, 2)
    bg_iterations = max(int(math.ceil(bg_overlap * app_est / bg_iter_est)), 1)

    def bg_spec() -> BackgroundSpec:
        return BackgroundSpec(
            model=bg, core_ids=(0, 1), iterations=bg_iterations, weight=bg_weight
        )

    base = run_scenario(
        Scenario(app=model, num_cores=cores, iterations=iterations, net=net)
    )
    base_lb = run_scenario(
        Scenario(
            app=model,
            num_cores=cores,
            iterations=iterations,
            net=net,
            balancer=RefineVMInterferenceLB(epsilon),
            policy=policy,
        )
    )
    nolb = run_scenario(
        Scenario(
            app=model, num_cores=cores, iterations=iterations, net=net, bg=bg_spec()
        )
    )
    lb = run_scenario(
        Scenario(
            app=model,
            num_cores=cores,
            iterations=iterations,
            net=net,
            bg=bg_spec(),
            balancer=RefineVMInterferenceLB(epsilon),
            policy=policy,
        )
    )
    bg_alone = run_scenario(
        Scenario(app=bg, num_cores=2, iterations=bg_iterations, net=net)
    )
    return CaseResult(
        app_name=app_name,
        cores=cores,
        base=base,
        base_lb=base_lb,
        nolb=nolb,
        lb=lb,
        bg_alone_time=bg_alone.app_time,
    )


def run_matrix(
    *,
    apps: Optional[Sequence[str]] = None,
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    scale: float = 1.0,
    iterations: int = 200,
    **case_kwargs,
) -> Dict[Tuple[str, int], CaseResult]:
    """All Figure 2/4 cells: ``(app, cores) -> CaseResult``."""
    apps = tuple(apps) if apps is not None else paper_app_names()
    matrix = {}
    for name in apps:
        for cores in core_counts:
            matrix[(name, cores)] = run_case(
                name, cores, scale=scale, iterations=iterations, **case_kwargs
            )
    return matrix


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig1Result:
    """Reproduction of Figure 1 (clean vs interfered timelines)."""

    clean_iteration: int
    interfered_iteration: int
    clean_duration: float
    interfered_duration: float
    rendering_clean: str
    rendering_interfered: str
    iteration_times: Tuple[float, ...]

    @property
    def stretch_factor(self) -> float:
        """Interfered / clean iteration duration (paper: ~2x)."""
        return self.interfered_duration / self.clean_duration

    def text(self) -> str:
        """Human-readable report (both timelines + the stretch factor)."""
        return "\n".join(
            [
                f"(a) no BG task — iteration {self.clean_iteration}, "
                f"{self.clean_duration:.4f}s",
                self.rendering_clean,
                "",
                f"(b) BG task on last core — iteration "
                f"{self.interfered_iteration}, {self.interfered_duration:.4f}s "
                f"({self.stretch_factor:.2f}x longer)",
                self.rendering_interfered,
            ]
        )


def fig1(
    *,
    scale: float = 1.0,
    iterations: int = 12,
    start_after: int = 4,
    width: int = 72,
) -> Fig1Result:
    """Reproduce Figure 1: one interfering task unbalances a 4-core run.

    Wave2D on 4 cores, no load balancing; a 1-core compute-bound job
    appears on the last core (the paper's "Core#4") after ``start_after``
    iterations and stays until the end.
    """
    engine = SimulationEngine()
    cluster = Cluster(engine, num_nodes=1, cores_per_node=4)
    model = Wave2D(grid_size=max(int(1024 * scale * 4), 64), odf=4, jitter_amp=0.0)
    rt = model.instantiate(engine, cluster, [0, 1, 2, 3], tracing=True)
    hog = Interferer(engine, cluster.core(3), start=None, owner="bg:1core-job")
    rt.on_iteration(
        lambda r, it: hog.activate() if it == start_after - 1 else None
    )
    rt.start(iterations)
    engine.run()

    clean_it = max(start_after - 2, 0)
    interfered_it = iterations - 2
    tl_clean = extract_timelines(rt.trace, [0, 1, 2, 3], iterations=(clean_it, clean_it))
    tl_bad = extract_timelines(
        rt.trace, [0, 1, 2, 3], iterations=(interfered_it, interfered_it)
    )
    times = rt.stats.iteration_times
    return Fig1Result(
        clean_iteration=clean_it,
        interfered_iteration=interfered_it,
        clean_duration=times[clean_it],
        interfered_duration=times[interfered_it],
        rendering_clean=render_timelines(tl_clean, width=width),
        rendering_interfered=render_timelines(tl_bad, width=width),
        iteration_times=tuple(times),
    )


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig2Row:
    """One bar group of Figure 2: an (app, cores) cell's four series."""

    app_name: str
    cores: int
    nolb: float
    lb: float
    bg_nolb: float
    bg_lb: float


@dataclass(frozen=True)
class Fig2Result:
    """Reproduction of Figure 2 (timing penalties)."""

    rows: Tuple[Fig2Row, ...]
    matrix: Dict[Tuple[str, int], CaseResult]

    def text(self) -> str:
        return format_table(
            ["app", "cores", "noLB %", "LB %", "BG noLB %", "BG LB %"],
            [
                (r.app_name, r.cores, r.nolb, r.lb, r.bg_nolb, r.bg_lb)
                for r in self.rows
            ],
            title="Figure 2 — timing penalty vs. interference (percent)",
        )


def fig2(
    *,
    matrix: Optional[Dict[Tuple[str, int], CaseResult]] = None,
    **matrix_kwargs,
) -> Fig2Result:
    """Reproduce Figure 2. Pass ``matrix`` to reuse Figure 4's runs."""
    matrix = matrix if matrix is not None else run_matrix(**matrix_kwargs)
    rows = tuple(
        Fig2Row(
            app_name=case.app_name,
            cores=case.cores,
            nolb=case.penalty_nolb,
            lb=case.penalty_lb,
            bg_nolb=case.bg_penalty_nolb,
            bg_lb=case.bg_penalty_lb,
        )
        for case in matrix.values()
    )
    return Fig2Result(rows=rows, matrix=matrix)


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig3Result:
    """Reproduction of Figure 3 (balancer tracking moving interference).

    ``phases`` maps the five paper panels (a–e) to mean iteration time
    and the interfered core's object count in that phase.
    """

    phase_names: Tuple[str, ...]
    phase_mean_iteration: Tuple[float, ...]
    phase_objects_core1: Tuple[float, ...]
    phase_objects_core3: Tuple[float, ...]
    renderings: Tuple[str, ...]
    iteration_times: Tuple[float, ...]

    def text(self) -> str:
        lines = ["Figure 3 — balancer reacting to moving interference"]
        for name, t, o1, o3, render in zip(
            self.phase_names,
            self.phase_mean_iteration,
            self.phase_objects_core1,
            self.phase_objects_core3,
            self.renderings,
        ):
            lines.append("")
            lines.append(
                f"[{name}] mean iteration {t:.4f}s, "
                f"objects on core1={o1:.1f}, core3={o3:.1f}"
            )
            lines.append(render)
        return "\n".join(lines)


def fig3(
    *,
    scale: float = 1.0,
    lb_period: int = 4,
    width: int = 72,
) -> Fig3Result:
    """Reproduce Figure 3: interference on core 1, then gone, then core 3.

    Wave2D on 4 cores with the interference-aware balancer. The phases
    are driven at iteration boundaries (each phase spans ``3*lb_period``
    iterations, so the balancer gets several windows to converge):

    a. iterations [P0..) — hog on core 1, mapping still static;
    b. after the next LB steps — rebalanced around core 1;
    c. hog leaves — balancer migrates objects *back*;
    d. hog appears on core 3 — imbalance again;
    e. after further LB steps — rebalanced around core 3.
    """
    engine = SimulationEngine()
    cluster = Cluster(engine, num_nodes=1, cores_per_node=4)
    model = Wave2D(grid_size=max(int(1024 * scale * 4), 64), odf=4, jitter_amp=0.0)
    rt = model.instantiate(
        engine,
        cluster,
        [0, 1, 2, 3],
        tracing=True,
        balancer=RefineVMInterferenceLB(0.05),
        policy=LBPolicy(period_iterations=lb_period),
    )
    span = 3 * lb_period
    total = 5 * span
    hog1 = Interferer(engine, cluster.core(1), start=None, owner="bg:hog1")
    hog3 = Interferer(engine, cluster.core(3), start=None, owner="bg:hog3")
    objects_on = {1: [], 3: []}

    def driver(r, it):
        if it == 0:
            hog1.activate()
        elif it == 2 * span:
            hog1.deactivate()
        elif it == 3 * span:
            hog3.activate()
        objects_on[1].append(sum(1 for c in r.mapping.values() if c == 1))
        objects_on[3].append(sum(1 for c in r.mapping.values() if c == 3))

    rt.on_iteration(driver)
    rt.start(total)
    engine.run()

    phase_names = (
        "a: BG on core1, unbalanced",
        "b: BG on core1, rebalanced",
        "c: BG gone, restored",
        "d: BG on core3, unbalanced",
        "e: BG on core3, rebalanced",
    )
    # representative windows: the first LB period of a phase shows the
    # unbalanced state; the last shows the converged state.
    windows = [
        (1, lb_period - 1),
        (span + lb_period, 2 * span - 1),
        (2 * span + lb_period, 3 * span - 1),
        (3 * span, 3 * span + lb_period - 1),
        (4 * span + lb_period, 5 * span - 2),
    ]
    times = rt.stats.iteration_times
    mean_iter, obj1, obj3, renders = [], [], [], []
    for lo, hi in windows:
        mean_iter.append(sum(times[lo : hi + 1]) / (hi - lo + 1))
        obj1.append(sum(objects_on[1][lo : hi + 1]) / (hi - lo + 1))
        obj3.append(sum(objects_on[3][lo : hi + 1]) / (hi - lo + 1))
        tls = extract_timelines(rt.trace, [0, 1, 2, 3], iterations=(hi - 1, hi))
        renders.append(render_timelines(tls, width=width))
    return Fig3Result(
        phase_names=phase_names,
        phase_mean_iteration=tuple(mean_iter),
        phase_objects_core1=tuple(obj1),
        phase_objects_core3=tuple(obj3),
        renderings=tuple(renders),
        iteration_times=tuple(times),
    )


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig4Row:
    """One bar group of Figure 4: power (W) and energy overhead (%)."""

    app_name: str
    cores: int
    power_nolb_w: float
    power_lb_w: float
    energy_overhead_nolb: float
    energy_overhead_lb: float


@dataclass(frozen=True)
class Fig4Result:
    """Reproduction of Figure 4 (power and normalised energy)."""

    rows: Tuple[Fig4Row, ...]
    matrix: Dict[Tuple[str, int], CaseResult]

    def text(self) -> str:
        return format_table(
            [
                "app",
                "cores",
                "noLB power W",
                "LB power W",
                "noLB energy %",
                "LB energy %",
            ],
            [
                (
                    r.app_name,
                    r.cores,
                    r.power_nolb_w,
                    r.power_lb_w,
                    r.energy_overhead_nolb,
                    r.energy_overhead_lb,
                )
                for r in self.rows
            ],
            title="Figure 4 — power draw and energy overhead",
        )


def fig4(
    *,
    matrix: Optional[Dict[Tuple[str, int], CaseResult]] = None,
    **matrix_kwargs,
) -> Fig4Result:
    """Reproduce Figure 4. Pass ``matrix`` to reuse Figure 2's runs."""
    matrix = matrix if matrix is not None else run_matrix(**matrix_kwargs)
    rows = tuple(
        Fig4Row(
            app_name=case.app_name,
            cores=case.cores,
            power_nolb_w=case.power_nolb_w,
            power_lb_w=case.power_lb_w,
            energy_overhead_nolb=case.energy_overhead_nolb,
            energy_overhead_lb=case.energy_overhead_lb,
        )
        for case in matrix.values()
    )
    return Fig4Result(rows=rows, matrix=matrix)


# ---------------------------------------------------------------------------
# headline claim
# ---------------------------------------------------------------------------


#: The paper's claimed minimum reduction: "our scheme reduces the timing
#: penalty and energy overhead associated with interfering jobs by at
#: least 5%" (abstract; reiterated in §VI).
PAPER_CLAIM_PERCENT = 5.0


@dataclass(frozen=True)
class HeadlineRow:
    """Worst-case reductions for one application across core counts."""

    app_name: str
    min_penalty_reduction: float
    min_energy_reduction: float

    @property
    def meets_claim(self) -> bool:
        """The paper's >= 5 % reduction claim (typically far exceeded)."""
        return (
            self.min_penalty_reduction >= PAPER_CLAIM_PERCENT
            and self.min_energy_reduction >= PAPER_CLAIM_PERCENT
        )


def _reduction_percent(lb: float, nolb: float) -> float:
    """``100 * (1 - LB / noLB)``, or 0.0 when the noLB baseline is ~0.

    A zero baseline means there was no overhead to reduce (tiny ``--scale``
    runs where interference rounds to nothing), so no reduction can be
    demonstrated — report 0 % rather than dividing by zero.
    """
    if nolb <= 0.0:
        return 0.0
    return 100.0 * (1.0 - lb / nolb)


def headline_reductions(
    matrix: Dict[Tuple[str, int], CaseResult]
) -> List[HeadlineRow]:
    """Check the abstract's claim on a Figure 2/4 matrix.

    Reduction = ``100 * (1 - LB / noLB)`` for the timing penalty and the
    energy overhead; the row reports each application's *worst* core
    count.  Cases whose noLB baseline is zero contribute a 0 % reduction
    (nothing to reduce at that scale) instead of crashing.
    """
    apps = sorted({app for app, _ in matrix})
    rows = []
    for app in apps:
        cases = [c for (a, _), c in matrix.items() if a == app]
        pen = min(
            _reduction_percent(c.penalty_lb, c.penalty_nolb) for c in cases
        )
        en = min(
            _reduction_percent(c.energy_overhead_lb, c.energy_overhead_nolb)
            for c in cases
        )
        rows.append(
            HeadlineRow(
                app_name=app, min_penalty_reduction=pen, min_energy_reduction=en
            )
        )
    return rows

"""The LB decision audit trail: *why* the balancer moved what it moved.

One structured record per LB step, capturing everything Algorithm 1 saw
and decided: per-core loads, the estimated background load ``O_p`` of
Eq. (2) next to the **true** injected interference (so the estimation
error is measurable), ``T_avg`` and the resolved ε threshold of Eq. (1)/
(3), every candidate migration considered with an accept/reject reason,
and the simulated overhead the step charged. Records contain only
simulated quantities — no host wall-clock — so two runs of the same
scenario produce byte-identical trails regardless of worker count or
machine (the property the sweep engine's determinism tests pin).

The trail is populated from two sides:

* the **balancer** side (via the base-class hook in
  :meth:`repro.core.balancer.LoadBalancer.balance`) opens a step with the
  view, thresholds, candidates and migrations;
* the **runtime** side commits the step with execution context: simulated
  time, iteration, per-core true background load, and the charged
  migration/decision overhead.

A step left uncommitted (balancer driven outside a runtime, e.g. in unit
tests) is still a complete record — the runtime fields just stay null.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.util import get_logger

__all__ = [
    "AUDIT_SCHEMA",
    "ACCEPTED",
    "NOTED",
    "REJECTED",
    "REASON_ACCEPTED",
    "REASON_RECEIVER_WOULD_EXCEED",
    "REASON_NO_UNDERLOADED_TARGET",
    "REASON_ZERO_CPU_TASK",
    "REASON_GREEDY_LEAST_LOADED",
    "REASON_ALREADY_LEAST_LOADED",
    "REASON_REDIRECT_INTRA_NODE",
    "REASON_REDIRECT_KEPT_REMOTE",
    "REASON_GAIN_BELOW_COST",
    "AuditTrail",
    "write_audit_jsonl",
    "write_json_artifact",
    "read_audit_jsonl",
    "audit_summary",
]

#: Version stamp carried by every audit record and summary.
AUDIT_SCHEMA = 1

_log = get_logger(__name__)

# candidate outcomes
ACCEPTED = "accepted"
REJECTED = "rejected"
NOTED = "noted"  # advisory events (e.g. hierarchical redirects)

# candidate reasons
REASON_ACCEPTED = "accepted"
REASON_RECEIVER_WOULD_EXCEED = "receiver-would-exceed-eq3"
REASON_NO_UNDERLOADED_TARGET = "no-underloaded-target"
REASON_ZERO_CPU_TASK = "zero-cpu-task"
REASON_GREEDY_LEAST_LOADED = "greedy-least-loaded"
REASON_ALREADY_LEAST_LOADED = "already-least-loaded"
REASON_REDIRECT_INTRA_NODE = "redirect-intra-node"
REASON_REDIRECT_KEPT_REMOTE = "redirect-kept-remote"
REASON_GAIN_BELOW_COST = "gain-below-migration-cost"

ChareKey = Tuple[str, int]


def _chare_list(chare: Optional[ChareKey]) -> Optional[List[Any]]:
    return None if chare is None else [chare[0], int(chare[1])]


class AuditTrail:
    """Ordered LB step records for one run.

    Acts as the balancer-side sink (:meth:`on_step`) and the runtime-side
    committer (:meth:`commit_step`). Records are plain dicts so the trail
    serialises to JSONL without an intermediate schema layer.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # balancer side
    # ------------------------------------------------------------------
    def on_step(
        self,
        *,
        strategy: str,
        view: "LBView",
        migrations: Sequence["Migration"],
        candidates: Sequence[Dict[str, Any]],
        t_avg: float,
        epsilon_s: Optional[float],
    ) -> Dict[str, Any]:
        """Open a step record from the balancer's decision (no runtime
        context yet); returns the (mutable) record."""
        bytes_moved = 0.0
        size = {t.chare: t.state_bytes for c in view.cores for t in c.tasks}
        for m in migrations:
            bytes_moved += size.get(m.chare, 0.0)
        record: Dict[str, Any] = {
            "schema": AUDIT_SCHEMA,
            "step": len(self.records),
            "strategy": strategy,
            "time": None,
            "iteration": None,
            "window_s": view.window,
            "t_avg": t_avg,
            "epsilon_s": epsilon_s,
            "cores": [
                {
                    "core": c.core_id,
                    "tasks": len(c.tasks),
                    "task_time": c.task_time,
                    "bg_est": c.bg_load,
                    "bg_true": None,
                    "load": c.task_time + c.bg_load,
                }
                for c in view.cores
            ],
            "candidates": list(candidates),
            "migrations": [
                {
                    "chare": _chare_list(m.chare),
                    "src": m.src,
                    "dst": m.dst,
                    "cpu_time": next(
                        (
                            t.cpu_time
                            for c in view.cores
                            for t in c.tasks
                            if t.chare == m.chare
                        ),
                        0.0,
                    ),
                    "state_bytes": size.get(m.chare, 0.0),
                }
                for m in migrations
            ],
            "num_migrations": len(migrations),
            "bytes_moved": bytes_moved,
            "migration_cost_s": None,
            "decision_overhead_s": None,
            "overhead_s": None,
        }
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # runtime side
    # ------------------------------------------------------------------
    def commit_step(
        self,
        *,
        time: float,
        iteration: int,
        bg_true: Mapping[int, float],
        migration_cost_s: float,
        decision_overhead_s: float,
    ) -> Dict[str, Any]:
        """Fill the most recent step record with runtime context."""
        if not self.records:
            raise RuntimeError("commit_step without a pending audit step")
        record = self.records[-1]
        record["time"] = time
        record["iteration"] = iteration
        for core in record["cores"]:
            core["bg_true"] = bg_true.get(core["core"])
        record["migration_cost_s"] = migration_cost_s
        record["decision_overhead_s"] = decision_overhead_s
        record["overhead_s"] = migration_cost_s + decision_overhead_s
        return record


# ---------------------------------------------------------------------------
# JSONL IO
# ---------------------------------------------------------------------------


def write_audit_jsonl(records: Iterable[Mapping[str, Any]], path: Union[str, "Path"]) -> int:
    """Write one record per line (sorted keys — byte-deterministic).

    The file is written to a temporary sibling and renamed into place,
    so a killed sweep can never leave a half-written trail at the final
    path — readers either see the complete file or none at all.
    Returns the number of records written.
    """
    path = os.fspath(path)
    n = 0
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".", suffix=".jsonl.tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                n += 1
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return n


def write_json_artifact(payload: Mapping[str, Any], path: Union[str, "Path"]) -> str:
    """Atomically write one JSON artifact (sorted keys, trailing newline).

    Same tmp-sibling + rename discipline as :func:`write_audit_jsonl`:
    readers either see the complete artifact or none at all. Used for
    single-document observability payloads (ledger summaries, explain
    output) that ride next to audit trails. Returns the final path.
    """
    path = os.fspath(path)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".", suffix=".json.tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_audit_jsonl(path: Union[str, "Path"]) -> List[Dict[str, Any]]:
    """Load an audit JSONL file back into a list of record dicts.

    A malformed **final** line after at least one valid record (the
    classic truncation signature of a killed writer, e.g. a trail
    produced by an older non-atomic writer or a copy cut mid-transfer)
    is skipped with a warning so inspection of the surviving records
    still works; a malformed line anywhere else — including a file with
    no valid records at all — means the file is not an audit trail and
    raises ``ValueError``.
    """
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        lines = fh.readlines()
    last_content = 0
    for line_no, line in enumerate(lines, start=1):
        if line.strip():
            last_content = line_no
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if line_no == last_content and records:
                _log.warning(
                    "%s:%d: skipping malformed trailing line (%s) — "
                    "likely a truncated write", path, line_no, exc,
                )
                break
            raise ValueError(f"{path}:{line_no}: not valid JSON: {exc}") from exc
        if not isinstance(record, dict):
            if line_no == last_content and records:
                _log.warning(
                    "%s:%d: skipping non-object trailing record — "
                    "likely a truncated write", path, line_no,
                )
                break
            raise ValueError(f"{path}:{line_no}: audit record is not an object")
        records.append(record)
    return records


# ---------------------------------------------------------------------------
# summarisation
# ---------------------------------------------------------------------------


def audit_summary(records: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Reduce audit records to deterministic scalar statistics.

    This is what gets folded into sweep result payloads (and cached), and
    what ``repro inspect`` prints: Eq. (2) estimation error per core,
    accept/reject counts by reason, migration totals, and the simulated
    LB overhead.
    """
    reasons: Dict[str, int] = {}
    per_core_err: Dict[int, List[float]] = {}
    migrations = 0
    bytes_moved = 0.0
    overhead = 0.0
    for record in records:
        migrations += int(record.get("num_migrations", 0))
        bytes_moved += float(record.get("bytes_moved", 0.0))
        if record.get("overhead_s") is not None:
            overhead += float(record["overhead_s"])
        for cand in record.get("candidates", ()):
            key = f"{cand.get('outcome', '?')}:{cand.get('reason', '?')}"
            reasons[key] = reasons.get(key, 0) + 1
        for core in record.get("cores", ()):
            if core.get("bg_true") is None:
                continue
            err = float(core["bg_est"]) - float(core["bg_true"])
            per_core_err.setdefault(int(core["core"]), []).append(err)

    per_core: Dict[str, Dict[str, float]] = {}
    all_abs: List[float] = []
    for cid in sorted(per_core_err):
        errs = per_core_err[cid]
        abs_errs = [abs(e) for e in errs]
        all_abs.extend(abs_errs)
        per_core[str(cid)] = {
            "steps": len(errs),
            "mean_err": sum(errs) / len(errs),
            "mean_abs_err": sum(abs_errs) / len(abs_errs),
            "max_abs_err": max(abs_errs),
        }
    return {
        "schema": AUDIT_SCHEMA,
        "lb_steps": len(records),
        "migrations": migrations,
        "bytes_moved": bytes_moved,
        "overhead_s": overhead,
        "reasons": dict(sorted(reasons.items())),
        "estimation_error": {
            "mean_abs": (sum(all_abs) / len(all_abs)) if all_abs else 0.0,
            "max_abs": max(all_abs) if all_abs else 0.0,
            "per_core": per_core,
        },
    }

"""Telemetry: metrics registry + LB decision audit trail.

The simulator computes every quantity the paper's argument rests on — the
Eq. (2) background-load estimate, the ε band around ``T_avg``, Algorithm
1's per-step migration decisions — but (before this subsystem) surfaced
none of it. :class:`Telemetry` bundles the two sinks that fix that:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters, gauges
  and fixed-bucket histograms, allocation-free when disabled;
* :class:`~repro.telemetry.audit.AuditTrail` — one structured record per
  LB step: per-core loads, estimated vs. true O_p, thresholds, and every
  candidate migration with its accept/reject reason.

A :class:`Telemetry` object is handed to
:class:`~repro.runtime.runtime.Runtime` (``telemetry=...``); the runtime
attaches it to the balancer (base-class hook), commits audit steps with
execution context, and feeds run metrics. ``telemetry=None`` (the
default) keeps every hot path on the zero-cost no-op branch and produces
bit-identical results — telemetry is strictly observational.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.telemetry.audit import (
    ACCEPTED,
    AUDIT_SCHEMA,
    NOTED,
    REJECTED,
    AuditTrail,
    audit_summary,
    read_audit_jsonl,
    write_audit_jsonl,
    write_json_artifact,
)
from repro.telemetry.registry import (
    DEFAULT_DURATION_BUCKETS_S,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "DEFAULT_DURATION_BUCKETS_S",
    "AuditTrail",
    "audit_summary",
    "read_audit_jsonl",
    "write_audit_jsonl",
    "write_json_artifact",
    "AUDIT_SCHEMA",
    "ACCEPTED",
    "REJECTED",
    "NOTED",
]


class Telemetry:
    """One run's telemetry sinks: metrics + audit trail.

    Parameters
    ----------
    metrics:
        Registry to feed (default: a fresh enabled one).
    audit:
        Audit trail to feed (default: a fresh one).

    Notes
    -----
    The object doubles as the balancer-side audit sink: the base
    balancer's :meth:`~repro.core.balancer.LoadBalancer.balance` calls
    :meth:`on_step` with the decision; the *host wall-clock* of the
    decision goes into the metrics registry only — audit records carry
    exclusively simulated (deterministic) quantities.
    """

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        audit: Optional[AuditTrail] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.audit = audit if audit is not None else AuditTrail()

    # ------------------------------------------------------------------
    # balancer sink protocol
    # ------------------------------------------------------------------
    def on_step(
        self,
        *,
        strategy: str,
        view: Any,
        migrations: Sequence[Any],
        candidates: Sequence[Dict[str, Any]],
        t_avg: float,
        epsilon_s: Optional[float],
        decide_wall_s: float,
    ) -> None:
        self.metrics.counter("lb_decide_wall_s").inc(decide_wall_s)
        self.audit.on_step(
            strategy=strategy,
            view=view,
            migrations=migrations,
            candidates=candidates,
            t_avg=t_avg,
            epsilon_s=epsilon_s,
        )

    # ------------------------------------------------------------------
    # runtime side
    # ------------------------------------------------------------------
    def commit_step(
        self,
        *,
        time: float,
        iteration: int,
        bg_true: Dict[int, float],
        migration_cost_s: float,
        decision_overhead_s: float,
    ) -> None:
        """Fill the pending audit step with runtime execution context."""
        self.audit.commit_step(
            time=time,
            iteration=iteration,
            bg_true=bg_true,
            migration_cost_s=migration_cost_s,
            decision_overhead_s=decision_overhead_s,
        )

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Deterministic audit summary (see :func:`audit_summary`)."""
        return audit_summary(self.audit.records)

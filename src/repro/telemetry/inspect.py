"""Offline analysis of audit trails — the ``repro inspect`` backend.

Loads one audit JSONL file or a directory of them (one per sweep point,
as ``repro sweep --audit DIR`` writes), aggregates the decision records,
and renders the three questions the paper's methodology keeps asking:

* how accurate was the Eq. (2) background-load estimate against the
  ground-truth injected interference (mean/max per core)?
* what did the balancer *do* — accept/reject counts by reason, and the
  biggest migrations it committed?
* what did balancing *cost* — simulated decision + transfer overhead?

All numbers derive from simulated quantities only, so inspection output
is deterministic for a given scenario regardless of how the sweep that
produced it was executed (serial, parallel, or warm-cache).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.telemetry.audit import audit_summary, read_audit_jsonl

__all__ = ["load_audit_dir", "inspect_audit", "format_inspect_text"]


def load_audit_dir(path: Union[str, Path]) -> Dict[str, List[Dict[str, Any]]]:
    """``source name -> records`` for a JSONL file or a directory of them.

    A directory is scanned (sorted) for ``*.jsonl`` files; a single file
    loads under its stem. Raises ``FileNotFoundError``/``ValueError`` on
    missing or empty input so the CLI can report a clean error.
    """
    p = Path(path)
    if p.is_file():
        return {p.stem: read_audit_jsonl(p)}
    if not p.is_dir():
        raise FileNotFoundError(f"no audit file or directory at {p}")
    files = sorted(p.glob("*.jsonl"))
    if not files:
        raise ValueError(f"no *.jsonl audit files under {p}")
    return {f.stem: read_audit_jsonl(f) for f in files}


def _top_migrations(
    records: Sequence[Mapping[str, Any]], limit: int
) -> List[Dict[str, Any]]:
    """The ``limit`` biggest committed migrations by task CPU time."""
    moves: List[Dict[str, Any]] = []
    for record in records:
        for m in record.get("migrations", ()):
            moves.append(
                {
                    "step": record.get("step"),
                    "iteration": record.get("iteration"),
                    "chare": m.get("chare"),
                    "src": m.get("src"),
                    "dst": m.get("dst"),
                    "cpu_time": float(m.get("cpu_time", 0.0)),
                    "state_bytes": float(m.get("state_bytes", 0.0)),
                }
            )
    moves.sort(
        key=lambda m: (-m["cpu_time"], m["step"] or 0, tuple(m["chare"] or ()))
    )
    return moves[:limit]


def inspect_audit(
    path: Union[str, Path], *, top: int = 10
) -> Dict[str, Any]:
    """Aggregate an audit file/directory into one report dict.

    The report carries per-source summaries plus a combined view over
    every record; ``top`` bounds the "top migrations" list.
    """
    sources = load_audit_dir(path)
    all_records: List[Dict[str, Any]] = []
    per_source: Dict[str, Any] = {}
    for name, records in sources.items():
        per_source[name] = audit_summary(records)
        all_records.extend(records)
    combined = audit_summary(all_records)
    combined["top_migrations"] = _top_migrations(all_records, top)
    strategies = sorted(
        {str(r.get("strategy")) for r in all_records if r.get("strategy")}
    )
    return {
        "sources": per_source,
        "combined": combined,
        "strategies": strategies,
    }


def _fmt_chare(chare: Any) -> str:
    if isinstance(chare, (list, tuple)) and len(chare) == 2:
        return f"{chare[0]}[{chare[1]}]"
    return str(chare)


def format_inspect_text(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of an :func:`inspect_audit` report."""
    from repro.experiments.tables import format_table

    combined = report["combined"]
    est = combined["estimation_error"]
    lines: List[str] = []
    lines.append(
        f"audit: {combined['lb_steps']} LB steps across "
        f"{len(report['sources'])} source(s); strategies: "
        f"{', '.join(report['strategies']) or '-'}"
    )
    lines.append(
        f"migrations: {combined['migrations']} "
        f"({combined['bytes_moved']:.0f} bytes moved); "
        f"LB overhead: {combined['overhead_s']:.6f}s simulated"
    )
    lines.append("")

    core_rows: List[Tuple[Any, ...]] = [
        (cid, stats["steps"], stats["mean_err"], stats["mean_abs_err"], stats["max_abs_err"])
        for cid, stats in est["per_core"].items()
    ]
    if core_rows:
        lines.append(
            format_table(
                ["core", "steps", "mean err (s)", "mean |err| (s)", "max |err| (s)"],
                core_rows,
                title=(
                    "Eq. 2 estimation error (O_p estimate - true injected load); "
                    f"overall mean |err| {est['mean_abs']:.6f}s, "
                    f"max |err| {est['max_abs']:.6f}s"
                ),
                float_fmt="{:.6f}",
            )
        )
        lines.append("")

    reason_rows = [
        tuple(key.split(":", 1)) + (count,)
        for key, count in combined["reasons"].items()
    ]
    if reason_rows:
        lines.append(
            format_table(
                ["outcome", "reason", "count"],
                reason_rows,
                title="Candidate decisions by reason",
            )
        )
        lines.append("")

    top = combined.get("top_migrations", [])
    if top:
        lines.append(
            format_table(
                ["step", "iteration", "chare", "src", "dst", "cpu (s)", "bytes"],
                [
                    (
                        m["step"],
                        m["iteration"],
                        _fmt_chare(m["chare"]),
                        m["src"],
                        m["dst"],
                        m["cpu_time"],
                        m["state_bytes"],
                    )
                    for m in top
                ],
                title=f"Top {len(top)} migrations by task CPU time",
                float_fmt="{:.6f}",
            )
        )
    return "\n".join(lines).rstrip()

"""Allocation-free metrics: counters, gauges, fixed-bucket histograms.

The registry is the quantitative half of the telemetry layer: the runtime
and sweep engine increment counters (migrations, bytes moved, LB
overhead), set gauges (per-core utilisation) and observe histograms
(iteration durations) unconditionally at every call site. Whether any of
that costs anything is decided once, at registry construction:

* **enabled** — instruments are tiny ``__slots__`` objects mutating a
  float in place; no dicts, lists, or boxing per event.
* **disabled** — :meth:`MetricsRegistry.counter` & co. hand back shared
  module-level null singletons whose methods are empty. The per-event
  cost is one method call and the per-event allocation count is zero, so
  instrumentation can stay unconditional in hot paths (the same contract
  :class:`~repro.runtime.tracing.TraceLog` offers for events).

Snapshots are plain sorted dicts, so they serialise deterministically and
can be folded into sweep payloads or dumped as JSON.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_DURATION_BUCKETS_S",
    "SUMMARY_QUANTILES",
    "sample_quantile",
    "summarize_samples",
]

#: The quantiles every summary in the repo reports (``repro inspect``
#: percentile tables, ``repro bench`` metric summaries, histogram
#: snapshots) — one shared definition so the numbers are comparable.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


def sample_quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of raw samples, linearly interpolated.

    This is the exact (type-7 / numpy-default) quantile over the sorted
    samples, shared by every summary producer in the repo. Returns 0.0
    for an empty sequence so callers can summarise unconditionally.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summarize_samples(samples: Sequence[float]) -> Dict[str, float]:
    """Shared scalar summary of raw samples: count/mean/p50/p90/p99.

    The single implementation behind ``repro inspect`` percentile rows
    and ``repro bench`` reports (satisfying one definition of "p99"
    across the repo).
    """
    n = len(samples)
    out: Dict[str, float] = {
        "count": float(n),
        "mean": (sum(samples) / n) if n else 0.0,
    }
    for q in SUMMARY_QUANTILES:
        out[f"p{int(q * 100)}"] = sample_quantile(samples, q)
    return out

#: Default histogram bucket upper bounds for durations in seconds
#: (geometric, spanning sub-millisecond LB decisions to minute-long
#: iterations; the last bucket is the +Inf overflow).
DEFAULT_DURATION_BUCKETS_S: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class Counter:
    """Monotonically increasing value (floats allowed: seconds, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """Last-write-wins value (e.g. a utilisation fraction)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (bounds chosen at creation, never resized).

    ``bounds`` are upper edges of the finite buckets; one overflow bucket
    catches everything beyond the last edge. Observation is a bisect plus
    two in-place adds — no allocation.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: Union[int, float]) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation inside the bucket holding the target rank
        (the Prometheus ``histogram_quantile`` estimator); the first
        bucket interpolates from 0 and the overflow bucket reports its
        lower edge, so estimates never exceed what the bounds can
        resolve. Exact values would need raw samples — see
        :func:`sample_quantile` for that path.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= rank:
                if i >= len(self.bounds):  # overflow: unbounded above
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                return lo + (hi - lo) * max(rank - seen, 0.0) / n
            seen += n
        return self.bounds[-1]  # pragma: no cover - rank <= count always

    def percentiles(self) -> Dict[str, float]:
        """The repo-standard p50/p90/p99 estimates for this histogram."""
        return {
            f"p{int(q * 100)}": self.quantile(q) for q in SUMMARY_QUANTILES
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: Union[int, float]) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: Union[int, float]) -> None:
        pass


#: Shared no-op instruments handed out by every disabled registry.
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments for one run (or one sweep).

    Parameters
    ----------
    enabled:
        When False, every factory returns a shared null instrument and
        :meth:`snapshot` is always empty — the no-op path allocates
        nothing per event.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instrument factories (memoised per name)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_DURATION_BUCKETS_S
            )
        return inst

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All instrument values as one deterministic (sorted) dict."""
        out: Dict[str, Any] = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                    "percentiles": h.percentiles(),
                }
                for n, h in sorted(self._histograms.items())
            },
        }
        return out


#: A process-wide disabled registry for call sites that want to keep the
#: instrumentation unconditional without holding their own registry.
NULL_REGISTRY = MetricsRegistry(enabled=False)

"""Phase profiler: where the reproduction's *own* wall-clock goes.

The paper's argument is about where time goes on interfered cores; this
module answers the same question about the simulator itself. Hot paths
(the event loop, balancer decisions, cache IO, message costing) carry
unconditional scoped timers, and — exactly like
:class:`~repro.telemetry.registry.MetricsRegistry` — whether they cost
anything is decided once, at profiler construction:

* **enabled** — :meth:`PhaseProfiler.phase` hands back a memoised
  context-manager that reads ``perf_counter`` on enter/exit and folds
  the span into per-phase count/total/min/max (optionally keeping the
  raw intervals for Perfetto export);
* **disabled** — every factory returns shared module-level null
  singletons whose methods are empty, so instrumentation can stay
  unconditional in the hottest loops at the cost of one no-op call.

Call sites do not thread a profiler through constructors (the network
model is a frozen dataclass; the engine predates this subsystem).
Instead one process-wide profiler is *installed*::

    with profiled() as prof:
        run_scenario(scenario)
    print(prof.snapshot())

and instrumented code reads it via :func:`active`. The default active
profiler is :data:`NULL_PROFILER`, so nothing is measured unless a
caller opts in — bit-identical results, no allocation, no clock reads.

Host wall-clock is inherently nondeterministic, so profiles must never
be folded into cached sweep summaries; they ride next to results the
way Chrome traces do (see ``run_point_audited``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "PhaseProfiler",
    "NULL_PROFILER",
    "PROFILE_SCHEMA",
    "active",
    "install",
    "profiled",
    "phase_trace_events",
]

#: Version stamp carried by every exported profile.
PROFILE_SCHEMA = 1

_US = 1e6  # seconds -> microseconds (trace-event format unit)


class _Phase:
    """One named scope: a reusable, re-entrant timing context manager.

    Handed out memoised per name by :meth:`PhaseProfiler.phase`, so a hot
    loop pays one dict lookup per ``with`` — no allocation. A start-time
    stack (rather than a scalar) keeps nested/recursive entries of the
    same phase correct.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "_starts", "_profiler")

    def __init__(self, name: str, profiler: "PhaseProfiler") -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self._starts: List[float] = []
        self._profiler = profiler

    def __enter__(self) -> "_Phase":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc: Any) -> None:
        end = time.perf_counter()
        start = self._starts.pop()
        span = end - start
        self.count += 1
        self.total_s += span
        if span < self.min_s:
            self.min_s = span
        if span > self.max_s:
            self.max_s = span
        intervals = self._profiler._intervals
        if intervals is not None:
            intervals.append((self.name, start, end))


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Scoped wall-clock timers plus clock-free event tallies.

    Parameters
    ----------
    enabled:
        When False every factory returns a shared null object and
        :meth:`snapshot` is always empty.
    record_intervals:
        Keep every (name, start, end) span for Perfetto export; off by
        default because long runs would accumulate one tuple per scope
        entry.
    """

    def __init__(self, enabled: bool = True, *, record_intervals: bool = False) -> None:
        self.enabled = bool(enabled)
        self._phases: Dict[str, _Phase] = {}
        self._tallies: Dict[str, List[float]] = {}  # name -> [count, total]
        self._intervals: Optional[List[Tuple[str, float, float]]] = (
            [] if (enabled and record_intervals) else None
        )
        self._epoch = time.perf_counter() if enabled else 0.0

    # ------------------------------------------------------------------
    # instrumentation API (hot paths)
    # ------------------------------------------------------------------
    def phase(self, name: str) -> Union[_Phase, _NullPhase]:
        """The scoped timer for ``name`` (memoised; null when disabled)."""
        if not self.enabled:
            return _NULL_PHASE
        ph = self._phases.get(name)
        if ph is None:
            ph = self._phases[name] = _Phase(name, self)
        return ph

    def tally(self, name: str, amount: float = 1.0) -> None:
        """Count an event without touching the clock.

        For call sites too cheap to time (e.g. per-message network
        costing, where a pair of ``perf_counter`` reads would dwarf the
        arithmetic being measured): records call count and a summed
        quantity instead of a duration.
        """
        if not self.enabled:
            return
        t = self._tallies.get(name)
        if t is None:
            t = self._tallies[name] = [0.0, 0.0]
        t[0] += 1.0
        t[1] += amount
    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Aggregated per-phase statistics as one deterministic dict."""
        return {
            "phases": {
                name: {
                    "count": ph.count,
                    "total_s": ph.total_s,
                    "mean_s": ph.total_s / ph.count if ph.count else 0.0,
                    "min_s": ph.min_s if ph.count else 0.0,
                    "max_s": ph.max_s,
                }
                for name, ph in sorted(self._phases.items())
                if ph.count
            },
            "tallies": {
                name: {"count": t[0], "total": t[1]}
                for name, t in sorted(self._tallies.items())
            },
        }

    def export(self) -> Dict[str, Any]:
        """Schema-versioned, picklable/JSON-able profile.

        Interval start/end times are rebased to the profiler's epoch so
        exported traces start near zero regardless of process uptime.
        """
        out = dict(self.snapshot())
        out["schema"] = PROFILE_SCHEMA
        out["intervals"] = [
            [name, start - self._epoch, end - self._epoch]
            for name, start, end in (self._intervals or ())
        ]
        return out


#: Process-wide disabled profiler; the default target of :func:`active`.
NULL_PROFILER = PhaseProfiler(enabled=False)

_active: PhaseProfiler = NULL_PROFILER


def active() -> PhaseProfiler:
    """The currently installed profiler (``NULL_PROFILER`` by default)."""
    return _active


def install(profiler: Optional[PhaseProfiler]) -> PhaseProfiler:
    """Make ``profiler`` the process-wide active profiler (None resets)."""
    global _active
    _active = profiler if profiler is not None else NULL_PROFILER
    return _active


@contextmanager
def profiled(
    profiler: Optional[PhaseProfiler] = None, *, record_intervals: bool = False
) -> Iterator[PhaseProfiler]:
    """Install a profiler for the dynamic extent of the ``with`` block.

    Restores the previously active profiler on exit, so profiled regions
    nest safely (the inner region simply shadows the outer one).
    """
    prof = profiler if profiler is not None else PhaseProfiler(
        record_intervals=record_intervals
    )
    previous = _active
    install(prof)
    try:
        yield prof
    finally:
        install(previous)


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


def phase_trace_events(
    profile: Union[PhaseProfiler, Dict[str, Any]],
    *,
    pid: int = 99,
) -> List[Dict[str, Any]]:
    """Trace-event dicts (complete "X" spans) from a recorded profile.

    Accepts either a live :class:`PhaseProfiler` (with
    ``record_intervals=True``) or its :meth:`~PhaseProfiler.export` dict,
    and renders one span per recorded interval on a dedicated "phase
    profiler" process lane so the host-time breakdown sits alongside the
    simulated-time telemetry tracks of
    :func:`repro.projections.export.write_chrome_trace`.
    """
    if isinstance(profile, PhaseProfiler):
        profile = profile.export()
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "phase profiler (host wall-clock)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "phases"},
        },
    ]
    for name, start, end in profile.get("intervals", ()):
        events.append(
            {
                "name": name,
                "cat": "profile",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": float(start) * _US,
                "dur": (float(end) - float(start)) * _US,
                "args": {},
            }
        )
    return events

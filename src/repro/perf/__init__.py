"""Performance observability: phase profiler, bench harness, regression gate.

Three cooperating pieces (see each module's docstring):

* :mod:`repro.perf.profiler` — scoped wall-clock timers on the hot paths
  (event loop, balancer decisions, cache IO), zero-overhead when
  disabled, exportable as a Perfetto track next to the telemetry traces;
* :mod:`repro.perf.bench` — the ``repro bench`` micro + macro suite,
  producing schema-versioned ``BENCH_<git-sha>.json`` trajectory
  entries with an environment fingerprint;
* :mod:`repro.perf.compare` — the noise-aware (IQR-scaled) regression
  gate behind ``repro bench --compare``, wired into CI.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    Benchmark,
    SUITES,
    bench_filename,
    default_benchmarks,
    environment_fingerprint,
    format_bench_text,
    load_bench,
    run_bench,
    save_bench,
)
from repro.perf.compare import (
    DEFAULT_IQR_FACTOR,
    DEFAULT_REL_THRESHOLD,
    ComparisonReport,
    MetricDelta,
    compare_bench,
    format_compare_text,
)
from repro.perf.profiler import (
    NULL_PROFILER,
    PROFILE_SCHEMA,
    PhaseProfiler,
    active,
    install,
    phase_trace_events,
    profiled,
)

__all__ = [
    "PhaseProfiler",
    "NULL_PROFILER",
    "PROFILE_SCHEMA",
    "active",
    "install",
    "profiled",
    "phase_trace_events",
    "BENCH_SCHEMA",
    "Benchmark",
    "SUITES",
    "default_benchmarks",
    "environment_fingerprint",
    "run_bench",
    "bench_filename",
    "save_bench",
    "load_bench",
    "format_bench_text",
    "DEFAULT_REL_THRESHOLD",
    "DEFAULT_IQR_FACTOR",
    "MetricDelta",
    "ComparisonReport",
    "compare_bench",
    "format_compare_text",
]

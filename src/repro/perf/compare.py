"""The regression gate: ``repro bench --compare <baseline.json>``.

Comparing two bench results is a per-metric ratio test with a
noise-aware tolerance. For each metric present in both results the gate
computes a **slowdown factor** normalised so that >1 always means
"worse", regardless of metric direction::

    factor = baseline_median / current_median   (direction = higher)
    factor = current_median / baseline_median   (direction = lower)

and a tolerance that is the larger of a fixed relative floor and an
IQR-scaled noise band::

    tol = max(rel_threshold, iqr_factor * max(IQR_b / med_b, IQR_c / med_c))

A metric **regresses** when ``factor > 1 + tol`` and **improves** when
``factor < 1 / (1 + tol)``; anything in between is noise-level ``ok``.
Metrics present in only one result are reported (``added``/``removed``)
but never fail the gate, so growing the suite doesn't break CI for
unrelated PRs. The gate also refuses to compare results whose
environment fingerprints differ on machine-shaped fields unless told to
(``allow_env_mismatch``) — cross-machine medians are not comparable at
these thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "DEFAULT_REL_THRESHOLD",
    "DEFAULT_IQR_FACTOR",
    "MetricDelta",
    "ComparisonReport",
    "compare_bench",
    "format_compare_text",
]

#: Relative noise floor: medians within 25% never regress. Large enough
#: for timer jitter on loaded CI machines, far below the 2x slowdowns
#: the gate exists to catch.
DEFAULT_REL_THRESHOLD = 0.25

#: How many relative IQRs of spread widen the tolerance band.
DEFAULT_IQR_FACTOR = 4.0

#: Environment fields that make medians incomparable when they differ.
_ENV_COMPARABILITY_FIELDS = ("implementation", "platform", "machine")

# verdicts
OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"
ADDED = "added"
REMOVED = "removed"


@dataclass(frozen=True)
class MetricDelta:
    """Outcome of one metric's baseline-vs-current comparison."""

    name: str
    verdict: str
    direction: str
    unit: str
    baseline_median: float
    current_median: float
    #: normalised slowdown (>1 = worse); 1.0 for added/removed metrics
    factor: float
    #: tolerance band the factor was judged against
    tolerance: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "direction": self.direction,
            "unit": self.unit,
            "baseline_median": self.baseline_median,
            "current_median": self.current_median,
            "factor": self.factor,
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True)
class ComparisonReport:
    """Every metric's delta plus the gate's overall verdict."""

    deltas: Tuple[MetricDelta, ...]
    rel_threshold: float
    iqr_factor: float
    env_mismatch: Tuple[str, ...] = ()
    notes: Tuple[str, ...] = ()

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == REGRESSION]

    @property
    def ok(self) -> bool:
        """True when no metric regressed (the gate's pass condition)."""
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "rel_threshold": self.rel_threshold,
            "iqr_factor": self.iqr_factor,
            "env_mismatch": list(self.env_mismatch),
            "notes": list(self.notes),
            "regressions": [d.name for d in self.regressions],
            "metrics": [d.to_dict() for d in self.deltas],
        }


def _rel_iqr(metric: Mapping[str, Any]) -> float:
    median = float(metric.get("median", 0.0))
    if median <= 0.0:
        return 0.0
    return float(metric.get("iqr", 0.0)) / median


def compare_bench(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    iqr_factor: float = DEFAULT_IQR_FACTOR,
    allow_env_mismatch: bool = False,
) -> ComparisonReport:
    """Judge ``current`` against ``baseline``; see the module docstring.

    Raises
    ------
    ValueError
        On a machine-shaped environment mismatch (unless
        ``allow_env_mismatch``) or nonsensical thresholds.
    """
    if rel_threshold < 0.0:
        raise ValueError(f"rel_threshold must be >= 0, got {rel_threshold}")
    if iqr_factor < 0.0:
        raise ValueError(f"iqr_factor must be >= 0, got {iqr_factor}")

    env_b = baseline.get("env", {})
    env_c = current.get("env", {})
    mismatched = tuple(
        f
        for f in _ENV_COMPARABILITY_FIELDS
        if env_b.get(f) is not None
        and env_c.get(f) is not None
        and env_b.get(f) != env_c.get(f)
    )
    if mismatched and not allow_env_mismatch:
        detail = ", ".join(
            f"{f}: {env_b.get(f)!r} vs {env_c.get(f)!r}" for f in mismatched
        )
        raise ValueError(
            f"bench environments are not comparable ({detail}); "
            "re-baseline on this machine or pass --allow-env-mismatch"
        )

    metrics_b = baseline.get("metrics", {})
    metrics_c = current.get("metrics", {})
    deltas: List[MetricDelta] = []
    notes: List[str] = []

    for name in sorted(set(metrics_b) | set(metrics_c)):
        mb = metrics_b.get(name)
        mc = metrics_c.get(name)
        if mb is None or mc is None:
            src = mc if mb is None else mb
            deltas.append(
                MetricDelta(
                    name=name,
                    verdict=ADDED if mb is None else REMOVED,
                    direction=str(src.get("direction", "lower")),
                    unit=str(src.get("unit", "")),
                    baseline_median=float(mb["median"]) if mb else 0.0,
                    current_median=float(mc["median"]) if mc else 0.0,
                    factor=1.0,
                    tolerance=0.0,
                )
            )
            notes.append(
                f"{name}: only in {'current' if mb is None else 'baseline'} "
                "result (informational)"
            )
            continue

        direction = str(mb.get("direction", "lower"))
        med_b = float(mb["median"])
        med_c = float(mc["median"])
        if med_b <= 0.0 or med_c <= 0.0:
            notes.append(f"{name}: non-positive median, skipped")
            deltas.append(
                MetricDelta(
                    name=name,
                    verdict=OK,
                    direction=direction,
                    unit=str(mb.get("unit", "")),
                    baseline_median=med_b,
                    current_median=med_c,
                    factor=1.0,
                    tolerance=0.0,
                )
            )
            continue

        factor = med_b / med_c if direction == "higher" else med_c / med_b
        tol = max(
            rel_threshold, iqr_factor * max(_rel_iqr(mb), _rel_iqr(mc))
        )
        if factor > 1.0 + tol:
            verdict = REGRESSION
        elif factor < 1.0 / (1.0 + tol):
            verdict = IMPROVED
        else:
            verdict = OK
        deltas.append(
            MetricDelta(
                name=name,
                verdict=verdict,
                direction=direction,
                unit=str(mb.get("unit", "")),
                baseline_median=med_b,
                current_median=med_c,
                factor=factor,
                tolerance=tol,
            )
        )

    return ComparisonReport(
        deltas=tuple(deltas),
        rel_threshold=rel_threshold,
        iqr_factor=iqr_factor,
        env_mismatch=mismatched,
        notes=tuple(notes),
    )


def format_compare_text(report: ComparisonReport) -> str:
    """Human-readable verdict table for the terminal."""
    from repro.experiments.tables import format_table

    rows = [
        (
            d.name,
            d.baseline_median,
            d.current_median,
            f"{d.factor:.3f}x" if d.verdict not in (ADDED, REMOVED) else "-",
            f"{100.0 * d.tolerance:.0f}%",
            d.verdict.upper() if d.verdict == REGRESSION else d.verdict,
        )
        for d in report.deltas
    ]
    verdict = (
        "PASS — no regressions"
        if report.ok
        else f"FAIL — {len(report.regressions)} regression(s): "
        + ", ".join(d.name for d in report.regressions)
    )
    table = format_table(
        ["metric", "baseline", "current", "slowdown", "tol", "verdict"],
        rows,
        title=(
            f"bench comparison (floor {100.0 * report.rel_threshold:.0f}%, "
            f"IQR x{report.iqr_factor:g})"
        ),
        float_fmt="{:,.1f}",
    )
    lines = [table]
    if report.env_mismatch:
        lines.append(
            "warning: environment mismatch on "
            + ", ".join(report.env_mismatch)
            + " — deltas may reflect hardware, not code"
        )
    lines.append(verdict)
    return "\n".join(lines)

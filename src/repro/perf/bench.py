"""The ``repro bench`` harness: a reproducible performance baseline.

The ROADMAP's "as fast as the hardware allows" is unenforceable without
numbers, so this module defines the repo's curated benchmark suite:

* **micro** — throughput of the substrate primitives that bound every
  experiment: event-engine scheduling, processor-sharing dispatch,
  Algorithm 1 / greedy decision rate, LB-view construction, network
  message costing, and result-cache IO;
* **macro** — end-to-end wall time of one interfered scenario and of the
  CI smoke sweep (the same 4 points CI runs), so pipeline-level
  regressions that no micro metric isolates still show up.

Each metric runs ``warmup`` discarded iterations then ``repeats``
measured ones, and is summarised by the repo-standard quantile
implementation (:func:`repro.telemetry.registry.summarize_samples`) as
median + IQR — the noise scale the regression gate in
:mod:`repro.perf.compare` uses. Results serialise to a schema-versioned
``BENCH_<git-sha>.json`` carrying an environment fingerprint (python,
platform, CPU count, git SHA, code fingerprint) so trajectory entries
are only ever compared in context.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.telemetry.registry import sample_quantile, summarize_samples

__all__ = [
    "BENCH_SCHEMA",
    "Benchmark",
    "SUITES",
    "default_benchmarks",
    "environment_fingerprint",
    "run_bench",
    "bench_filename",
    "save_bench",
    "load_bench",
    "format_bench_text",
]

#: Version stamp of the BENCH_*.json layout; bump on breaking changes.
BENCH_SCHEMA = 1

SUITES = ("micro", "macro")

HIGHER = "higher"  # larger metric value is better (throughput)
LOWER = "lower"  # smaller metric value is better (latency / wall time)


@dataclass(frozen=True)
class Benchmark:
    """One named metric: a callable returning the value of one repeat.

    ``max_repeats``/``max_warmup`` cap the global settings for expensive
    (macro) benchmarks so ``--repeats 20`` doesn't turn the smoke sweep
    into minutes of wall time.
    """

    name: str
    suite: str
    unit: str
    direction: str
    fn: Callable[[], float]
    max_repeats: Optional[int] = None
    max_warmup: Optional[int] = None


# ---------------------------------------------------------------------------
# micro benchmarks
# ---------------------------------------------------------------------------


def _bench_engine_events() -> float:
    """Schedule-and-fire rate for a 20k-event self-rescheduling chain."""
    from repro.sim import SimulationEngine

    n = 20_000
    eng = SimulationEngine()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            eng.schedule_after(0.001, tick)

    eng.schedule_after(0.001, tick)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    assert count[0] == n
    return n / wall


def _bench_core_dispatch() -> float:
    """Processor-sharing dispatch/complete rate on one shared core."""
    from repro.sim import SharedCore, SimProcess, SimulationEngine

    n = 1_000
    eng = SimulationEngine()
    core = SharedCore(eng, 0)
    done = [0]

    def count(_p: Any) -> None:
        done[0] += 1

    for i in range(n):
        proc = SimProcess(f"p{i}", 0.004 + (i % 7) * 0.0005, on_complete=count)
        eng.schedule_at(i * 0.01, core.dispatch, proc)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    assert done[0] == n
    return n / wall


def _make_view(num_cores: int, chares_per_core: int, interfered: int = 2):
    from repro.core import CoreLoad, LBView, TaskRecord

    cores = []
    for cid in range(num_cores):
        tasks = tuple(
            TaskRecord(
                chare=(f"a{cid}", i),
                cpu_time=0.01 + 0.001 * ((cid * 7 + i) % 5),
                state_bytes=1024.0,
            )
            for i in range(chares_per_core)
        )
        bg = 0.08 if cid < interfered else 0.0
        cores.append(CoreLoad(core_id=cid, tasks=tasks, bg_load=bg))
    return LBView(cores=tuple(cores), window=1.0)


def _bench_refine_vm_decisions() -> float:
    """Algorithm 1 decision rate on the paper-scale view (32x8)."""
    from repro.core import RefineVMInterferenceLB

    view = _make_view(32, 8)
    lb = RefineVMInterferenceLB(0.05)
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        migrations = lb.decide(view)
    wall = time.perf_counter() - t0
    assert migrations
    return reps / wall


def _bench_greedy_decisions() -> float:
    """Interference-aware greedy decision rate on the paper-scale view."""
    from repro.core import GreedyLB

    view = _make_view(32, 8)
    lb = GreedyLB(aware=True)
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        migrations = lb.decide(view)
    wall = time.perf_counter() - t0
    assert migrations
    return reps / wall


def _bench_view_build() -> float:
    """LBView construction rate from runtime counters (per LB step)."""
    from repro.core import LBDatabase
    from repro.sim import SharedCore, SimulationEngine
    from repro.sim.procstat import ProcStat

    eng = SimulationEngine()
    cores = {i: SharedCore(eng, i) for i in range(32)}
    db = LBDatabase(ProcStat(cores, owner="app"))
    mapping = {}
    for cid in range(32):
        for i in range(8):
            key = ("grid", cid * 8 + i)
            mapping[key] = cid
            db.record_task(key, 0.01)
    reps = 50
    t0 = time.perf_counter()
    for _ in range(reps):
        view = db.build_view(mapping)
    wall = time.perf_counter() - t0
    assert view.num_cores == 32
    return reps / wall


def _bench_net_message_time() -> float:
    """Per-message costing rate of the virtualised network model."""
    from repro.cluster import NetworkModel

    net = NetworkModel.virtualized()
    n = 50_000
    total = 0.0
    t0 = time.perf_counter()
    for i in range(n):
        total += net.message_time(1024.0 + (i & 1023))
    wall = time.perf_counter() - t0
    assert total > 0.0
    return n / wall


def _bench_fastpath_runs() -> float:
    """Fast-backend end-to-end run rate on an interfered, balanced scenario.

    The scenario is the macro smoke point, so
    ``micro.fastpath.runs_per_s x macro.smoke_point_events_s`` reads
    directly as the backend speedup.
    """
    from repro.experiments.runner import run_scenario
    from repro.experiments.sweep import build_scenario

    params = {
        "app": "jacobi2d",
        "scale": 0.05,
        "iterations": 10,
        "cores": 4,
        "bg": True,
        "balancer": "refine-vm",
    }
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        result = run_scenario(build_scenario(params), backend="fast")
    wall = time.perf_counter() - t0
    assert result.app.finished_at > 0.0
    return reps / wall


def _bench_contended_runs() -> float:
    """Fast-backend run rate on a fully contended scenario.

    Every application core shares time with the background job for the
    whole run, so the analytic contention fold (not the solo-core prefix
    sum) carries the entire simulation — the ratio against
    ``fastpath.runs_per_s`` (half-contended smoke point) isolates the
    contended fold's cost.
    """
    from repro.experiments.runner import run_scenario
    from repro.experiments.sweep import build_scenario

    params = {
        "app": "jacobi2d",
        "scale": 0.05,
        "iterations": 10,
        "cores": 2,
        "bg": True,
        "balancer": "refine-vm",
    }
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        result = run_scenario(build_scenario(params), backend="fast")
    wall = time.perf_counter() - t0
    assert result.app.finished_at > 0.0
    return reps / wall


def _bench_batch_points(n: int) -> float:
    """Batched structure-of-arrays execution rate at batch size ``n``.

    The ``n`` lanes vary only the background weight, so the whole batch
    is one shape-homogeneous group sharing a single work table
    (:mod:`repro.sim.batch`). Scenario construction is inside the timed
    region — that is what a sweep pays per point — so
    ``batch.points_per_s_64 / batch.points_per_s_1`` reads directly as
    the amortisation win of batching.
    """
    from repro.experiments.sweep import build_scenario
    from repro.sim.batch import run_scenarios_batch

    t0 = time.perf_counter()
    scenarios = [
        build_scenario(
            {
                "app": "jacobi2d",
                "scale": 0.05,
                "iterations": 10,
                "cores": 4,
                "bg": True,
                "bg_weight": 0.5 + 0.03125 * i,
                "balancer": "refine-vm",
            }
        )
        for i in range(n)
    ]
    results = run_scenarios_batch(scenarios)
    wall = time.perf_counter() - t0
    assert all(r.app.finished_at > 0.0 for r in results)
    return n / wall


def _bench_lineaged_runs() -> float:
    """Fast-backend run rate with the lineage observatory attached.

    Same scenario as ``fastpath.runs_per_s``, so the ratio of the two
    metrics reads directly as the enabled-recorder overhead (sampling
    every task plus building the payload). The *disabled*-hook overhead
    — the ``is not None`` checks a bare run pays — is gated like the
    ledger's hooks: cross-commit A/B on ``fastpath.runs_per_s`` itself,
    held under 1%.
    """
    from repro.experiments.runner import run_scenario
    from repro.experiments.sweep import build_scenario
    from repro.obs.lineage import LineageRecorder

    params = {
        "app": "jacobi2d",
        "scale": 0.05,
        "iterations": 10,
        "cores": 4,
        "bg": True,
        "balancer": "refine-vm",
    }
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        scenario = build_scenario(params)
        lineage = LineageRecorder(job="app", core_ids=scenario.app_core_ids)
        run_scenario(scenario, backend="fast", lineage=lineage)
        payload = lineage.payload()
    wall = time.perf_counter() - t0
    assert payload["run"]["lb_steps"] >= 0
    return reps / wall


def _bench_cache_roundtrip() -> float:
    """Result-cache put+get rate (atomic JSON entries on local disk)."""
    from repro.experiments.cache import ResultCache

    summary = {"app_time": 1.0, "energy_j": 2.0, "detail": list(range(32))}
    n = 25
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(Path(tmp))
        t0 = time.perf_counter()
        for i in range(n):
            key = f"{i:064x}"
            cache.put(key, {"i": i}, summary)
            got = cache.get(key)
        wall = time.perf_counter() - t0
    assert got is not None
    return n / wall


# ---------------------------------------------------------------------------
# macro benchmarks
# ---------------------------------------------------------------------------


def _bench_smoke_point(backend: str = "auto") -> float:
    """End-to-end wall time of one interfered, balanced smoke scenario.

    ``backend`` is the macro suite's backend dimension: the default
    metric measures the production path (``auto`` → fast), the
    ``*_events_s`` variant forces the event engine, and their ratio is
    the measured backend speedup.
    """
    from repro.experiments.sweep import run_point

    t0 = time.perf_counter()
    run_point(
        {
            "app": "jacobi2d",
            "scale": 0.05,
            "iterations": 10,
            "cores": 4,
            "bg": True,
            "balancer": "refine-vm",
        },
        backend=backend,
    )
    return time.perf_counter() - t0


def _bench_smoke_sweep(backend: str = "auto") -> float:
    """End-to-end wall time of the CI smoke sweep (4 points, serial)."""
    from repro.experiments.sweep import run_sweep
    from repro.experiments.sweep_presets import smoke_spec

    t0 = time.perf_counter()
    run_sweep(smoke_spec(), workers=1, cache=None, backend=backend)
    return time.perf_counter() - t0


def default_benchmarks() -> List[Benchmark]:
    """The curated suite, in reporting order."""
    return [
        Benchmark("engine.events_per_s", "micro", "events/s", HIGHER, _bench_engine_events),
        Benchmark("engine.dispatch_per_s", "micro", "procs/s", HIGHER, _bench_core_dispatch),
        Benchmark("lb.refine_vm.decisions_per_s", "micro", "decisions/s", HIGHER, _bench_refine_vm_decisions),
        Benchmark("lb.greedy.decisions_per_s", "micro", "decisions/s", HIGHER, _bench_greedy_decisions),
        Benchmark("lb.view_build_per_s", "micro", "views/s", HIGHER, _bench_view_build),
        Benchmark("net.message_time_per_s", "micro", "calls/s", HIGHER, _bench_net_message_time),
        Benchmark("fastpath.runs_per_s", "micro", "runs/s", HIGHER, _bench_fastpath_runs),
        Benchmark("fastpath.contended_runs_per_s", "micro", "runs/s", HIGHER, _bench_contended_runs),
        Benchmark("batch.points_per_s_1", "micro", "points/s", HIGHER, lambda: _bench_batch_points(1)),
        Benchmark("batch.points_per_s_16", "micro", "points/s", HIGHER, lambda: _bench_batch_points(16), max_repeats=5, max_warmup=1),
        Benchmark("batch.points_per_s_64", "micro", "points/s", HIGHER, lambda: _bench_batch_points(64), max_repeats=3, max_warmup=1),
        Benchmark("lineage.runs_per_s", "micro", "runs/s", HIGHER, _bench_lineaged_runs),
        Benchmark("cache.roundtrip_per_s", "micro", "ops/s", HIGHER, _bench_cache_roundtrip),
        Benchmark("macro.smoke_point_s", "macro", "s", LOWER, _bench_smoke_point, max_repeats=3, max_warmup=1),
        Benchmark("macro.smoke_point_events_s", "macro", "s", LOWER, lambda: _bench_smoke_point("events"), max_repeats=3, max_warmup=1),
        Benchmark("macro.smoke_sweep_s", "macro", "s", LOWER, _bench_smoke_sweep, max_repeats=3, max_warmup=1),
        Benchmark("macro.smoke_sweep_batch_s", "macro", "s", LOWER, lambda: _bench_smoke_sweep("batch"), max_repeats=3, max_warmup=1),
        Benchmark("macro.smoke_sweep_events_s", "macro", "s", LOWER, lambda: _bench_smoke_sweep("events"), max_repeats=3, max_warmup=1),
    ]


# ---------------------------------------------------------------------------
# environment fingerprint & execution
# ---------------------------------------------------------------------------


def _git_sha() -> str:
    """Short git SHA of the working tree, or ``unknown`` outside a repo."""
    from repro.util.provenance import git_sha

    return git_sha()


def environment_fingerprint() -> Dict[str, Any]:
    """Everything needed to judge whether two BENCH files are comparable."""
    from repro.experiments.cache import code_fingerprint
    from repro.version import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(),
        "code_fingerprint": code_fingerprint()[:16],
    }


def run_bench(
    *,
    suites: Sequence[str] = SUITES,
    repeats: int = 5,
    warmup: int = 2,
    name_filter: Optional[str] = None,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> Dict[str, Any]:
    """Run the suite and return the schema-versioned result dict.

    Parameters
    ----------
    suites:
        Which suites to run (subset of :data:`SUITES`).
    repeats / warmup:
        Measured and discarded iterations per metric (clamped per
        benchmark by its ``max_repeats``/``max_warmup``).
    name_filter:
        Substring filter on metric names (``--filter`` on the CLI).
    progress:
        Optional ``(metric_name, index, total)`` callback fired before
        each metric runs.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    unknown = set(suites) - set(SUITES)
    if unknown:
        raise ValueError(f"unknown suite(s) {sorted(unknown)}; known: {SUITES}")

    selected = [
        b
        for b in default_benchmarks()
        if b.suite in suites and (name_filter is None or name_filter in b.name)
    ]
    if not selected:
        raise ValueError(
            f"no benchmarks match suites={sorted(suites)} filter={name_filter!r}"
        )

    metrics: Dict[str, Any] = {}
    t_start = time.perf_counter()
    for i, bench in enumerate(selected):
        if progress is not None:
            progress(bench.name, i, len(selected))
        n_rep = min(repeats, bench.max_repeats or repeats)
        n_warm = min(warmup, bench.max_warmup if bench.max_warmup is not None else warmup)
        for _ in range(n_warm):
            bench.fn()
        samples = [float(bench.fn()) for _ in range(n_rep)]
        stats = summarize_samples(samples)
        q1 = sample_quantile(samples, 0.25)
        q3 = sample_quantile(samples, 0.75)
        metrics[bench.name] = {
            "suite": bench.suite,
            "unit": bench.unit,
            "direction": bench.direction,
            "repeats": n_rep,
            "warmup": n_warm,
            "median": stats["p50"],
            "iqr": q3 - q1,
            "mean": stats["mean"],
            "p90": stats["p90"],
            "samples": samples,
        }

    return {
        "schema": BENCH_SCHEMA,
        "kind": "repro-bench",
        "created_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "elapsed_s": round(time.perf_counter() - t_start, 3),
        "env": environment_fingerprint(),
        "config": {
            "suites": sorted(suites),
            "repeats": repeats,
            "warmup": warmup,
            "filter": name_filter,
        },
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# persistence (the perf trajectory)
# ---------------------------------------------------------------------------


def bench_filename(result: Dict[str, Any]) -> str:
    """Trajectory entry name for a result: ``BENCH_<git-sha>.json``."""
    sha = result.get("env", {}).get("git_sha") or "unknown"
    return f"BENCH_{sha}.json"


def save_bench(result: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a result atomically (tmp + rename); returns the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and schema-check one BENCH_*.json file."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("kind") != "repro-bench":
        raise ValueError(f"{path}: not a repro bench result")
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: bench schema {data.get('schema')!r} != supported {BENCH_SCHEMA}"
        )
    if not isinstance(data.get("metrics"), dict):
        raise ValueError(f"{path}: bench result has no metrics")
    return data


def format_bench_text(result: Dict[str, Any]) -> str:
    """Human-readable table of one bench result."""
    from repro.experiments.tables import format_table

    env = result.get("env", {})
    rows = [
        (
            name,
            m["suite"],
            m["median"],
            m["iqr"],
            m["p90"],
            m["unit"],
            m["repeats"],
        )
        for name, m in sorted(result["metrics"].items())
    ]
    title = (
        f"repro bench — {len(rows)} metrics "
        f"(git {env.get('git_sha', '?')}, python {env.get('python', '?')}, "
        f"{env.get('cpu_count', '?')} cpus)"
    )
    return format_table(
        ["metric", "suite", "median", "IQR", "p90", "unit", "repeats"],
        rows,
        title=title,
        float_fmt="{:,.1f}",
    )

"""Deterministic random-number handling.

The whole library is deterministic given a seed: simulations never read
wall-clock time or global RNG state. Any function that needs randomness
accepts a ``seed`` / ``rng`` argument and funnels it through
:func:`resolve_rng`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def resolve_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh default seed 0 — deterministic by policy),
    an integer seed, or an existing ``Generator`` (returned unchanged, so
    callers can thread one generator through a pipeline).
    """
    if seed is None:
        return np.random.default_rng(0)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {seed!r}")

"""Deterministic random-number handling.

The whole library is deterministic given a seed: simulations never read
wall-clock time or global RNG state. Any function that needs randomness
accepts a ``seed`` / ``rng`` argument and funnels it through
:func:`resolve_rng`.

For fan-out (sweeps, repeated cases, worker processes) use
:func:`derive_seed`: it hashes a root seed together with any number of
string/int keys into a fresh 63-bit seed, so every scenario of a sweep
gets an independent, reproducible stream regardless of execution order
or of which process runs it.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def derive_seed(root: int, *keys: Union[str, int]) -> int:
    """Derive a child seed from ``root`` and a path of ``keys``.

    The derivation is a SHA-256 over the decimal root and the keys, so it
    is stable across processes, platforms, and Python hash randomisation
    — the property parallel sweep workers rely on for per-scenario
    deterministic seeding.
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for key in keys:
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        h.update(str(key).encode())
    return int.from_bytes(h.digest()[:8], "big") >> 1


def resolve_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh default seed 0 — deterministic by policy),
    an integer seed, or an existing ``Generator`` (returned unchanged, so
    callers can thread one generator through a pipeline).
    """
    if seed is None:
        return np.random.default_rng(0)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {seed!r}")

"""Small shared utilities: argument validation, RNG handling, logging.

These helpers keep the rest of the library free of repetitive defensive
boilerplate while still failing fast (and with actionable messages) on
bad inputs — important for a simulator whose results silently degrade if,
say, a negative work amount sneaks in.
"""

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)
from repro.util.rng import derive_seed, resolve_rng
from repro.util.log import get_logger
from repro.util.provenance import git_sha, utc_timestamp

__all__ = [
    "git_sha",
    "utc_timestamp",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
    "derive_seed",
    "resolve_rng",
    "get_logger",
]

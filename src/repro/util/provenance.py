"""Run provenance: identifying *which code* produced an artifact.

Every long-lived artifact this repo writes (result-cache entries, bench
trajectory files, run-registry records) must be traceable back to the
exact source tree that produced it, or cross-run comparisons silently
mix incomparable numbers. This module centralises the two stamps:

* :func:`git_sha` — the short git SHA of the working tree (or
  ``unknown`` outside a repo); overridable via ``REPRO_GIT_SHA`` so CI
  and tests can pin it without a git checkout;
* :func:`utc_timestamp` — a compact ISO-8601 UTC stamp, injectable for
  deterministic tests.
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

__all__ = ["git_sha", "utc_timestamp"]

_sha_memo: Optional[str] = None


def git_sha() -> str:
    """Short git SHA of the working tree, or ``unknown`` outside a repo.

    ``REPRO_GIT_SHA`` overrides (always re-read — tests set it per
    case); the subprocess result is memoised per process.
    """
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    global _sha_memo
    if _sha_memo is not None:
        return _sha_memo
    import repro

    root = Path(repro.__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        _sha_memo = "unknown"
        return _sha_memo
    sha = out.stdout.strip()
    _sha_memo = sha if out.returncode == 0 and sha else "unknown"
    return _sha_memo


def utc_timestamp(now: Optional[datetime] = None) -> str:
    """``YYYY-MM-DDTHH:MM:SSZ`` for ``now`` (default: the current UTC)."""
    dt = now if now is not None else datetime.now(timezone.utc)
    return dt.astimezone(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")

"""Library logging.

A thin wrapper over :mod:`logging` so the library never configures the
root logger (an application concern) but still gives each subsystem a
namespaced logger: ``repro.sim``, ``repro.core`` and so on.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return the ``repro``-namespaced logger for ``name``.

    ``name`` may already start with ``repro`` (e.g. ``__name__`` inside the
    package) or be a bare suffix like ``"sim.engine"``.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    logger.addHandler(logging.NullHandler())
    return logger

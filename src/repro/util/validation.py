"""Argument validation helpers.

Every public entry point of the library validates its inputs with these
functions so that configuration errors surface at construction time with a
clear message, rather than as NaNs three subsystems later.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple, Type, Union

Number = Union[int, float]


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``.

    Returns ``value`` unchanged so the call can be used inline::

        self.cores = check_type("cores", cores, int)
    """
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__} ({value!r})"
        )
    return value


def check_finite(name: str, value: Number) -> Number:
    """Raise ``ValueError`` if ``value`` is NaN or infinite."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive(name: str, value: Number) -> Number:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: Number,
    low: Optional[Number] = None,
    high: Optional[Number] = None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> Number:
    """Raise ``ValueError`` unless ``low <(=) value <(=) high``.

    ``None`` bounds are unbounded on that side.
    """
    check_finite(name, value)
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return value

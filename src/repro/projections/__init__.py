"""Projections-style timeline analysis.

The paper presents its qualitative evidence as Projections timelines:
per-core horizontal bars showing task executions (coloured) and idle time
(white), before and after balancing (Figures 1 and 3). This package
rebuilds that tooling over :class:`~repro.runtime.tracing.TraceLog`:

* :mod:`repro.projections.timeline` — extract per-core busy/idle interval
  sequences for a time window or an iteration range.
* :mod:`repro.projections.render` — ASCII timeline rendering (one row per
  core), the terminal-friendly equivalent of the paper's screenshots.
* :mod:`repro.projections.summary` — utilisation statistics per core and
  per iteration (the numbers behind "grayish-white parts represent idle
  time").
"""

from repro.projections.timeline import CoreTimeline, Interval, extract_timelines
from repro.projections.render import render_timelines
from repro.projections.summary import UtilizationSummary, summarize_utilization
from repro.projections.export import to_trace_events, write_chrome_trace

__all__ = [
    "Interval",
    "CoreTimeline",
    "extract_timelines",
    "render_timelines",
    "UtilizationSummary",
    "summarize_utilization",
    "to_trace_events",
    "write_chrome_trace",
]

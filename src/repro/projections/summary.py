"""Utilisation summaries over traces.

The quantitative counterpart to the timelines: per-core busy/idle totals
and per-iteration durations, used by tests ("cores 1–3 wait for core 4")
and by the figure harnesses' printed commentary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.projections.timeline import extract_timelines
from repro.runtime.tracing import TraceLog

__all__ = ["UtilizationSummary", "summarize_utilization"]


@dataclass(frozen=True)
class UtilizationSummary:
    """Aggregate utilisation of one runtime's cores over a window.

    Attributes
    ----------
    per_core:
        ``core_id -> utilization`` in [0, 1].
    mean:
        Mean utilisation across cores.
    min_core, max_core:
        Cores with the lowest/highest utilisation (ties: lowest id).
    iteration_durations:
        Wall time of each iteration inside the window.
    """

    per_core: Dict[int, float]
    mean: float
    min_core: int
    max_core: int
    iteration_durations: Tuple[float, ...]


def summarize_utilization(
    trace: TraceLog,
    core_ids: Sequence[int],
    *,
    iterations: Tuple[int, int] = None,
) -> UtilizationSummary:
    """Compute per-core utilisation and iteration durations.

    Parameters
    ----------
    trace:
        A traced runtime's log.
    core_ids:
        The job's cores.
    iterations:
        Optional ``(first, last)`` inclusive window; defaults to the whole
        trace.
    """
    timelines = extract_timelines(trace, core_ids, iterations=iterations)
    per_core = {cid: tl.utilization for cid, tl in timelines.items()}
    if not per_core:
        raise ValueError("no cores to summarise")
    mean = sum(per_core.values()) / len(per_core)
    min_core = min(per_core, key=lambda c: (per_core[c], c))
    max_core = max(per_core, key=lambda c: (per_core[c], -c))
    if iterations is not None:
        lo, hi = iterations
        durations = tuple(
            ev.end - ev.start
            for ev in trace.iterations
            if lo <= ev.iteration <= hi
        )
    else:
        durations = tuple(ev.end - ev.start for ev in trace.iterations)
    return UtilizationSummary(
        per_core=per_core,
        mean=mean,
        min_core=min_core,
        max_core=max_core,
        iteration_durations=durations,
    )

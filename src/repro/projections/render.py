"""ASCII timeline rendering.

Turns :class:`~repro.projections.timeline.CoreTimeline` objects into the
terminal equivalent of a Projections screenshot: one row per core, busy
segments drawn with per-chare glyphs, idle time as dots. Figures 1 and 3
of the paper are regenerated as these renderings (see
``benchmarks/test_fig1_timeline.py``).

Example output for a 4-core run with an interferer on core 1::

    core 0 |AAAAaaaaBBBBbbbb....|
    core 1 |CCCCCCCCcccccccc....|   <- stretched tasks, no idle
    core 2 |DDDDddddEEEEeeee....|
    core 3 |FFFFffffGGGGgggg....|
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.projections.timeline import CoreTimeline
from repro.util import check_positive

__all__ = ["render_timelines"]

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
_IDLE = "."


def render_timelines(
    timelines: Mapping[int, CoreTimeline],
    *,
    width: int = 80,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
    show_utilization: bool = True,
) -> str:
    """Render timelines as fixed-width ASCII rows.

    Parameters
    ----------
    timelines:
        ``core_id -> CoreTimeline`` (from :func:`extract_timelines`).
    width:
        Characters available for the bar itself.
    t_start, t_end:
        Rendering window; defaults to the union span of all timelines.
    show_utilization:
        Append each core's busy percentage to its row.

    Each chare gets a stable glyph (cycled through letters/digits); idle
    time renders as ``.``. Each output column is a time bucket; the bucket
    shows the glyph of whichever state (a specific chare, or idle)
    occupied most of it.
    """
    check_positive("width", width)
    if not timelines:
        return ""
    spans = [
        (tl.intervals[0].start, tl.intervals[-1].end)
        for tl in timelines.values()
        if tl.intervals
    ]
    if not spans:
        return ""
    lo = min(s for s, _ in spans) if t_start is None else t_start
    hi = max(e for _, e in spans) if t_end is None else t_end
    if hi <= lo:
        raise ValueError("empty rendering window")
    dt = (hi - lo) / width

    # stable glyph per chare across all cores
    glyph: Dict[object, str] = {}

    def glyph_of(chare) -> str:
        if chare not in glyph:
            glyph[chare] = _GLYPHS[len(glyph) % len(_GLYPHS)]
        return glyph[chare]

    lines = []
    for cid in sorted(timelines):
        tl = timelines[cid]
        # per-bucket occupancy votes
        row = []
        for b in range(width):
            b_lo, b_hi = lo + b * dt, lo + (b + 1) * dt
            votes: Dict[str, float] = {}
            for iv in tl.intervals:
                if iv.end <= b_lo or iv.start >= b_hi:
                    continue
                overlap = min(iv.end, b_hi) - max(iv.start, b_lo)
                ch = _IDLE if iv.is_idle else glyph_of(iv.chare)
                votes[ch] = votes.get(ch, 0.0) + overlap
            if votes:
                row.append(max(votes.items(), key=lambda kv: (kv[1], kv[0]))[0])
            else:
                row.append(" ")
        suffix = ""
        if show_utilization:
            suffix = f"  {tl.utilization * 100:5.1f}% busy"
        lines.append(f"core {cid:>3} |{''.join(row)}|{suffix}")
    header = f"t = [{lo:.4f}, {hi:.4f}] s, {dt:.6f} s/column"
    return "\n".join([header] + lines)

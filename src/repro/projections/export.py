"""Trace export to the Chrome/Perfetto ``trace_event`` format.

The ASCII renderer is for terminals; for interactive inspection this
module converts a :class:`~repro.runtime.tracing.TraceLog` into the JSON
array flavour of the Trace Event Format understood by ``chrome://tracing``
and https://ui.perfetto.dev — one "process" per job, one "thread" per
core, a complete ("X") event per task execution, instant events for
migrations, and flow-free duration events for LB steps.

Times are exported in microseconds, as the format requires.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.tracing import TraceLog

__all__ = ["to_trace_events", "write_chrome_trace"]

_US = 1e6  # seconds -> microseconds


def to_trace_events(
    trace: TraceLog,
    *,
    job_name: str = "app",
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Convert a trace log to a list of trace-event dicts.

    Parameters
    ----------
    trace:
        The runtime's event log (``tracing=True`` runs).
    job_name:
        Process name shown in the viewer.
    pid:
        Process id to assign (use distinct pids to overlay several jobs).
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": job_name},
        }
    ]
    cores = sorted({t.core_id for t in trace.tasks})
    for cid in cores:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": cid,
                "args": {"name": f"core {cid}"},
            }
        )
    for t in trace.tasks:
        events.append(
            {
                "name": f"{t.chare[0]}[{t.chare[1]}]",
                "cat": "task",
                "ph": "X",
                "pid": pid,
                "tid": t.core_id,
                "ts": t.start * _US,
                "dur": (t.end - t.start) * _US,
                "args": {
                    "iteration": t.iteration,
                    "cpu_time_s": t.cpu_time,
                    "wall_time_s": t.end - t.start,
                },
            }
        )
    for m in trace.migrations:
        events.append(
            {
                "name": f"migrate {m.chare[0]}[{m.chare[1]}] {m.src}->{m.dst}",
                "cat": "migration",
                "ph": "i",
                "s": "p",  # process-scoped instant
                "pid": pid,
                "tid": m.src,
                "ts": m.time * _US,
                "args": {"state_bytes": m.state_bytes, "dst": m.dst},
            }
        )
    for step in trace.lb_steps:
        events.append(
            {
                "name": f"LB step ({step.num_migrations} migrations)",
                "cat": "lb",
                "ph": "X",
                "pid": pid,
                "tid": cores[0] if cores else 0,
                "ts": step.time * _US,
                "dur": max(step.migration_cost_s, 1e-6) * _US,
                "args": {
                    "iteration": step.iteration,
                    "t_avg": step.t_avg,
                    "max_load": step.max_load,
                },
            }
        )
    return events


def write_chrome_trace(
    trace: TraceLog,
    path: str,
    *,
    job_name: str = "app",
    extra: Optional[Sequence[TraceLog]] = None,
) -> int:
    """Write ``trace`` (plus optional co-scheduled jobs) as JSON.

    Returns the number of events written. ``extra`` traces get their own
    process lanes (pid 2, 3, ...).
    """
    events = to_trace_events(trace, job_name=job_name, pid=1)
    for i, other in enumerate(extra or (), start=2):
        events.extend(to_trace_events(other, job_name=f"job-{i}", pid=i))
    with open(path, "w") as fh:
        json.dump(events, fh)
    return len(events)

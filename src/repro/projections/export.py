"""Trace export to the Chrome/Perfetto ``trace_event`` format.

The ASCII renderer is for terminals; for interactive inspection this
module converts a :class:`~repro.runtime.tracing.TraceLog` into the JSON
array flavour of the Trace Event Format understood by ``chrome://tracing``
and https://ui.perfetto.dev — one "process" per job, one "thread" per
core, a complete ("X") event per task execution, instant events for
migrations, and flow-free duration events for LB steps.

Times are exported in microseconds, as the format requires.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.perf.profiler import PhaseProfiler, phase_trace_events
from repro.runtime.tracing import TraceLog

__all__ = [
    "to_trace_events",
    "audit_counter_events",
    "ledger_counter_events",
    "lineage_counter_events",
    "write_chrome_trace",
]

_US = 1e6  # seconds -> microseconds


def to_trace_events(
    trace: TraceLog,
    *,
    job_name: str = "app",
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Convert a trace log to a list of trace-event dicts.

    Parameters
    ----------
    trace:
        The runtime's event log (``tracing=True`` runs).
    job_name:
        Process name shown in the viewer.
    pid:
        Process id to assign (use distinct pids to overlay several jobs).
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": job_name},
        }
    ]
    cores = sorted({t.core_id for t in trace.tasks})
    for cid in cores:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": cid,
                "args": {"name": trace.core_names.get(cid, f"core {cid}")},
            }
        )
    for t in trace.tasks:
        events.append(
            {
                "name": f"{t.chare[0]}[{t.chare[1]}]",
                "cat": "task",
                "ph": "X",
                "pid": pid,
                "tid": t.core_id,
                "ts": t.start * _US,
                "dur": (t.end - t.start) * _US,
                "args": {
                    "iteration": t.iteration,
                    "cpu_time_s": t.cpu_time,
                    "wall_time_s": t.end - t.start,
                },
            }
        )
    for m in trace.migrations:
        events.append(
            {
                "name": f"migrate {m.chare[0]}[{m.chare[1]}] {m.src}->{m.dst}",
                "cat": "migration",
                "ph": "i",
                "s": "p",  # process-scoped instant
                "pid": pid,
                "tid": m.src,
                "ts": m.time * _US,
                "args": {"state_bytes": m.state_bytes, "dst": m.dst},
            }
        )
    for step in trace.lb_steps:
        events.append(
            {
                "name": f"LB step ({step.num_migrations} migrations)",
                "cat": "lb",
                "ph": "X",
                "pid": pid,
                "tid": cores[0] if cores else 0,
                "ts": step.time * _US,
                "dur": max(step.migration_cost_s, 1e-6) * _US,
                "args": {
                    "iteration": step.iteration,
                    "t_avg": step.t_avg,
                    "max_load": step.max_load,
                },
            }
        )
    return events


def audit_counter_events(
    records: Sequence[Mapping[str, Any]],
    *,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Perfetto counter ("C") tracks from LB audit records.

    One sample per committed LB step for each of:

    * ``per-core load (s)`` — every core's Σ t_i + O_p as its own series;
    * ``O_p estimated (s)`` / ``O_p true (s)`` — the Eq. (2) background
      estimate next to the injected ground truth, per core;
    * ``migrations (cumulative)`` — running migration count.

    Records without a committed simulated time (balancer driven outside a
    runtime) are skipped; a missing ``bg_true`` drops only that series'
    sample, never the whole record.
    """
    events: List[Dict[str, Any]] = []
    total_migrations = 0
    for record in records:
        t = record.get("time")
        total_migrations += int(record.get("num_migrations", 0))
        if t is None:
            continue
        ts = float(t) * _US
        load = {f"core{c['core']}": c["load"] for c in record.get("cores", ())}
        est = {f"core{c['core']}": c["bg_est"] for c in record.get("cores", ())}
        true = {
            f"core{c['core']}": c["bg_true"]
            for c in record.get("cores", ())
            if c.get("bg_true") is not None
        }
        for name, args in (
            ("per-core load (s)", load),
            ("O_p estimated (s)", est),
            ("O_p true (s)", true),
            ("migrations (cumulative)", {"count": total_migrations}),
        ):
            if not args:
                continue
            events.append(
                {
                    "name": name,
                    "cat": "lb-audit",
                    "ph": "C",
                    "pid": pid,
                    "ts": ts,
                    "args": args,
                }
            )
    return events


def ledger_counter_events(
    summary: Mapping[str, Any],
    *,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Perfetto counter ("C") tracks from a time-ledger summary.

    One ``time ledger (core-s)`` sample per application iteration, with
    the four attribution buckets (compute / stolen / overhead / idle) as
    stacked series — the viewer renders them as one area chart, so phase
    changes (an interfering job arriving, an LB step paying off) show up
    as visible re-slicing of the per-iteration core-seconds.

    ``summary`` is :meth:`repro.obs.ledger.TimeLedger.summary` output (or
    the equal dict stored on cache entries / registry points).
    """
    events: List[Dict[str, Any]] = []
    for row in summary.get("per_iteration", ()):
        events.append(
            {
                "name": "time ledger (core-s)",
                "cat": "ledger",
                "ph": "C",
                "pid": pid,
                "ts": float(row["start_s"]) * _US,
                "args": {
                    "compute": row["compute"],
                    "stolen": row["stolen"],
                    "overhead": row["overhead"],
                    "idle": row["idle"],
                },
            }
        )
    return events


def lineage_counter_events(
    payload: Mapping[str, Any],
    *,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Perfetto counter ("C") tracks from a lineage payload.

    Two tracks, one sample per application iteration:

    * ``imbalance`` — λ (max/avg), CoV and Gini as parallel series, so
      an LB step paying off shows as all three dropping together;
    * ``per-chare load by core (s)`` — each core's summed app CPU for
      the iteration as its own series (the raw signal behind λ).

    ``payload`` is :meth:`repro.obs.lineage.LineageRecorder.payload`
    output (or the equal dict stored on cache entries / registry
    points).
    """
    events: List[Dict[str, Any]] = []
    for row in payload.get("per_iteration", ()):
        ts = float(row["start_s"]) * _US
        events.append(
            {
                "name": "imbalance",
                "cat": "lineage",
                "ph": "C",
                "pid": pid,
                "ts": ts,
                "args": {
                    "lambda": row["lambda"],
                    "cov": row["cov"],
                    "gini": row["gini"],
                },
            }
        )
        events.append(
            {
                "name": "per-chare load by core (s)",
                "cat": "lineage",
                "ph": "C",
                "pid": pid,
                "ts": ts,
                "args": {f"core{c}": v for c, v in row["loads"].items()},
            }
        )
    return events


def write_chrome_trace(
    trace: TraceLog,
    path: str,
    *,
    job_name: str = "app",
    extra: Optional[Sequence[TraceLog]] = None,
    audit: Optional[Sequence[Mapping[str, Any]]] = None,
    profile: Optional[Union[PhaseProfiler, Mapping[str, Any]]] = None,
    ledger: Optional[Mapping[str, Any]] = None,
    lineage: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write ``trace`` (plus optional co-scheduled jobs) as JSON.

    Returns the number of events written. ``extra`` traces get their own
    process lanes (pid 2, 3, ...); ``audit`` records add counter tracks
    (per-core load, O_p estimated/true, cumulative migrations) to the
    main job's lane; ``ledger`` (a time-ledger summary dict) adds the
    per-iteration attribution buckets as one stacked counter track;
    ``lineage`` (a lineage payload dict) adds per-iteration imbalance
    (λ/CoV/Gini) and per-core load counter tracks;
    ``profile`` (a :class:`PhaseProfiler` or its exported dict) adds the
    host wall-clock phase breakdown as its own process lane.
    Simulated-time and host-time lanes share one timeline axis but not
    an origin — compare durations, not positions.
    """
    events = to_trace_events(trace, job_name=job_name, pid=1)
    for i, other in enumerate(extra or (), start=2):
        events.extend(to_trace_events(other, job_name=f"job-{i}", pid=i))
    if audit:
        events.extend(audit_counter_events(audit, pid=1))
    if ledger is not None:
        events.extend(ledger_counter_events(ledger, pid=1))
    if lineage is not None:
        events.extend(lineage_counter_events(lineage, pid=1))
    if profile is not None:
        events.extend(phase_trace_events(profile))
    with open(path, "w") as fh:
        json.dump(events, fh)
    return len(events)

"""Per-core timeline extraction from trace logs.

A timeline is the per-core sequence of *intervals*: task executions
(labelled with the chare that ran) separated by idle gaps. Wall-time
stretching under interference is visible directly — an interfered core's
task intervals are longer than its peers' for the same chare work, which
is exactly what the paper's Figure 1(b) shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.tracing import TraceLog

__all__ = ["Interval", "CoreTimeline", "extract_timelines"]

ChareKey = Tuple[str, int]


@dataclass(frozen=True)
class Interval:
    """One timeline segment on a core.

    ``chare`` is None for idle gaps.
    """

    start: float
    end: float
    chare: Optional[ChareKey] = None
    iteration: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_idle(self) -> bool:
        return self.chare is None


@dataclass
class CoreTimeline:
    """All intervals of one core within the extraction window."""

    core_id: int
    intervals: List[Interval]

    @property
    def busy_time(self) -> float:
        """Wall time spent executing tasks."""
        return sum(i.duration for i in self.intervals if not i.is_idle)

    @property
    def idle_time(self) -> float:
        """Wall time spent idle between/around tasks."""
        return sum(i.duration for i in self.intervals if i.is_idle)

    @property
    def utilization(self) -> float:
        """busy / (busy + idle); 0.0 for an empty timeline."""
        total = self.busy_time + self.idle_time
        return self.busy_time / total if total > 0 else 0.0


def extract_timelines(
    trace: TraceLog,
    core_ids: Sequence[int],
    *,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
    iterations: Optional[Tuple[int, int]] = None,
) -> Dict[int, CoreTimeline]:
    """Build per-core timelines from a trace.

    Parameters
    ----------
    trace:
        A runtime's trace log (``tracing=True`` runs only).
    core_ids:
        Cores to extract (order preserved in the result dict).
    t_start, t_end:
        Window bounds; default to the trace's iteration span.
    iterations:
        Alternative window: ``(first, last)`` iteration numbers inclusive
        (mutually exclusive with explicit times).

    Returns
    -------
    dict
        ``core_id -> CoreTimeline``, idle gaps filled in.
    """
    if iterations is not None:
        if t_start is not None or t_end is not None:
            raise ValueError("pass either iterations or explicit times, not both")
        first, last = iterations
        span_a = trace.iteration_span(first)
        span_b = trace.iteration_span(last)
        if span_a is None or span_b is None:
            raise ValueError(f"iterations {iterations} not found in trace")
        t_start, t_end = span_a.start, span_b.end
    if t_start is None:
        t_start = min((e.start for e in trace.iterations), default=0.0)
    if t_end is None:
        t_end = max((e.end for e in trace.iterations), default=0.0)
    if t_end < t_start:
        raise ValueError(f"t_end ({t_end}) precedes t_start ({t_start})")

    result: Dict[int, CoreTimeline] = {}
    for cid in core_ids:
        segments: List[Interval] = []
        cursor = t_start
        for ev in trace.tasks_on_core(cid):
            if ev.end <= t_start or ev.start >= t_end:
                continue
            s, e = max(ev.start, t_start), min(ev.end, t_end)
            if s > cursor:
                segments.append(Interval(cursor, s))  # idle gap
            segments.append(
                Interval(s, e, chare=ev.chare, iteration=ev.iteration)
            )
            cursor = e
        if cursor < t_end:
            segments.append(Interval(cursor, t_end))
        result[cid] = CoreTimeline(core_id=cid, intervals=segments)
    return result

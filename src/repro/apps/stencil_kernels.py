"""Vectorised stencil kernels (the real numerics behind Jacobi2D/Wave2D).

These are genuine NumPy implementations — fully vectorised, no Python
loops over cells, in-place where the algorithm allows (per the
scientific-Python optimisation guidance: vectorise, avoid copies, keep
arrays contiguous). They serve two purposes:

1. **validation** — unit tests check convergence/energy behaviour, so the
   applications in :mod:`repro.apps` are backed by correct math rather
   than opaque cost constants;
2. **optional execution** — a :class:`~repro.runtime.runtime.Runtime`
   built with ``run_kernels=True`` runs them inside chare entry methods.

Flop counts per cell (used by the cost models):

* Jacobi 5-point update: 4 adds + 1 multiply ≈ :data:`JACOBI_FLOPS_PER_CELL`.
* Wave2D leapfrog update: Laplacian (4 adds + 1 mul) + time integration
  (3 ops) ≈ :data:`WAVE_FLOPS_PER_CELL`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "JACOBI_FLOPS_PER_CELL",
    "WAVE_FLOPS_PER_CELL",
    "jacobi_step",
    "jacobi_residual",
    "wave_step",
    "wave_energy",
]

#: Approximate flops per cell per Jacobi sweep.
JACOBI_FLOPS_PER_CELL = 6.0
#: Approximate flops per cell per Wave2D leapfrog step.
WAVE_FLOPS_PER_CELL = 9.0


def jacobi_step(grid: np.ndarray, out: np.ndarray) -> None:
    """One Jacobi sweep on the interior of ``grid`` into ``out``.

    Boundary values are carried over unchanged (Dirichlet conditions live
    in the boundary cells). ``out`` must not alias ``grid``.
    """
    if grid.shape != out.shape or grid.ndim != 2:
        raise ValueError("grid and out must be equal-shaped 2D arrays")
    if grid.shape[0] < 3 or grid.shape[1] < 3:
        raise ValueError("grid must be at least 3x3")
    if out is grid:
        raise ValueError("out must not alias grid (Jacobi is not in-place)")
    out[...] = grid
    # vectorised 5-point average over the interior — views, not copies
    out[1:-1, 1:-1] = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )


def jacobi_residual(grid: np.ndarray) -> float:
    """Max-norm residual ``max |u - avg(neighbours)|`` on the interior."""
    interior = grid[1:-1, 1:-1]
    avg = 0.25 * (
        grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
    )
    return float(np.max(np.abs(interior - avg))) if interior.size else 0.0


def wave_step(
    u_prev: np.ndarray, u_curr: np.ndarray, courant2: float = 0.25
) -> np.ndarray:
    """One leapfrog step of the 2D wave equation.

    ``u_next = 2 u - u_prev + c² Δt²/Δx² · laplacian(u)`` on the interior,
    with reflecting (zero) boundaries. ``courant2`` is ``(c Δt/Δx)²`` and
    must satisfy the CFL bound (≤ 0.5 in 2D) for stability.

    Returns the new field; callers rotate ``(u_prev, u_curr) ->
    (u_curr, u_next)``.
    """
    if u_prev.shape != u_curr.shape or u_curr.ndim != 2:
        raise ValueError("fields must be equal-shaped 2D arrays")
    if not 0.0 < courant2 <= 0.5:
        raise ValueError(f"courant2 must be in (0, 0.5], got {courant2}")
    u_next = np.zeros_like(u_curr)
    lap = (
        u_curr[:-2, 1:-1]
        + u_curr[2:, 1:-1]
        + u_curr[1:-1, :-2]
        + u_curr[1:-1, 2:]
        - 4.0 * u_curr[1:-1, 1:-1]
    )
    u_next[1:-1, 1:-1] = (
        2.0 * u_curr[1:-1, 1:-1] - u_prev[1:-1, 1:-1] + courant2 * lap
    )
    return u_next


def wave_energy(u_prev: np.ndarray, u_curr: np.ndarray) -> float:
    """Discrete energy ~ kinetic + potential (conserved by leapfrog).

    Used by tests as a stability invariant: for a CFL-stable step the
    energy stays bounded (and is nearly constant away from boundaries).
    """
    vel = u_curr - u_prev
    gx = np.diff(u_curr, axis=0)
    gy = np.diff(u_curr, axis=1)
    return float(0.5 * np.sum(vel * vel) + 0.25 * (np.sum(gx * gx) + np.sum(gy * gy)))

"""Jacobi2D — "a canonical benchmark that iteratively applies a 5-point
stencil over a 2D grid of points" (paper §V).

Strong-scaling workload: the grid size is fixed, so per-core work shrinks
as cores grow — one ingredient in the paper's observation that the LB
timing penalty falls with core count (more underloaded cores to absorb
the interfered cores' objects).
"""

from __future__ import annotations

from repro.apps.base import AppModel, CORE_SPEED_FLOPS
from repro.apps.stencil import build_strip_array
from repro.apps.stencil_kernels import JACOBI_FLOPS_PER_CELL
from repro.runtime.chare import ChareArray
from repro.runtime.commgraph import CommGraph
from repro.util import check_positive

__all__ = ["Jacobi2D"]


class Jacobi2D(AppModel):
    """5-point Jacobi relaxation on an ``N x N`` grid.

    Parameters
    ----------
    grid_size:
        N — the grid edge (default 4096, ~16.8M cells).
    odf:
        Overdecomposition factor: chares per core.
    core_speed:
        Effective flops/s per core (see :data:`CORE_SPEED_FLOPS`).
    jitter_amp:
        Small smooth per-task cost variation (default 0.5%).
    """

    name = "jacobi2d"

    def __init__(
        self,
        grid_size: int = 4096,
        *,
        odf: int = 8,
        core_speed: float = CORE_SPEED_FLOPS,
        jitter_amp: float = 0.005,
        jitter_seed: int = 0,
    ) -> None:
        check_positive("grid_size", grid_size)
        check_positive("odf", odf)
        self.grid_size = int(grid_size)
        self.odf = int(odf)
        self.core_speed = float(core_speed)
        self.jitter_amp = float(jitter_amp)
        self.jitter_seed = int(jitter_seed)

    def build_array(self, num_cores: int) -> ChareArray:
        check_positive("num_cores", num_cores)
        return build_strip_array(
            self.name,
            self.grid_size,
            self.odf * num_cores,
            flops_per_cell=JACOBI_FLOPS_PER_CELL,
            core_speed=self.core_speed,
            fields=2,  # current + next grid copies
            jitter_amp=self.jitter_amp,
            jitter_seed=self.jitter_seed,
        )

    def comm_bytes(self, num_cores: int) -> float:
        """Two halo rows of doubles per core boundary."""
        return 2.0 * self.grid_size * 8.0

    def comm_graph(self, num_cores: int) -> CommGraph:
        """Strip chain: adjacent strips exchange one halo row each way."""
        return CommGraph.chain(
            self.name, self.odf * num_cores, 2.0 * self.grid_size * 8.0
        )

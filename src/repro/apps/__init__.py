"""The paper's applications, written against the chare runtime.

Three CHARM++ applications drive the paper's evaluation:

* **Jacobi2D** (:mod:`repro.apps.jacobi2d`) — canonical 5-point stencil
  relaxation over a 2D grid.
* **Wave2D** (:mod:`repro.apps.wave2d`) — 5-point stencil integration of
  the 2D wave equation; also the paper's *background* job (a 2-core
  instance) and the Figure 1/3 demo app.
* **Mol3D** (:mod:`repro.apps.mol3d`) — classical molecular dynamics with
  spatial cell decomposition; per-cell particle counts vary, giving the
  *internal* load imbalance classic balancers were built for.

Each application is an :class:`~repro.apps.base.AppModel`: it builds a
:class:`~repro.runtime.chare.ChareArray` whose per-chare ``work()`` comes
from an explicit flop-count cost model, and (optionally, for validation)
whose ``execute()`` runs the real vectorised kernel from
:mod:`repro.apps.stencil_kernels` / :mod:`repro.apps.md_kernels`.

:class:`~repro.apps.synthetic.SyntheticApp` exposes the same interface
with fully scripted per-chare loads for unit tests and ablations.
"""

from repro.apps.base import AppModel, CORE_SPEED_FLOPS
from repro.apps.jacobi2d import Jacobi2D
from repro.apps.wave2d import Wave2D
from repro.apps.mol3d import Mol3D
from repro.apps.synthetic import SyntheticApp
from repro.apps.amr import AMR2D

__all__ = [
    "AppModel",
    "CORE_SPEED_FLOPS",
    "Jacobi2D",
    "Wave2D",
    "Mol3D",
    "SyntheticApp",
    "AMR2D",
]

"""Shared strip decomposition for the 2D stencil applications.

Jacobi2D and Wave2D both sweep a 5-point stencil over an ``N x N`` grid.
The grid is decomposed into horizontal strips, one per chare, with the
chare count = overdecomposition factor x cores. Each chare's entry method
costs ``rows x N x flops_per_cell / core_speed`` CPU-seconds; an optional
small smooth jitter models run-to-run measurement variation without
breaking the paper's principle of persistence (loads next window ≈ loads
this window).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.apps.base import CORE_SPEED_FLOPS
from repro.runtime.chare import Chare, ChareArray
from repro.util import check_non_negative, check_positive

__all__ = ["StencilStripChare", "build_strip_array"]

_INF = float("inf")
_sin = math.sin


class StencilStripChare(Chare):
    """One horizontal strip of a 2D stencil grid.

    Parameters
    ----------
    index:
        Strip index (top to bottom).
    rows, cols:
        Interior cells owned by this strip.
    flops_per_cell:
        Stencil update cost (application-specific).
    core_speed:
        Effective flops/s of one core.
    fields:
        Number of persistent field copies (Jacobi: 2, Wave: 2+1) —
        determines serialised state size.
    jitter_amp:
        Amplitude of the smooth multiplicative cost jitter (0 disables).
    jitter_seed:
        Varies the jitter phases between otherwise identical runs — the
        run-to-run variation behind the repeat/averaging methodology.
    """

    def __init__(
        self,
        index: int,
        rows: int,
        cols: int,
        *,
        flops_per_cell: float,
        core_speed: float = CORE_SPEED_FLOPS,
        fields: int = 2,
        jitter_amp: float = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        # constructed per chare per run: inline comparisons accept the
        # common case, the full checkers handle everything else (exact
        # error messages, odd numeric types)
        if not (
            type(rows) is int
            and type(cols) is int
            and type(fields) is int
            and type(flops_per_cell) is float
            and type(core_speed) is float
            and type(jitter_amp) is float
            and rows > 0
            and cols > 0
            and fields > 0
            and 0.0 < flops_per_cell < _INF
            and 0.0 < core_speed < _INF
            and 0.0 <= jitter_amp < _INF
        ):
            check_positive("rows", rows)
            check_positive("cols", cols)
            check_positive("flops_per_cell", flops_per_cell)
            check_positive("core_speed", core_speed)
            check_positive("fields", fields)
            check_non_negative("jitter_amp", jitter_amp)
        super().__init__(index, state_bytes=float(fields * rows * cols * 8))
        self.rows = int(rows)
        self.cols = int(cols)
        self.flops_per_cell = float(flops_per_cell)
        self.core_speed = float(core_speed)
        self.jitter_amp = float(jitter_amp)
        self.jitter_seed = int(jitter_seed)
        # deterministic per-(seed, chare) phase offset via a Weyl-style
        # integer hash, so distinct seeds give distinct but reproducible
        # jitter trajectories (the paper averages over "similar runs")
        self._jitter_phase = (
            ((self.jitter_seed * 2654435761 + self.index * 40503) % 6283) / 1000.0
        )
        self._base_work = self.rows * self.cols * self.flops_per_cell / self.core_speed
        # kernel state, allocated lazily only if execute() is used
        self._grid: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def work(self, iteration: int) -> float:
        """Cost model: cells x flops / speed, with smooth jitter.

        The jitter is a deterministic low-amplitude sinusoid in
        (iteration, index) — persistent from one LB window to the next, as
        real iterative codes are, but avoiding exactly tied loads.
        """
        amp = self.jitter_amp
        if amp == 0.0:
            return self._base_work
        phase = 0.7 * iteration + 2.3 * self.index + self._jitter_phase
        return self._base_work * (1.0 + amp * _sin(phase))

    def execute(self, iteration: int) -> None:
        """Run the real 5-point sweep on this strip (validation mode).

        Each strip owns an independent ``(rows+2) x (cols+2)`` grid with
        ghost boundaries; halo exchange cost is modelled by the runtime's
        communication delay, so the kernels here exercise the arithmetic,
        not the messaging.
        """
        from repro.apps.stencil_kernels import jacobi_step

        if self._grid is None:
            self._grid = np.zeros((self.rows + 2, self.cols + 2))
            self._grid[0, :] = 1.0  # heated top ghost row
            self._scratch = np.empty_like(self._grid)
        jacobi_step(self._grid, self._scratch)
        self._grid, self._scratch = self._scratch, self._grid


def build_strip_array(
    name: str,
    grid_size: int,
    num_chares: int,
    *,
    flops_per_cell: float,
    core_speed: float = CORE_SPEED_FLOPS,
    fields: int = 2,
    jitter_amp: float = 0.0,
    jitter_seed: int = 0,
) -> ChareArray:
    """Decompose an ``N x N`` grid into ``num_chares`` strips.

    Rows are spread as evenly as possible (difference of at most one row
    between strips).
    """
    check_positive("grid_size", grid_size)
    check_positive("num_chares", num_chares)
    if num_chares > grid_size:
        raise ValueError(
            f"cannot cut {grid_size} rows into {num_chares} strips"
        )
    base, extra = divmod(grid_size, num_chares)
    chares = []
    for i in range(num_chares):
        rows = base + (1 if i < extra else 0)
        chares.append(
            StencilStripChare(
                i,
                rows,
                grid_size,
                flops_per_cell=flops_per_cell,
                core_speed=core_speed,
                fields=fields,
                jitter_amp=jitter_amp,
                jitter_seed=jitter_seed,
            )
        )
    return ChareArray(name, chares)

"""AMR2D — a moving-refinement-front stencil (persistence stress test).

The paper's scheme, like all measurement-based balancing, rests on the
*principle of persistence*: "future loads will be almost the same as
measured loads". Stencil codes satisfy it trivially; adaptive mesh
refinement (AMR) codes strain it — a refined region (say, a shock front)
sweeps through the domain, so the expensive chares *change over time*.

:class:`AMR2D` models that regime without simulating actual regridding:
a strip's cost is the base stencil cost times a refinement factor when
the front overlaps it, and the front's centre advances a configurable
number of strips per iteration. Slow fronts (paper-like) keep loads
persistent across LB windows; fast fronts break persistence and expose
how stale measurements mislead any measurement-based balancer — the
behaviour benchmark ABL-PERSIST quantifies.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CORE_SPEED_FLOPS
from repro.apps.stencil_kernels import JACOBI_FLOPS_PER_CELL
from repro.runtime.chare import Chare, ChareArray
from repro.runtime.commgraph import CommGraph
from repro.util import check_non_negative, check_positive

__all__ = ["AMR2D", "AMRStripChare"]


class AMRStripChare(Chare):
    """One strip whose cost spikes while the refinement front overlaps it.

    Parameters
    ----------
    index:
        Strip index (the front moves along this axis).
    rows, cols:
        Coarse cells owned by the strip.
    num_strips:
        Total strips (for periodic front wrap-around).
    refinement:
        Cost multiplier inside the front (e.g. 8 = one extra 2D level
        plus time subcycling).
    front_width:
        Number of strips the front covers at once.
    front_speed:
        Strips the front advances per iteration (0 = static hotspot).
    core_speed:
        Effective flops/s per core.
    """

    def __init__(
        self,
        index: int,
        rows: int,
        cols: int,
        *,
        num_strips: int,
        refinement: float,
        front_width: int,
        front_speed: float,
        core_speed: float = CORE_SPEED_FLOPS,
    ) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        check_positive("num_strips", num_strips)
        check_positive("refinement", refinement)
        check_positive("front_width", front_width)
        check_non_negative("front_speed", front_speed)
        super().__init__(index, state_bytes=float(2 * rows * cols * 8))
        self.rows = int(rows)
        self.cols = int(cols)
        self.num_strips = int(num_strips)
        self.refinement = float(refinement)
        self.front_width = int(front_width)
        self.front_speed = float(front_speed)
        self.core_speed = float(core_speed)
        self._base = rows * cols * JACOBI_FLOPS_PER_CELL / core_speed

    def in_front(self, iteration: int) -> bool:
        """Does the refinement front overlap this strip at ``iteration``?"""
        centre = (self.front_speed * iteration) % self.num_strips
        # periodic distance from the front centre
        d = abs(self.index - centre)
        d = min(d, self.num_strips - d)
        return d <= self.front_width / 2.0

    def work(self, iteration: int) -> float:
        factor = self.refinement if self.in_front(iteration) else 1.0
        return self._base * factor


class AMR2D(AppModel):
    """Stencil with a moving refined region.

    Parameters
    ----------
    grid_size:
        Coarse grid edge.
    odf:
        Chares per core.
    refinement:
        Cost multiplier inside the front.
    front_width_frac:
        Fraction of the domain covered by the front.
    front_speed:
        Strips advanced per iteration. The persistence regime is
        ``front_speed * lb_period << front_width`` (loads look stable
        within a window); beyond that, measurements go stale before they
        are acted on.
    core_speed:
        Effective flops/s per core.
    """

    name = "amr2d"

    def __init__(
        self,
        grid_size: int = 2048,
        *,
        odf: int = 8,
        refinement: float = 8.0,
        front_width_frac: float = 0.15,
        front_speed: float = 0.1,
        core_speed: float = CORE_SPEED_FLOPS,
    ) -> None:
        check_positive("grid_size", grid_size)
        check_positive("odf", odf)
        check_positive("refinement", refinement)
        check_positive("front_width_frac", front_width_frac)
        check_non_negative("front_speed", front_speed)
        if front_width_frac > 1.0:
            raise ValueError("front_width_frac must be <= 1.0")
        self.grid_size = int(grid_size)
        self.odf = int(odf)
        self.refinement = float(refinement)
        self.front_width_frac = float(front_width_frac)
        self.front_speed = float(front_speed)
        self.core_speed = float(core_speed)

    def build_array(self, num_cores: int) -> ChareArray:
        check_positive("num_cores", num_cores)
        num_strips = self.odf * num_cores
        if num_strips > self.grid_size:
            raise ValueError(
                f"cannot cut {self.grid_size} rows into {num_strips} strips"
            )
        base, extra = divmod(self.grid_size, num_strips)
        front_width = max(int(round(self.front_width_frac * num_strips)), 1)
        chares = []
        for i in range(num_strips):
            rows = base + (1 if i < extra else 0)
            chares.append(
                AMRStripChare(
                    i,
                    rows,
                    self.grid_size,
                    num_strips=num_strips,
                    refinement=self.refinement,
                    front_width=front_width,
                    front_speed=self.front_speed,
                    core_speed=self.core_speed,
                )
            )
        return ChareArray(self.name, chares)

    def comm_bytes(self, num_cores: int) -> float:
        """Two halo rows of doubles per core boundary (coarse level)."""
        return 2.0 * self.grid_size * 8.0

    def comm_graph(self, num_cores: int) -> CommGraph:
        """Strip chain, as for the uniform stencils."""
        return CommGraph.chain(
            self.name, self.odf * num_cores, 2.0 * self.grid_size * 8.0
        )

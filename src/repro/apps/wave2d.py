"""Wave2D — "a tightly coupled 5-point stencil application" (paper §IV).

Wave2D is the paper's workhorse: the Figure 1 demonstration, one of the
three evaluated applications, *and* the interfering background job (a
2-core instance). Compared to Jacobi it carries an extra time level
(leapfrog) — more flops per cell and more migratable state.

:meth:`Wave2D.background` builds the paper's standard interference
workload: a small-grid instance sized for a 2-core run.
"""

from __future__ import annotations

from repro.apps.base import AppModel, CORE_SPEED_FLOPS
from repro.apps.stencil import build_strip_array
from repro.apps.stencil_kernels import WAVE_FLOPS_PER_CELL
from repro.runtime.chare import ChareArray
from repro.runtime.commgraph import CommGraph
from repro.util import check_positive

__all__ = ["Wave2D"]


class Wave2D(AppModel):
    """Leapfrog integration of the 2D wave equation (5-point Laplacian).

    Parameters
    ----------
    grid_size:
        N — the grid edge (default 4096).
    odf:
        Overdecomposition factor (chares per core).
    core_speed:
        Effective flops/s per core.
    jitter_amp:
        Smooth per-task cost variation (default 0.5%).
    """

    name = "wave2d"

    def __init__(
        self,
        grid_size: int = 4096,
        *,
        odf: int = 8,
        core_speed: float = CORE_SPEED_FLOPS,
        jitter_amp: float = 0.005,
        jitter_seed: int = 0,
    ) -> None:
        check_positive("grid_size", grid_size)
        check_positive("odf", odf)
        self.grid_size = int(grid_size)
        self.odf = int(odf)
        self.core_speed = float(core_speed)
        self.jitter_amp = float(jitter_amp)
        self.jitter_seed = int(jitter_seed)

    def build_array(self, num_cores: int) -> ChareArray:
        check_positive("num_cores", num_cores)
        return build_strip_array(
            self.name,
            self.grid_size,
            self.odf * num_cores,
            flops_per_cell=WAVE_FLOPS_PER_CELL,
            core_speed=self.core_speed,
            fields=3,  # u_prev, u_curr, u_next
            jitter_amp=self.jitter_amp,
            jitter_seed=self.jitter_seed,
        )

    def comm_bytes(self, num_cores: int) -> float:
        """Two halo rows of doubles per core boundary."""
        return 2.0 * self.grid_size * 8.0

    def comm_graph(self, num_cores: int) -> CommGraph:
        """Strip chain: adjacent strips exchange one halo row each way."""
        return CommGraph.chain(
            self.name, self.odf * num_cores, 2.0 * self.grid_size * 8.0
        )

    # ------------------------------------------------------------------
    @classmethod
    def background(
        cls, *, grid_size: int = 1448, core_speed: float = CORE_SPEED_FLOPS
    ) -> "Wave2D":
        """The paper's interfering job: a small Wave2D for a 2-core run.

        The default grid is sized so that one core of the background job
        carries roughly the per-core load of the 4096-grid application on
        8 cores — heavy enough to fully occupy its share of the core, as
        a compute-bound co-tenant VM would. A 2-core instance with ODF 1
        (one chare per core — the job is *not* migratable; it belongs to
        another tenant).
        """
        return cls(grid_size=grid_size, odf=1, core_speed=core_speed, jitter_amp=0.0)

"""Application model interface.

An :class:`AppModel` describes a tightly coupled iterative application
abstractly — how it decomposes into chares for a given core count, what
each chare costs per iteration, and how much halo data a core exchanges —
and can instantiate itself as a :class:`~repro.runtime.runtime.Runtime`
on a simulated cluster.

Cost calibration
----------------
Work models convert flop counts to CPU-seconds with
:data:`CORE_SPEED_FLOPS`, the effective per-core throughput on
stencil/MD-style code. The default (1 GFLOP/s) is representative of one
core of the paper's 2009-era Xeon X3430 on memory-bound stencil sweeps.
Its absolute value only scales simulated wall-clock; every figure the
harness reproduces is a *ratio* (penalty %, overhead %), so results are
insensitive to it — which is exactly why the reproduction can make
shape-level claims without the original hardware.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.netmodel import NetworkModel
from repro.core.balancer import LoadBalancer
from repro.core.policies import LBPolicy
from repro.runtime.chare import ChareArray
from repro.runtime.commgraph import CommGraph
from repro.runtime.runtime import Runtime
from repro.sim.engine import SimulationEngine
from repro.telemetry import Telemetry

__all__ = ["AppModel", "CORE_SPEED_FLOPS"]

#: Effective per-core flop throughput used by the work models (flops/s).
CORE_SPEED_FLOPS = 1.0e9


class AppModel(abc.ABC):
    """Abstract tightly coupled iterative application.

    Subclasses define the decomposition (:meth:`build_array`), the halo
    volume (:meth:`comm_bytes`) and a human-readable :attr:`name`.
    """

    #: Application name (used in result tables and accounting tags).
    name: str = "app"

    @abc.abstractmethod
    def build_array(self, num_cores: int) -> ChareArray:
        """Create the chare array for a run on ``num_cores`` cores.

        Implementations honour an overdecomposition factor: the number of
        chares is ``odf * num_cores`` (Charm++'s "more objects than
        processors" requirement, which is what gives the balancer units
        to move).
        """

    @abc.abstractmethod
    def comm_bytes(self, num_cores: int) -> float:
        """Halo bytes one core exchanges per iteration."""

    def comm_graph(self, num_cores: int) -> Optional[CommGraph]:
        """Per-chare communication graph, or None if the application only
        models communication as the flat per-core :meth:`comm_bytes`.

        Used when instantiating with ``use_comm_graph=True`` — the
        runtime then derives communication delay from object placement
        (see :mod:`repro.runtime.commgraph`).
        """
        return None

    # ------------------------------------------------------------------
    def instantiate(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        core_ids: Sequence[int],
        *,
        name: Optional[str] = None,
        weight: float = 1.0,
        net: Optional[NetworkModel] = None,
        balancer: Optional[LoadBalancer] = None,
        policy: Optional[LBPolicy] = None,
        tracing: bool = False,
        run_kernels: bool = False,
        use_comm_graph: bool = False,
        telemetry: Optional["Telemetry"] = None,
    ) -> Runtime:
        """Build a ready-to-start :class:`Runtime` for this application.

        ``use_comm_graph=True`` switches communication modelling from the
        flat per-core volume to the placement-dependent graph (the app
        must implement :meth:`comm_graph`). ``telemetry`` is forwarded to
        the :class:`Runtime` unchanged.
        """
        graph = None
        if use_comm_graph:
            graph = self.comm_graph(len(core_ids))
            if graph is None:
                raise ValueError(
                    f"{type(self).__name__} does not provide a comm graph"
                )
        rt = Runtime(
            engine,
            cluster,
            core_ids,
            name=name or self.name,
            weight=weight,
            net=net,
            balancer=balancer,
            policy=policy,
            comm_bytes=self.comm_bytes(len(core_ids)),
            comm_graph=graph,
            tracing=tracing,
            run_kernels=run_kernels,
            telemetry=telemetry,
        )
        rt.register_array(self.build_array(len(core_ids)))
        return rt

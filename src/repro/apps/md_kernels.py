"""Vectorised molecular-dynamics kernels backing Mol3D.

A minimal but genuine classical-MD core: Lennard-Jones pair forces
computed with NumPy broadcasting (no Python pair loops) and a velocity-
Verlet integrator. Mol3D's cost model charges
:data:`LJ_FLOPS_PER_PAIR` per interacting pair; these kernels let tests
anchor that model to real physics (energy conservation, force symmetry).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "LJ_FLOPS_PER_PAIR",
    "lj_forces",
    "lj_potential",
    "velocity_verlet",
]

#: Approximate flops per Lennard-Jones pair interaction.
LJ_FLOPS_PER_PAIR = 45.0


def _pair_displacements(pos: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs displacement vectors and squared distances (broadcast)."""
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("pos must be (n, 3)")
    disp = pos[:, None, :] - pos[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", disp, disp)
    return disp, r2


def lj_forces(
    pos: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0
) -> np.ndarray:
    """Lennard-Jones forces on each particle (all-pairs, vectorised).

    ``F_i = Σ_j 24 ε [2 (σ/r)¹² − (σ/r)⁶] r̂ / r`` — Newton's third law
    holds by construction (the pair matrix is antisymmetric).
    """
    n = pos.shape[0]
    if n < 2:
        return np.zeros_like(pos)
    disp, r2 = _pair_displacements(pos)
    np.fill_diagonal(r2, np.inf)  # no self-interaction
    inv_r2 = (sigma * sigma) / r2
    inv_r6 = inv_r2**3
    # scalar magnitude / r2 factor: 24 eps (2 s12 - s6) / r^2
    mag = 24.0 * epsilon * (2.0 * inv_r6 * inv_r6 - inv_r6) / r2
    return np.einsum("ij,ijk->ik", mag, disp)


def lj_potential(pos: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0) -> float:
    """Total Lennard-Jones potential energy (each pair counted once)."""
    n = pos.shape[0]
    if n < 2:
        return 0.0
    _, r2 = _pair_displacements(pos)
    iu = np.triu_indices(n, k=1)
    inv_r6 = ((sigma * sigma) / r2[iu]) ** 3
    return float(np.sum(4.0 * epsilon * (inv_r6 * inv_r6 - inv_r6)))


def velocity_verlet(
    pos: np.ndarray,
    vel: np.ndarray,
    dt: float,
    *,
    epsilon: float = 1.0,
    sigma: float = 1.0,
    mass: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """One velocity-Verlet step; returns ``(pos_next, vel_next)``."""
    if dt <= 0:
        raise ValueError("dt must be > 0")
    f0 = lj_forces(pos, epsilon, sigma)
    pos_next = pos + vel * dt + 0.5 * (f0 / mass) * dt * dt
    f1 = lj_forces(pos_next, epsilon, sigma)
    vel_next = vel + 0.5 * ((f0 + f1) / mass) * dt
    return pos_next, vel_next

"""Mol3D — "a classical molecular dynamics code" (paper §V).

Space is decomposed into cells (one chare each); the cost of a cell is
dominated by pair interactions, so it scales with the *square* of its
particle count plus a neighbour-exchange term. Particle density is
non-uniform (a clustered initial condition), which gives Mol3D something
the stencil codes lack: **internal** load imbalance, the case classic
Charm++ balancers were designed for. Particles drift slowly between
cells, so per-cell loads evolve smoothly — consistent with the principle
of persistence the paper's scheme (and all measurement-based balancing)
relies on.

The paper found the host OS *favoured* the interfering job during Mol3D
runs, producing no-LB timing penalties up to 400%. That bias is a
property of the co-scheduling, not of this application model — the
experiment harness reproduces it by giving the background job a larger
scheduler weight in Mol3D scenarios (see
``repro.experiments.scenario.Scenario.bg_weight``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.apps.base import AppModel, CORE_SPEED_FLOPS
from repro.apps.md_kernels import LJ_FLOPS_PER_PAIR
from repro.runtime.chare import Chare, ChareArray
from repro.util import check_non_negative, check_positive, resolve_rng

__all__ = ["Mol3D", "MDCellChare"]

#: Serialised bytes per particle (position, velocity, force — 9 doubles).
_BYTES_PER_PARTICLE = 72.0


class MDCellChare(Chare):
    """One spatial cell of the MD decomposition.

    Parameters
    ----------
    index:
        Cell index.
    particles:
        Number of particles initially in this cell.
    avg_particles:
        Mean particles per cell (for the neighbour-interaction term).
    core_speed:
        Effective flops/s per core.
    drift_amp, drift_period:
        Amplitude/period of the slow sinusoidal particle-count drift
        (models particles migrating between cells over time).
    drift_phase:
        Per-cell phase offset of the drift.
    """

    def __init__(
        self,
        index: int,
        particles: int,
        *,
        avg_particles: float,
        core_speed: float = CORE_SPEED_FLOPS,
        drift_amp: float = 0.05,
        drift_period: int = 200,
        drift_phase: float = 0.0,
    ) -> None:
        check_non_negative("particles", particles)
        check_positive("avg_particles", avg_particles)
        check_positive("core_speed", core_speed)
        check_non_negative("drift_amp", drift_amp)
        check_positive("drift_period", drift_period)
        super().__init__(
            index, state_bytes=float(particles) * _BYTES_PER_PARTICLE
        )
        self.particles = int(particles)
        self.avg_particles = float(avg_particles)
        self.core_speed = float(core_speed)
        self.drift_amp = float(drift_amp)
        self.drift_period = int(drift_period)
        self.drift_phase = float(drift_phase)
        self._positions: Optional[np.ndarray] = None
        self._velocities: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def particles_at(self, iteration: int) -> float:
        """Effective particle count at ``iteration`` (slow drift)."""
        factor = 1.0 + self.drift_amp * math.sin(
            2.0 * math.pi * iteration / self.drift_period + self.drift_phase
        )
        return self.particles * factor

    #: Mean interacting neighbours per particle at average density (the
    #: cutoff-sphere population; ~64 for liquid-like densities).
    NEIGHBORS_AT_AVG_DENSITY = 64.0

    def work(self, iteration: int) -> float:
        """Cutoff pair-interaction cost model.

        Each particle interacts with the particles inside its cutoff
        sphere; that population scales with *local* density, so a cell
        with ``n`` particles costs

            0.5 · n · (n / avg) · NEIGHBORS_AT_AVG_DENSITY

        pair computations (the 0.5 de-duplicates pairs). Summed over
        cells this is ``0.5·k·N·(1+cv²)`` — independent of the
        decomposition, as real cutoff MD is — while denser cells are
        *quadratically* heavier, which is what creates Mol3D's internal
        load imbalance.
        """
        n = self.particles_at(iteration)
        pairs = 0.5 * n * (n / self.avg_particles) * self.NEIGHBORS_AT_AVG_DENSITY
        return pairs * LJ_FLOPS_PER_PAIR / self.core_speed

    def execute(self, iteration: int) -> None:
        """Advance this cell's particles one velocity-Verlet step.

        Validation mode only; uses a capped particle count so tests stay
        fast while still exercising the real force kernel.
        """
        from repro.apps.md_kernels import velocity_verlet

        if self._positions is None:
            rng = resolve_rng(10_000 + self.index)
            n = min(self.particles, 64)
            # low-density random gas: spacing > LJ sigma avoids blow-ups
            self._positions = rng.uniform(0.0, 4.0 * max(n, 1) ** (1 / 3), (n, 3))
            self._velocities = np.zeros((n, 3))
        if self._positions.shape[0] >= 2:
            self._positions, self._velocities = velocity_verlet(
                self._positions, self._velocities, dt=1e-3
            )


class Mol3D(AppModel):
    """Clustered-density classical MD with cell decomposition.

    Parameters
    ----------
    total_particles:
        Particles across all cells (default 48k).
    odf:
        Overdecomposition factor (cells per core).
    density_cv:
        Coefficient of variation of per-cell particle counts (log-normal
        spatial clustering; 0 gives uniform cells).
    core_speed:
        Effective flops/s per core.
    drift_amp, drift_period:
        Temporal drift of per-cell loads (see :class:`MDCellChare`).
    seed:
        RNG seed for the density field.
    """

    name = "mol3d"

    def __init__(
        self,
        total_particles: int = 48_000,
        *,
        odf: int = 8,
        density_cv: float = 0.4,
        core_speed: float = CORE_SPEED_FLOPS,
        drift_amp: float = 0.05,
        drift_period: int = 200,
        seed: int = 42,
    ) -> None:
        check_positive("total_particles", total_particles)
        check_positive("odf", odf)
        check_non_negative("density_cv", density_cv)
        self.total_particles = int(total_particles)
        self.odf = int(odf)
        self.density_cv = float(density_cv)
        self.core_speed = float(core_speed)
        self.drift_amp = float(drift_amp)
        self.drift_period = int(drift_period)
        self.seed = int(seed)

    def build_array(self, num_cores: int) -> ChareArray:
        check_positive("num_cores", num_cores)
        num_cells = self.odf * num_cores
        rng = resolve_rng(self.seed)
        if self.density_cv > 0.0:
            # log-normal weights with the requested coefficient of variation
            sigma2 = math.log(1.0 + self.density_cv**2)
            weights = rng.lognormal(mean=-sigma2 / 2.0, sigma=math.sqrt(sigma2), size=num_cells)
        else:
            weights = np.ones(num_cells)
        weights = weights / weights.sum()
        counts = np.floor(weights * self.total_particles).astype(int)
        # distribute the rounding remainder to the largest cells
        shortfall = self.total_particles - int(counts.sum())
        for idx in np.argsort(-weights)[:shortfall]:
            counts[idx] += 1
        avg = self.total_particles / num_cells
        phases = rng.uniform(0.0, 2.0 * math.pi, size=num_cells)
        chares = [
            MDCellChare(
                i,
                int(counts[i]),
                avg_particles=avg,
                core_speed=self.core_speed,
                drift_amp=self.drift_amp,
                drift_period=self.drift_period,
                drift_phase=float(phases[i]),
            )
            for i in range(num_cells)
        ]
        return ChareArray(self.name, chares)

    def comm_bytes(self, num_cores: int) -> float:
        """Ghost-particle exchange: boundary shell of the core's cells.

        Approximated as half a cell's worth of particles per core
        boundary, 24 bytes (positions) each.
        """
        avg_per_core = self.total_particles / max(num_cores, 1)
        return 0.5 * (avg_per_core / self.odf) * 24.0

    def comm_graph(self, num_cores: int):
        """Cell ring: each cell ships ghost positions to its neighbours.

        Edge volume scales with the two cells' populations (denser cells
        export more ghost particles), so communication imbalance tracks
        the density clustering like compute does.
        """
        from repro.runtime.commgraph import CommGraph

        array = self.build_array(num_cores)
        counts = [c.particles for c in array]
        n = len(counts)
        g = CommGraph()
        for i in range(n):
            j = (i + 1) % n
            if n == 2 and i == 1:
                break  # avoid the duplicate edge in a 2-ring
            volume = 0.5 * (counts[i] + counts[j]) * 24.0
            g.add_edge((self.name, i), (self.name, j), volume)
        return g

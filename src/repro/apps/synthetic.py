"""Fully scripted synthetic application.

Unit tests and ablation benchmarks often need exact control over per-chare
loads ("give me 4 cores with loads 1,1,1,5"). :class:`SyntheticApp`
provides that: explicit per-chare costs, optionally a callable of
``(index, iteration)``, with a uniform state size.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.apps.base import AppModel
from repro.runtime.chare import Chare, ChareArray
from repro.util import check_non_negative

__all__ = ["SyntheticApp"]

WorkSpec = Union[Sequence[float], Callable[[int, int], float]]


class _ScriptedChare(Chare):
    """Chare whose work is a scripted function of (index, iteration)."""

    def __init__(
        self, index: int, fn: Callable[[int, int], float], state_bytes: float
    ) -> None:
        super().__init__(index, state_bytes=state_bytes)
        self._fn = fn

    def work(self, iteration: int) -> float:
        return self._fn(self.index, iteration)


class SyntheticApp(AppModel):
    """Application with fully scripted chare loads.

    Parameters
    ----------
    works:
        Either a sequence (one constant cost per chare) or a callable
        ``(index, iteration) -> cpu_seconds``. When a callable is given,
        ``num_chares`` is required.
    num_chares:
        Number of chares (inferred from a sequence ``works``).
    state_bytes:
        Uniform serialised size per chare.
    comm_bytes_per_core:
        Per-iteration halo volume per core.
    """

    name = "synthetic"

    def __init__(
        self,
        works: WorkSpec,
        *,
        num_chares: Optional[int] = None,
        state_bytes: float = 1024.0,
        comm_bytes_per_core: float = 0.0,
    ) -> None:
        check_non_negative("state_bytes", state_bytes)
        check_non_negative("comm_bytes_per_core", comm_bytes_per_core)
        if callable(works):
            if num_chares is None:
                raise ValueError("num_chares is required with callable works")
            self._fn: Callable[[int, int], float] = works
            self.num_chares = int(num_chares)
        else:
            values: List[float] = [float(w) for w in works]
            if not values:
                raise ValueError("works must be non-empty")
            for w in values:
                check_non_negative("work", w)
            if num_chares is not None and num_chares != len(values):
                raise ValueError("num_chares contradicts len(works)")
            self._fn = lambda index, iteration: values[index]
            self.num_chares = len(values)
        self.state_bytes = float(state_bytes)
        self.comm_bytes_per_core = float(comm_bytes_per_core)

    def build_array(self, num_cores: int) -> ChareArray:
        chares = [
            _ScriptedChare(i, self._fn, self.state_bytes)
            for i in range(self.num_chares)
        ]
        return ChareArray(self.name, chares)

    def comm_bytes(self, num_cores: int) -> float:
        return self.comm_bytes_per_core
